#include "stats/diagnostics.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace laws {
namespace {

/// Asymptotic Kolmogorov distribution survival function:
/// Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2).
double KolmogorovQ(double x) {
  if (x <= 0.0) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

Result<KsTestResult> KolmogorovSmirnovNormalTest(std::vector<double> values) {
  if (values.size() < 8) {
    return Status::InvalidArgument("KS test needs at least 8 values");
  }
  Moments m;
  for (double v : values) m.Add(v);
  const double mean = m.mean();
  const double sd = m.stddev_sample();
  if (sd <= 0.0) {
    return Status::InvalidArgument("constant sample has no distribution");
  }
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  double d = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double cdf = NormalCdf((values[i] - mean) / sd);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(cdf - lo), std::fabs(hi - cdf)));
  }
  KsTestResult out;
  out.statistic = d;
  // Asymptotic p-value with the small-sample correction of Stephens.
  const double en = std::sqrt(n);
  out.p_value = KolmogorovQ((en + 0.12 + 0.11 / en) * d);
  out.normal_at_05 = out.p_value >= 0.05;
  return out;
}

Result<double> DurbinWatson(const std::vector<double>& residuals) {
  if (residuals.size() < 2) {
    return Status::InvalidArgument("Durbin-Watson needs >= 2 residuals");
  }
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < residuals.size(); ++i) {
    den += residuals[i] * residuals[i];
    if (i > 0) {
      const double d = residuals[i] - residuals[i - 1];
      num += d * d;
    }
  }
  if (den <= 0.0) {
    return Status::InvalidArgument("all-zero residuals");
  }
  return num / den;
}

}  // namespace laws

#ifndef LAWSDB_STATS_DIAGNOSTICS_H_
#define LAWSDB_STATS_DIAGNOSTICS_H_

#include <vector>

#include "common/result.h"

namespace laws {

/// Residual diagnostics beyond R²/RSE — the deeper "judge the quality of
/// the model" toolkit (paper §3). A model can have a high R² and still be
/// wrong in ways that matter for reuse: non-normal residuals break the
/// error bounds attached to approximate answers, and autocorrelated
/// residuals signal structure the model missed.

/// One-sample Kolmogorov-Smirnov test of `values` against a Normal(mean,
/// sd) fitted to the sample. Returns the KS statistic D and an asymptotic
/// p-value (Kolmogorov distribution). Small p => residuals are not
/// normal, so Gaussian prediction intervals understate risk.
struct KsTestResult {
  double statistic = 0.0;
  double p_value = 1.0;
  bool normal_at_05 = true;
};
Result<KsTestResult> KolmogorovSmirnovNormalTest(std::vector<double> values);

/// Durbin-Watson statistic for residuals ordered by their input: values
/// near 2 mean no lag-1 autocorrelation; toward 0 (positive correlation)
/// the model is missing smooth structure; toward 4, negative correlation.
Result<double> DurbinWatson(const std::vector<double>& residuals);

}  // namespace laws

#endif  // LAWSDB_STATS_DIAGNOSTICS_H_

#include "stats/distributions.h"

#include <cmath>
#include <limits>

namespace laws {
namespace {

constexpr double kEps = 1e-15;
constexpr int kMaxIter = 500;

/// Thread-safe log-gamma. glibc's lgamma() writes the process-global
/// `signgam`, which is a data race when concurrent sessions evaluate
/// t-quantiles; lgamma_r keeps the sign in a local instead. Every call
/// site here passes a positive argument, so the sign is always +1.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// Continued-fraction evaluation of the regularized incomplete beta
/// (Numerical Recipes' betacf, modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < 1e-300) d = 1e-300;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Lower incomplete gamma by series expansion (x < a+1 regime).
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Upper incomplete gamma by continued fraction (x >= a+1 regime).
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double RegularizedGammaP(double a, double x) {
  if (x < 0.0 || a <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (x < 0.0 || a <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) -
                          LogGamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double StudentTQuantile(double p, double df) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Bisection on the CDF; monotone, so robust. Bracket grows as needed.
  double lo = -1.0, hi = 1.0;
  while (StudentTCdf(lo, df) > p) lo *= 2.0;
  while (StudentTCdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

double FCdf(double f, double d1, double d2) {
  if (f <= 0.0) return 0.0;
  const double x = d1 * f / (d1 * f + d2);
  return RegularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double ChiSquaredCdf(double x, double df) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

}  // namespace laws

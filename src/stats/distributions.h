#ifndef LAWSDB_STATS_DISTRIBUTIONS_H_
#define LAWSDB_STATS_DISTRIBUTIONS_H_

namespace laws {

/// Standard normal density.
double NormalPdf(double x);

/// Standard normal CDF via erfc.
double NormalCdf(double x);

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// refined with one Halley step; |error| < 1e-12 over (0,1).
double NormalQuantile(double p);

/// Regularized lower incomplete gamma P(a, x); a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Regularized incomplete beta I_x(a, b) via continued fraction (Lentz).
double RegularizedIncompleteBeta(double a, double b, double x);

/// Student-t CDF with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Student-t two-sided critical value: smallest c with
/// P(|T| <= c) >= 1 - alpha. Used for confidence/prediction intervals.
double StudentTQuantile(double p, double df);

/// F-distribution CDF with (d1, d2) degrees of freedom.
double FCdf(double f, double d1, double d2);

/// Chi-squared CDF with `df` degrees of freedom.
double ChiSquaredCdf(double x, double df);

}  // namespace laws

#endif  // LAWSDB_STATS_DISTRIBUTIONS_H_

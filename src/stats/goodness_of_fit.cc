#include "stats/goodness_of_fit.h"

#include <cmath>
#include <cstdio>

#include "stats/distributions.h"

namespace laws {

std::string FitQuality::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu p=%zu R2=%.4f adjR2=%.4f RSE=%.6g AIC=%.4g BIC=%.4g",
                n_observations, n_parameters, r_squared, adjusted_r_squared,
                residual_standard_error, aic, bic);
  return buf;
}

Result<FitQuality> ComputeFitQuality(const std::vector<double>& observed,
                                     const std::vector<double>& predicted,
                                     size_t n_parameters) {
  if (observed.size() != predicted.size()) {
    return Status::InvalidArgument("observed/predicted size mismatch");
  }
  const size_t n = observed.size();
  if (n <= n_parameters) {
    return Status::InvalidArgument(
        "need more observations than parameters to assess fit");
  }
  double mean = 0.0;
  for (double y : observed) mean += y;
  mean /= static_cast<double>(n);

  double rss = 0.0;
  double tss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double r = observed[i] - predicted[i];
    const double d = observed[i] - mean;
    rss += r * r;
    tss += d * d;
  }

  FitQuality q;
  q.n_observations = n;
  q.n_parameters = n_parameters;
  q.residual_sum_of_squares = rss;
  q.total_sum_of_squares = tss;
  // A constant response fitted exactly has R2 = 1 by convention; otherwise
  // R2 = 1 - RSS/TSS (can be negative for models worse than the mean).
  q.r_squared = tss > 0.0 ? 1.0 - rss / tss : (rss == 0.0 ? 1.0 : 0.0);
  const double nd = static_cast<double>(n);
  const double pd = static_cast<double>(n_parameters);
  q.adjusted_r_squared =
      tss > 0.0 ? 1.0 - (rss / (nd - pd)) / (tss / (nd - 1.0))
                : q.r_squared;
  q.residual_standard_error = std::sqrt(rss / (nd - pd));
  // Gaussian log-likelihood based criteria; +1 counts the variance
  // parameter. Guard log(0) for perfect fits.
  const double sigma2 = std::max(rss / nd, 1e-300);
  const double log_lik =
      -0.5 * nd * (std::log(2.0 * M_PI * sigma2) + 1.0);
  q.aic = 2.0 * (pd + 1.0) - 2.0 * log_lik;
  q.bic = std::log(nd) * (pd + 1.0) - 2.0 * log_lik;
  return q;
}

Result<double> PredictionHalfWidth(const FitQuality& quality,
                                   double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  if (quality.n_observations <= quality.n_parameters) {
    return Status::InvalidArgument("need n > p for prediction intervals");
  }
  const double df = static_cast<double>(quality.n_observations -
                                        quality.n_parameters);
  const double t = StudentTQuantile(0.5 * (1.0 + confidence), df);
  return t * quality.residual_standard_error;
}

Result<FTestResult> NestedFTest(double rss_reduced, size_t p_reduced,
                                double rss_full, size_t p_full, size_t n,
                                double alpha) {
  if (p_full <= p_reduced) {
    return Status::InvalidArgument("full model must have more parameters");
  }
  if (n <= p_full) {
    return Status::InvalidArgument("need n > p_full observations");
  }
  if (rss_full < 0.0 || rss_reduced < 0.0) {
    return Status::InvalidArgument("negative residual sum of squares");
  }
  FTestResult r;
  r.df_numerator = static_cast<double>(p_full - p_reduced);
  r.df_denominator = static_cast<double>(n - p_full);
  if (rss_full <= 0.0) {
    // Perfect full model: infinitely significant unless the reduced model is
    // also perfect.
    r.f_statistic = rss_reduced > 0.0 ? 1e308 : 0.0;
    r.p_value = rss_reduced > 0.0 ? 0.0 : 1.0;
    r.significant = rss_reduced > 0.0;
    return r;
  }
  r.f_statistic = ((rss_reduced - rss_full) / r.df_numerator) /
                  (rss_full / r.df_denominator);
  if (r.f_statistic < 0.0) r.f_statistic = 0.0;
  r.p_value = 1.0 - FCdf(r.f_statistic, r.df_numerator, r.df_denominator);
  r.significant = r.p_value < alpha;
  return r;
}

}  // namespace laws

#ifndef LAWSDB_STATS_GOODNESS_OF_FIT_H_
#define LAWSDB_STATS_GOODNESS_OF_FIT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace laws {

/// Goodness-of-fit summary for a fitted model, as proposed in the paper
/// (§3): R², residual standard error, plus information criteria used by the
/// model-lifecycle arbitration in laws::core.
struct FitQuality {
  size_t n_observations = 0;
  size_t n_parameters = 0;
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  /// sqrt(RSS / (n - p)) — "Residual SE" in the paper's Table 1.
  double residual_standard_error = 0.0;
  double residual_sum_of_squares = 0.0;
  double total_sum_of_squares = 0.0;
  /// Akaike information criterion under a Gaussian error model.
  double aic = 0.0;
  /// Bayesian information criterion under a Gaussian error model.
  double bic = 0.0;

  std::string ToString() const;
};

/// Computes the full quality summary from observed and predicted outputs.
/// Returns InvalidArgument on size mismatch or n <= p.
Result<FitQuality> ComputeFitQuality(const std::vector<double>& observed,
                                     const std::vector<double>& predicted,
                                     size_t n_parameters);

/// Result of an F-test comparing a full model against a nested reduced model
/// (paper §3: "the results of an F-test against a model with fewer
/// parameters").
struct FTestResult {
  double f_statistic = 0.0;
  double p_value = 1.0;
  double df_numerator = 0.0;
  double df_denominator = 0.0;
  /// True when the full model is a significant improvement at `alpha`.
  bool significant = false;
};

/// Nested-model F-test. `rss_reduced` / `rss_full` are residual sums of
/// squares; `p_reduced` < `p_full` are parameter counts; n is the number of
/// observations.
Result<FTestResult> NestedFTest(double rss_reduced, size_t p_reduced,
                                double rss_full, size_t p_full, size_t n,
                                double alpha = 0.05);

/// Half-width of a `confidence`-level prediction interval for a new
/// observation under the fitted model's Gaussian error assumption:
/// t_{(1+c)/2, n-p} * RSE. (Ignores the small parameter-uncertainty
/// inflation term, which vanishes for n >> p — the AQP regime.) Returns
/// InvalidArgument for confidence outside (0, 1) or n <= p.
Result<double> PredictionHalfWidth(const FitQuality& quality,
                                   double confidence = 0.95);

}  // namespace laws

#endif  // LAWSDB_STATS_GOODNESS_OF_FIT_H_

#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace laws {

Result<Histogram> Histogram::BuildEquiWidth(const std::vector<double>& values,
                                            size_t buckets) {
  if (values.empty()) return Status::InvalidArgument("empty input");
  if (buckets == 0) return Status::InvalidArgument("zero buckets");
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) hi = lo + 1.0;  // degenerate constant column
  std::vector<double> bounds(buckets + 1);
  for (size_t i = 0; i <= buckets; ++i) {
    bounds[i] = lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(buckets);
  }
  std::vector<size_t> counts(buckets, 0);
  std::vector<double> sums(buckets, 0.0);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (double v : values) {
    auto b = static_cast<size_t>((v - lo) / width);
    if (b >= buckets) b = buckets - 1;
    ++counts[b];
    sums[b] += v;
  }
  std::vector<double> means(buckets, 0.0);
  for (size_t i = 0; i < buckets; ++i) {
    if (counts[i] > 0) means[i] = sums[i] / static_cast<double>(counts[i]);
  }
  return Histogram(Kind::kEquiWidth, std::move(bounds), std::move(counts),
                   std::move(means), values.size());
}

Result<Histogram> Histogram::BuildEquiDepth(std::vector<double> values,
                                            size_t buckets) {
  if (values.empty()) return Status::InvalidArgument("empty input");
  if (buckets == 0) return Status::InvalidArgument("zero buckets");
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  buckets = std::min(buckets, n);
  std::vector<double> bounds;
  std::vector<size_t> counts;
  std::vector<double> means;
  bounds.push_back(values.front());
  size_t start = 0;
  for (size_t b = 0; b < buckets; ++b) {
    size_t end = (b + 1) * n / buckets;
    if (end <= start) continue;
    double sum = 0.0;
    for (size_t i = start; i < end; ++i) sum += values[i];
    counts.push_back(end - start);
    means.push_back(sum / static_cast<double>(end - start));
    // Upper boundary: midpoint to next value to keep buckets disjoint.
    const double upper = end < n ? 0.5 * (values[end - 1] + values[end])
                                 : values.back();
    bounds.push_back(std::max(upper, bounds.back()));
    start = end;
  }
  // Avoid zero-width final bucket for constant tails.
  if (bounds.back() == bounds.front()) bounds.back() += 1.0;
  return Histogram(Kind::kEquiDepth, std::move(bounds), std::move(counts),
                   std::move(means), n);
}

double Histogram::EstimateRangeCount(double lo, double hi) const {
  if (hi < lo) return 0.0;
  double est = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double blo = boundaries_[b];
    const double bhi = boundaries_[b + 1];
    if (bhi <= lo || blo >= hi) continue;
    const double width = bhi - blo;
    const double overlap =
        width > 0.0
            ? (std::min(hi, bhi) - std::max(lo, blo)) / width
            : 1.0;
    est += static_cast<double>(counts_[b]) * std::clamp(overlap, 0.0, 1.0);
  }
  return est;
}

double Histogram::EstimateRangeSum(double lo, double hi) const {
  if (hi < lo) return 0.0;
  double est = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double blo = boundaries_[b];
    const double bhi = boundaries_[b + 1];
    if (bhi <= lo || blo >= hi) continue;
    const double width = bhi - blo;
    const double overlap =
        width > 0.0 ? (std::min(hi, bhi) - std::max(lo, blo)) / width : 1.0;
    const double frac = std::clamp(overlap, 0.0, 1.0);
    // Assume values uniform within the covered part: use the midpoint of the
    // overlapped interval as their mean when partially covered, the bucket
    // mean when fully covered.
    const double value_mean =
        frac >= 1.0 ? means_[b]
                    : 0.5 * (std::min(hi, bhi) + std::max(lo, blo));
    est += static_cast<double>(counts_[b]) * frac * value_mean;
  }
  return est;
}

double Histogram::EstimateRangeAvg(double lo, double hi) const {
  const double c = EstimateRangeCount(lo, hi);
  if (c <= 0.0) return 0.0;
  return EstimateRangeSum(lo, hi) / c;
}

size_t Histogram::SizeBytes() const {
  return boundaries_.size() * sizeof(double) +
         counts_.size() * sizeof(size_t) + means_.size() * sizeof(double);
}

std::string Histogram::ToString() const {
  std::string out = kind_ == Kind::kEquiWidth ? "equi-width{" : "equi-depth{";
  char buf[96];
  for (size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(buf, sizeof(buf), "[%.4g,%.4g):%zu ", boundaries_[b],
                  boundaries_[b + 1], counts_[b]);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace laws

#ifndef LAWSDB_STATS_HISTOGRAM_H_
#define LAWSDB_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace laws {

/// A bucketed synopsis of a numeric column. Both classic flavours are
/// supported; histograms are the "synopsis" baseline the paper contrasts
/// user models against (§1, refs [8, 9]).
class Histogram {
 public:
  enum class Kind { kEquiWidth, kEquiDepth };

  /// Builds an equi-width histogram with `buckets` buckets over the data
  /// range. Returns InvalidArgument for empty data or zero buckets.
  static Result<Histogram> BuildEquiWidth(const std::vector<double>& values,
                                          size_t buckets);

  /// Builds an equi-depth (equal frequency) histogram with `buckets`
  /// buckets.
  static Result<Histogram> BuildEquiDepth(std::vector<double> values,
                                          size_t buckets);

  Kind kind() const { return kind_; }
  size_t bucket_count() const { return counts_.size(); }
  size_t total_count() const { return total_; }

  /// Bucket boundaries; boundaries_[i], boundaries_[i+1] delimit bucket i.
  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::vector<size_t>& counts() const { return counts_; }
  /// Per-bucket mean of contained values (used for AVG/SUM estimation).
  const std::vector<double>& bucket_means() const { return means_; }

  /// Estimated number of rows with value in [lo, hi], assuming uniform
  /// spread within buckets (the standard histogram estimator).
  double EstimateRangeCount(double lo, double hi) const;

  /// Estimated sum of values in [lo, hi].
  double EstimateRangeSum(double lo, double hi) const;

  /// Estimated mean of values in [lo, hi]; 0 when the estimated count is 0.
  double EstimateRangeAvg(double lo, double hi) const;

  /// Approximate storage footprint in bytes (for synopsis-size accounting).
  size_t SizeBytes() const;

  std::string ToString() const;

 private:
  Histogram(Kind kind, std::vector<double> boundaries,
            std::vector<size_t> counts, std::vector<double> means,
            size_t total)
      : kind_(kind),
        boundaries_(std::move(boundaries)),
        counts_(std::move(counts)),
        means_(std::move(means)),
        total_(total) {}

  Kind kind_;
  std::vector<double> boundaries_;
  std::vector<size_t> counts_;
  std::vector<double> means_;
  size_t total_;
};

}  // namespace laws

#endif  // LAWSDB_STATS_HISTOGRAM_H_

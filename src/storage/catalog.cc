#include "storage/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace laws {

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

Status Catalog::Register(const std::string& name, TablePtr table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  const std::string key = Key(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[key] = std::move(table);
  display_names_[key] = name;
  return Status::OK();
}

void Catalog::RegisterOrReplace(const std::string& name, TablePtr table) {
  const std::string key = Key(name);
  tables_[key] = std::move(table);
  display_names_[key] = name;
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return it->second;
}

Status Catalog::Drop(const std::string& name) {
  const std::string key = Key(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("table '" + name + "' not found");
  }
  display_names_.erase(key);
  return Status::OK();
}

bool Catalog::Contains(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}

Catalog Catalog::Clone() const {
  Catalog copy;
  copy.tables_ = tables_;
  copy.display_names_ = display_names_;
  return copy;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(display_names_.size());
  for (const auto& [key, display] : display_names_) names.push_back(display);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace laws

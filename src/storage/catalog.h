#ifndef LAWSDB_STORAGE_CATALOG_H_
#define LAWSDB_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Named table registry — the database's catalog. Table names are
/// case-insensitive. Tables are held by shared_ptr so that query results,
/// fitted-model metadata and the catalog can share ownership safely.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers `table` under `name`; AlreadyExists if taken.
  Status Register(const std::string& name, TablePtr table);

  /// Replaces or creates the binding for `name`.
  void RegisterOrReplace(const std::string& name, TablePtr table);

  /// Looks up a table; NotFound if absent.
  Result<TablePtr> Get(const std::string& name) const;

  /// Removes a table; NotFound if absent.
  Status Drop(const std::string& name);

  bool Contains(const std::string& name) const;

  /// All table names in sorted order.
  std::vector<std::string> ListTables() const;

  /// Cheap structural copy for snapshot publication (serve layer): the
  /// name→table bindings are duplicated but the Table objects themselves
  /// are shared. Copy-on-write discipline is the caller's job — a writer
  /// that mutates a table must rebind a fresh Table, never append to a
  /// shared one.
  Catalog Clone() const;

  size_t size() const { return tables_.size(); }

 private:
  static std::string Key(const std::string& name);
  std::map<std::string, TablePtr> tables_;  // keyed by lower-cased name
  std::map<std::string, std::string> display_names_;
};

}  // namespace laws

#endif  // LAWSDB_STORAGE_CATALOG_H_

#include "storage/column.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace laws {

Column::Column(DataType type, bool nullable)
    : type_(type), nullable_(nullable) {}

void Column::PushValidity(bool valid) {
  if (!nullable_) {
    assert(valid);
    return;
  }
  const size_t i = size_;
  if ((i >> 3) >= validity_.size()) validity_.push_back(0xFF);
  if (valid) {
    validity_[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  } else {
    validity_[i >> 3] &= static_cast<uint8_t>(~(1u << (i & 7)));
    ++null_count_;
  }
}

uint32_t Column::InternString(std::string_view s) {
  auto it = dictionary_index_.find(std::string(s));
  if (it != dictionary_index_.end()) return it->second;
  const auto code = static_cast<uint32_t>(dictionary_.size());
  dictionary_.emplace_back(s);
  dictionary_index_.emplace(dictionary_.back(), code);
  return code;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) return AppendNull();
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) return Status::TypeMismatch("expected INT64 value");
      AppendInt64(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.dbl());
      } else if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.int64()));
      } else {
        return Status::TypeMismatch("expected DOUBLE value");
      }
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) return Status::TypeMismatch("expected STRING value");
      AppendString(v.str());
      return Status::OK();
    case DataType::kBool:
      if (!v.is_bool()) return Status::TypeMismatch("expected BOOL value");
      AppendBool(v.boolean());
      return Status::OK();
  }
  return Status::Internal("corrupt column type");
}

void Column::AppendInt64(int64_t v) {
  assert(type_ == DataType::kInt64);
  PushValidity(true);
  int64_data_.push_back(v);
  ++size_;
}

void Column::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  PushValidity(true);
  double_data_.push_back(v);
  ++size_;
}

void Column::AppendString(std::string_view v) {
  assert(type_ == DataType::kString);
  PushValidity(true);
  string_codes_.push_back(InternString(v));
  ++size_;
}

void Column::AppendBool(bool v) {
  assert(type_ == DataType::kBool);
  PushValidity(true);
  bool_data_.push_back(v ? 1 : 0);
  ++size_;
}

Status Column::AppendNull() {
  if (!nullable_) {
    return Status::InvalidArgument("NULL appended to non-nullable column");
  }
  PushValidity(false);
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(0);
      break;
    case DataType::kDouble:
      double_data_.push_back(0.0);
      break;
    case DataType::kString:
      string_codes_.push_back(InternString(""));
      break;
    case DataType::kBool:
      bool_data_.push_back(0);
      break;
  }
  ++size_;
  return Status::OK();
}

void Column::AppendInt64Batch(const int64_t* values, const uint8_t* null8,
                              size_t n) {
  assert(type_ == DataType::kInt64);
  // No reserve(size+n) here: an exact-size reserve on every batch defeats
  // the vector's geometric growth and turns repeated appends quadratic.
  if (null8 == nullptr) {
    int64_data_.insert(int64_data_.end(), values, values + n);
    for (size_t i = 0; i < n; ++i) {
      PushValidity(true);
      ++size_;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const bool valid = null8[i] == 0;
    assert(nullable_ || valid);
    PushValidity(valid);
    int64_data_.push_back(valid ? values[i] : 0);
    ++size_;
  }
}

void Column::AppendDoubleBatch(const double* values, const uint8_t* null8,
                               size_t n) {
  assert(type_ == DataType::kDouble);
  if (null8 == nullptr) {
    double_data_.insert(double_data_.end(), values, values + n);
    for (size_t i = 0; i < n; ++i) {
      PushValidity(true);
      ++size_;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const bool valid = null8[i] == 0;
    assert(nullable_ || valid);
    PushValidity(valid);
    double_data_.push_back(valid ? values[i] : 0.0);
    ++size_;
  }
}

void Column::AppendBoolBatch(const uint8_t* values, const uint8_t* null8,
                             size_t n) {
  assert(type_ == DataType::kBool);
  if (null8 == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      PushValidity(true);
      bool_data_.push_back(values[i] != 0 ? 1 : 0);
      ++size_;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const bool valid = null8[i] == 0;
    assert(nullable_ || valid);
    PushValidity(valid);
    bool_data_.push_back(valid && values[i] != 0 ? 1 : 0);
    ++size_;
  }
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(Int64At(i));
    case DataType::kDouble:
      return Value::Double(DoubleAt(i));
    case DataType::kString:
      return Value::String(std::string(StringAt(i)));
    case DataType::kBool:
      return Value::Bool(BoolAt(i));
  }
  return Value::Null();
}

Result<double> Column::NumericAt(size_t i) const {
  if (IsNull(i)) return Status::TypeMismatch("NULL has no numeric value");
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(Int64At(i));
    case DataType::kDouble:
      return DoubleAt(i);
    case DataType::kBool:
      return BoolAt(i) ? 1.0 : 0.0;
    case DataType::kString:
      return Status::TypeMismatch("string column is not numeric");
  }
  return Status::Internal("corrupt column type");
}

Result<std::vector<double>> Column::ToDoubleVector() const {
  if (type_ == DataType::kString) {
    return Status::TypeMismatch("string column is not numeric");
  }
  std::vector<double> out;
  out.reserve(size_ - null_count_);
  for (size_t i = 0; i < size_; ++i) {
    if (IsNull(i)) continue;
    switch (type_) {
      case DataType::kInt64:
        out.push_back(static_cast<double>(int64_data_[i]));
        break;
      case DataType::kDouble:
        out.push_back(double_data_[i]);
        break;
      case DataType::kBool:
        out.push_back(bool_data_[i] ? 1.0 : 0.0);
        break;
      case DataType::kString:
        break;  // unreachable
    }
  }
  return out;
}

Status Column::GatherNumeric(const uint32_t* rows, size_t n,
                             double* out) const {
  switch (type_) {
    case DataType::kInt64: {
      const int64_t* data = int64_data_.data();
      for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<double>(data[rows[i]]);
      }
      return Status::OK();
    }
    case DataType::kDouble: {
      const double* data = double_data_.data();
      for (size_t i = 0; i < n; ++i) out[i] = data[rows[i]];
      return Status::OK();
    }
    case DataType::kBool: {
      const uint8_t* data = bool_data_.data();
      for (size_t i = 0; i < n; ++i) out[i] = data[rows[i]] ? 1.0 : 0.0;
      return Status::OK();
    }
    case DataType::kString:
      return Status::TypeMismatch("string column is not numeric");
  }
  return Status::Internal("corrupt column type");
}

Status Column::GatherNumericTransformed(const uint32_t* rows, size_t n,
                                        double* out,
                                        NumericTransform transform) const {
  if (transform == NumericTransform::kIdentity) {
    return GatherNumeric(rows, n, out);
  }
  // kLog, fused with the type dispatch so each value is touched once.
  switch (type_) {
    case DataType::kInt64: {
      const int64_t* data = int64_data_.data();
      for (size_t i = 0; i < n; ++i) {
        out[i] = std::log(static_cast<double>(data[rows[i]]));
      }
      return Status::OK();
    }
    case DataType::kDouble: {
      const double* data = double_data_.data();
      for (size_t i = 0; i < n; ++i) out[i] = std::log(data[rows[i]]);
      return Status::OK();
    }
    case DataType::kBool: {
      const uint8_t* data = bool_data_.data();
      for (size_t i = 0; i < n; ++i) {
        out[i] = data[rows[i]] ? 0.0
                               : -std::numeric_limits<double>::infinity();
      }
      return Status::OK();
    }
    case DataType::kString:
      return Status::TypeMismatch("string column is not numeric");
  }
  return Status::Internal("corrupt column type");
}

Result<size_t> Column::GatherNumericMasked(const uint32_t* rows, size_t n,
                                           double* out,
                                           uint8_t* null_mask) const {
  LAWS_RETURN_IF_ERROR(GatherNumeric(rows, n, out));
  if (!nullable_ || validity_.empty()) {
    if (null_mask != nullptr) {
      for (size_t i = 0; i < n; ++i) null_mask[i] = 0;
    }
    return n;
  }
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  size_t non_null = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool valid = ValidAt(rows[i]);
    if (valid) {
      ++non_null;
    } else {
      out[i] = kNan;
    }
    if (null_mask != nullptr) null_mask[i] = valid ? 0 : 1;
  }
  return non_null;
}

Column Column::FromInt64Vector(std::vector<int64_t> values) {
  Column out(DataType::kInt64, /*nullable=*/false);
  out.size_ = values.size();
  out.int64_data_ = std::move(values);
  return out;
}

Column Column::FromDoubleVector(std::vector<double> values) {
  Column out(DataType::kDouble, /*nullable=*/false);
  out.size_ = values.size();
  out.double_data_ = std::move(values);
  return out;
}

Column Column::Gather(const std::vector<uint32_t>& indices) const {
  Column out(type_, nullable_);
  for (uint32_t i : indices) {
    if (IsNull(i)) {
      (void)out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kInt64:
        out.AppendInt64(int64_data_[i]);
        break;
      case DataType::kDouble:
        out.AppendDouble(double_data_[i]);
        break;
      case DataType::kString:
        out.AppendString(StringAt(i));
        break;
      case DataType::kBool:
        out.AppendBool(bool_data_[i] != 0);
        break;
    }
  }
  return out;
}

size_t Column::MemoryBytes() const {
  size_t bytes = validity_.size();
  switch (type_) {
    case DataType::kInt64:
      bytes += int64_data_.size() * sizeof(int64_t);
      break;
    case DataType::kDouble:
      bytes += double_data_.size() * sizeof(double);
      break;
    case DataType::kString:
      bytes += string_codes_.size() * sizeof(uint32_t);
      for (const auto& s : dictionary_) bytes += s.size();
      break;
    case DataType::kBool:
      bytes += bool_data_.size();
      break;
  }
  return bytes;
}

Result<uint32_t> Column::DictionaryCode(std::string_view s) const {
  auto it = dictionary_index_.find(std::string(s));
  if (it == dictionary_index_.end()) {
    return Status::NotFound("string not in dictionary: " + std::string(s));
  }
  return it->second;
}

}  // namespace laws

#ifndef LAWSDB_STORAGE_COLUMN_H_
#define LAWSDB_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/numeric_transform.h"
#include "common/result.h"
#include "storage/types.h"

namespace laws {

/// A single in-memory column. Storage is columnar and fully typed:
///   - INT64  -> std::vector<int64_t>
///   - DOUBLE -> std::vector<double>
///   - STRING -> dictionary encoding (unique strings + uint32 codes)
///   - BOOL   -> std::vector<uint8_t>
/// Nulls are tracked in a packed validity bitmap (1 = valid). Hot paths use
/// the typed accessors / raw data views; Value-based access exists for
/// convenience at the edges (parsing, printing, row assembly).
class Column {
 public:
  explicit Column(DataType type, bool nullable = true);

  DataType type() const { return type_; }
  bool nullable() const { return nullable_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }

  // --- Appends -----------------------------------------------------------

  /// Appends a Value; checks type compatibility (int64 accepted into double
  /// columns) and nullability.
  Status AppendValue(const Value& v);

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  void AppendBool(bool v);

  /// Appends NULL; returns InvalidArgument for non-nullable columns.
  Status AppendNull();

  /// Batch appends: the bulk materialization path for the vectorized
  /// expression evaluator. `null8` is one byte per lane (1 = NULL, the
  /// GatherNumericMasked convention) or nullptr when no lane is NULL;
  /// NULL lanes append a zeroed backing slot exactly like AppendNull, so
  /// the resulting column is byte-identical to per-element appends. The
  /// column must be nullable when `null8` contains a set bit.
  void AppendInt64Batch(const int64_t* values, const uint8_t* null8, size_t n);
  void AppendDoubleBatch(const double* values, const uint8_t* null8, size_t n);
  void AppendBoolBatch(const uint8_t* values, const uint8_t* null8, size_t n);

  // --- Element access ----------------------------------------------------

  bool IsNull(size_t i) const { return !ValidAt(i); }

  int64_t Int64At(size_t i) const { return int64_data_[i]; }
  double DoubleAt(size_t i) const { return double_data_[i]; }
  std::string_view StringAt(size_t i) const {
    return dictionary_[string_codes_[i]];
  }
  bool BoolAt(size_t i) const { return bool_data_[i] != 0; }

  /// Boxed access (NULL-aware); slow path.
  Value GetValue(size_t i) const;

  /// Numeric coercion of element i (int64/double/bool -> double). Error on
  /// NULL or string.
  Result<double> NumericAt(size_t i) const;

  // --- Bulk views --------------------------------------------------------

  const std::vector<int64_t>& int64_data() const { return int64_data_; }
  const std::vector<double>& double_data() const { return double_data_; }
  const std::vector<uint32_t>& string_codes() const { return string_codes_; }
  const std::vector<std::string>& dictionary() const { return dictionary_; }
  const std::vector<uint8_t>& bool_data() const { return bool_data_; }
  const std::vector<uint8_t>& validity() const { return validity_; }

  /// All non-null values coerced to double (order preserved); error for
  /// string columns. The workhorse extraction for model fitting.
  Result<std::vector<double>> ToDoubleVector() const;

  /// Bulk numeric gather: coerces the elements at `rows[0..n)` to double
  /// into `out` (int64/double/bool -> double), one type dispatch for the
  /// whole batch instead of a Result-wrapped virtual call per cell — the
  /// fast path for grouped-fit matrix assembly. Rows must be in range and
  /// non-NULL (a NULL row silently gathers its zeroed backing slot); use
  /// GatherNumericMasked when rows may contain NULLs. Error for string
  /// columns.
  Status GatherNumeric(const uint32_t* rows, size_t n, double* out) const;

  /// Fused gather-transform: like GatherNumeric but applies `transform`
  /// to each value in the same pass, so callers that fit in transformed
  /// space (log-log OLS for power laws) materialize log(x) directly
  /// instead of gather-then-transform. Out-of-domain values (log of zero
  /// or a negative) land as -inf/NaN for the caller's domain check; rows
  /// must be in range and non-NULL, as for GatherNumeric. Error for
  /// string columns.
  Status GatherNumericTransformed(const uint32_t* rows, size_t n, double* out,
                                  NumericTransform transform) const;

  /// Null-mask-aware variant: NULL rows gather as quiet NaN and set
  /// null_mask[i] = 1 (valid rows set 0). `null_mask` may be nullptr when
  /// only the NaN sentinel is wanted. Returns the number of non-NULL rows
  /// gathered.
  Result<size_t> GatherNumericMasked(const uint32_t* rows, size_t n,
                                     double* out, uint8_t* null_mask) const;

  /// Builds a non-nullable INT64 column by moving `values` into place (no
  /// per-element append) — the bulk-construction path for generators.
  static Column FromInt64Vector(std::vector<int64_t> values);

  /// Builds a non-nullable DOUBLE column by moving `values` into place.
  static Column FromDoubleVector(std::vector<double> values);

  /// New column containing rows at `indices` (in that order).
  Column Gather(const std::vector<uint32_t>& indices) const;

  /// Approximate heap footprint in bytes, the basis of all storage-size
  /// accounting in the experiments.
  size_t MemoryBytes() const;

  /// Dictionary code for `s` if it appears in this column's dictionary.
  Result<uint32_t> DictionaryCode(std::string_view s) const;

 private:
  bool ValidAt(size_t i) const {
    if (!nullable_ || validity_.empty()) return true;
    return (validity_[i >> 3] >> (i & 7)) & 1;
  }
  void PushValidity(bool valid);
  uint32_t InternString(std::string_view s);

  DataType type_;
  bool nullable_;
  size_t size_ = 0;
  size_t null_count_ = 0;

  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<uint32_t> string_codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, uint32_t> dictionary_index_;
  std::vector<uint8_t> bool_data_;
  std::vector<uint8_t> validity_;  // packed, 1 = valid; empty = all valid
};

}  // namespace laws

#endif  // LAWSDB_STORAGE_COLUMN_H_

#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace laws {
namespace {

/// Splits one CSV record, honouring quotes and doubled-quote escapes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delim, size_t line_no) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote on line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseField(const std::string& raw, const Field& field,
                         const CsvOptions& options, size_t line_no) {
  if (raw == options.null_token) {
    if (!field.nullable) {
      return Status::ParseError("NULL in non-nullable field '" + field.name +
                                "' on line " + std::to_string(line_no));
    }
    return Value::Null();
  }
  const char* begin = raw.c_str();
  char* end = nullptr;
  switch (field.type) {
    case DataType::kInt64: {
      const long long v = std::strtoll(begin, &end, 10);
      if (end == begin || *end != '\0') {
        return Status::ParseError("bad INT64 '" + raw + "' on line " +
                                  std::to_string(line_no));
      }
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      const double v = std::strtod(begin, &end);
      if (end == begin || *end != '\0') {
        return Status::ParseError("bad DOUBLE '" + raw + "' on line " +
                                  std::to_string(line_no));
      }
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(raw);
    case DataType::kBool: {
      if (EqualsIgnoreCase(raw, "true") || raw == "1") return Value::Bool(true);
      if (EqualsIgnoreCase(raw, "false") || raw == "0") {
        return Value::Bool(false);
      }
      return Status::ParseError("bad BOOL '" + raw + "' on line " +
                                std::to_string(line_no));
    }
  }
  return Status::Internal("corrupt field type");
}

bool NeedsQuoting(const std::string& s, char delim) {
  return s.find(delim) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsv(std::istream& in, const Schema& schema,
                      const CsvOptions& options) {
  Table table(schema);
  std::string line;
  size_t line_no = 0;
  if (options.header) {
    if (!std::getline(in, line)) {
      return Status::ParseError("missing header line");
    }
    ++line_no;
    LAWS_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          SplitCsvLine(line, options.delimiter, line_no));
    if (names.size() != schema.num_fields()) {
      return Status::ParseError("header arity does not match schema");
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (!EqualsIgnoreCase(Trim(names[i]), schema.field(i).name)) {
        return Status::ParseError("header field '" + names[i] +
                                  "' does not match schema field '" +
                                  schema.field(i).name + "'");
      }
    }
  }
  std::vector<Value> row(schema.num_fields());
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    LAWS_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          SplitCsvLine(line, options.delimiter, line_no));
    if (fields.size() != schema.num_fields()) {
      return Status::ParseError("row arity mismatch on line " +
                                std::to_string(line_no));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      LAWS_ASSIGN_OR_RETURN(
          row[i], ParseField(fields[i], schema.field(i), options, line_no));
    }
    LAWS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvString(const std::string& text, const Schema& schema,
                            const CsvOptions& options) {
  std::istringstream in(text);
  return ReadCsv(in, schema, options);
}

Status WriteCsv(const Table& table, std::ostream& out,
                const CsvOptions& options) {
  const Schema& schema = table.schema();
  if (options.header) {
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (i > 0) out << options.delimiter;
      out << schema.field(i).name;
    }
    out << "\n";
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const Value v = table.GetValue(r, c);
      if (v.is_null()) {
        out << options.null_token;
      } else {
        const std::string s = v.ToString();
        out << (NeedsQuoting(s, options.delimiter) ? QuoteField(s) : s);
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("CSV write failed");
  return Status::OK();
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadCsv(in, schema, options);
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteCsv(table, out, options);
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& part : Split(spec, ',')) {
    const auto pieces = Split(std::string(Trim(part)), ':');
    if (pieces.size() != 2) {
      return Status::ParseError("schema spec entry '" + part +
                                "' is not name:type");
    }
    Field f;
    std::string name(Trim(pieces[0]));
    if (!name.empty() && name.back() == '?') {
      f.nullable = true;
      name.pop_back();
    } else {
      f.nullable = false;
    }
    if (name.empty()) return Status::ParseError("empty column name");
    f.name = std::move(name);
    LAWS_ASSIGN_OR_RETURN(f.type, DataTypeFromString(Trim(pieces[1])));
    fields.push_back(std::move(f));
  }
  if (fields.empty()) return Status::ParseError("empty schema spec");
  return Schema(std::move(fields));
}

}  // namespace laws

#ifndef LAWSDB_STORAGE_CSV_H_
#define LAWSDB_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Options for CSV input/output.
struct CsvOptions {
  char delimiter = ',';
  /// Whether the first line is a header. On read, header names are checked
  /// against the schema; on write, a header is emitted.
  bool header = true;
  /// Token treated as NULL on read and emitted for NULLs on write.
  std::string null_token = "";
};

/// Parses CSV text into a table with the given schema. Handles quoted
/// fields with doubled-quote escapes. Rows with the wrong arity or
/// unparseable values yield ParseError with a line number.
Result<Table> ReadCsv(std::istream& in, const Schema& schema,
                      const CsvOptions& options = {});

/// Convenience overload over a string buffer.
Result<Table> ReadCsvString(const std::string& text, const Schema& schema,
                            const CsvOptions& options = {});

/// Writes a table as CSV.
Status WriteCsv(const Table& table, std::ostream& out,
                const CsvOptions& options = {});

/// File-path conveniences.
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          const CsvOptions& options = {});
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Parses a compact schema spec "name:type,name:type,..." (types as in
/// DataTypeFromString; append '?' to a name for nullable). Used by CLI
/// import paths.
Result<Schema> ParseSchemaSpec(const std::string& spec);

}  // namespace laws

#endif  // LAWSDB_STORAGE_CSV_H_

#include "storage/schema.h"

#include "common/string_util.h"

namespace laws {

Result<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return Status::NotFound("no field named '" + std::string(name) + "'");
}

bool Schema::HasField(std::string_view name) const {
  return FieldIndex(name).ok();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeToString(fields_[i].type);
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  return out;
}

}  // namespace laws

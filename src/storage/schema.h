#ifndef LAWSDB_STORAGE_SCHEMA_H_
#define LAWSDB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace laws {

/// One column definition.
struct Field {
  std::string name;
  DataType type = DataType::kDouble;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// An ordered list of fields with name lookup. Field names are compared
/// case-insensitively, as in SQL.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name` (case-insensitive), or NotFound.
  Result<size_t> FieldIndex(std::string_view name) const;

  /// True if a field with this name exists.
  bool HasField(std::string_view name) const;

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace laws

#endif  // LAWSDB_STORAGE_SCHEMA_H_

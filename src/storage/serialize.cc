#include "storage/serialize.h"

namespace laws {
namespace {

constexpr char kMagic[4] = {'L', 'W', 'S', '1'};

void SerializeColumn(const Column& col, size_t num_rows, ByteWriter* out) {
  // Validity bitmap: flag byte 1 + raw bytes when the column has nulls.
  const bool has_nulls = col.null_count() > 0;
  out->PutU8(has_nulls ? 1 : 0);
  if (has_nulls) {
    const auto& validity = col.validity();
    out->PutVarint(validity.size());
    out->PutRaw(validity.data(), validity.size());
  }
  switch (col.type()) {
    case DataType::kInt64:
      out->PutRaw(col.int64_data().data(), num_rows * sizeof(int64_t));
      break;
    case DataType::kDouble:
      out->PutRaw(col.double_data().data(), num_rows * sizeof(double));
      break;
    case DataType::kString: {
      out->PutVarint(col.dictionary().size());
      for (const auto& s : col.dictionary()) out->PutString(s);
      out->PutRaw(col.string_codes().data(), num_rows * sizeof(uint32_t));
      break;
    }
    case DataType::kBool:
      out->PutRaw(col.bool_data().data(), num_rows);
      break;
  }
}

Result<Column> DeserializeColumn(const Field& field, size_t num_rows,
                                 ByteReader* in) {
  LAWS_ASSIGN_OR_RETURN(uint8_t has_nulls, in->GetU8());
  std::vector<uint8_t> validity;
  if (has_nulls) {
    LAWS_ASSIGN_OR_RETURN(uint64_t vbytes, in->GetCount(1, "validity bitmap"));
    validity.resize(vbytes);
    LAWS_RETURN_IF_ERROR(in->GetRaw(validity.data(), vbytes));
  }
  auto valid_at = [&](size_t i) {
    if (validity.empty()) return true;
    return ((validity[i >> 3] >> (i & 7)) & 1) != 0;
  };

  Column col(field.type, field.nullable || has_nulls);
  switch (field.type) {
    case DataType::kInt64: {
      LAWS_RETURN_IF_ERROR(in->CheckAvailable(num_rows, 8, "INT64 column"));
      std::vector<int64_t> data(num_rows);
      LAWS_RETURN_IF_ERROR(
          in->GetRaw(data.data(), num_rows * sizeof(int64_t)));
      for (size_t i = 0; i < num_rows; ++i) {
        if (valid_at(i)) {
          col.AppendInt64(data[i]);
        } else {
          LAWS_RETURN_IF_ERROR(col.AppendNull());
        }
      }
      break;
    }
    case DataType::kDouble: {
      LAWS_RETURN_IF_ERROR(in->CheckAvailable(num_rows, 8, "DOUBLE column"));
      std::vector<double> data(num_rows);
      LAWS_RETURN_IF_ERROR(in->GetRaw(data.data(), num_rows * sizeof(double)));
      for (size_t i = 0; i < num_rows; ++i) {
        if (valid_at(i)) {
          col.AppendDouble(data[i]);
        } else {
          LAWS_RETURN_IF_ERROR(col.AppendNull());
        }
      }
      break;
    }
    case DataType::kString: {
      // Each dictionary entry encodes at least its 1-byte length prefix.
      LAWS_ASSIGN_OR_RETURN(uint64_t dict_size,
                            in->GetCount(1, "string dictionary"));
      std::vector<std::string> dict(dict_size);
      for (auto& s : dict) {
        LAWS_ASSIGN_OR_RETURN(s, in->GetString());
      }
      LAWS_RETURN_IF_ERROR(in->CheckAvailable(num_rows, 4, "string codes"));
      std::vector<uint32_t> codes(num_rows);
      LAWS_RETURN_IF_ERROR(
          in->GetRaw(codes.data(), num_rows * sizeof(uint32_t)));
      for (size_t i = 0; i < num_rows; ++i) {
        if (!valid_at(i)) {
          LAWS_RETURN_IF_ERROR(col.AppendNull());
          continue;
        }
        if (codes[i] >= dict.size()) {
          return Status::ParseError("dictionary code out of range");
        }
        col.AppendString(dict[codes[i]]);
      }
      break;
    }
    case DataType::kBool: {
      LAWS_RETURN_IF_ERROR(in->CheckAvailable(num_rows, 1, "BOOL column"));
      std::vector<uint8_t> data(num_rows);
      LAWS_RETURN_IF_ERROR(in->GetRaw(data.data(), num_rows));
      for (size_t i = 0; i < num_rows; ++i) {
        if (valid_at(i)) {
          col.AppendBool(data[i] != 0);
        } else {
          LAWS_RETURN_IF_ERROR(col.AppendNull());
        }
      }
      break;
    }
  }
  return col;
}

}  // namespace

void SerializeTable(const Table& table, ByteWriter* out) {
  out->PutRaw(kMagic, sizeof(kMagic));
  const Schema& schema = table.schema();
  out->PutVarint(schema.num_fields());
  for (const Field& f : schema.fields()) {
    out->PutString(f.name);
    out->PutU8(static_cast<uint8_t>(f.type));
    out->PutU8(f.nullable ? 1 : 0);
  }
  out->PutVarint(table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    SerializeColumn(table.column(c), table.num_rows(), out);
  }
}

std::vector<uint8_t> SerializeTableToBytes(const Table& table) {
  ByteWriter w;
  SerializeTable(table, &w);
  return w.TakeData();
}

Result<Table> DeserializeTable(ByteReader* in) {
  char magic[4];
  LAWS_RETURN_IF_ERROR(in->GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::ParseError("bad magic; not a LAWS table");
  }
  // A field encodes at least name length + type + nullable = 3 bytes.
  LAWS_ASSIGN_OR_RETURN(uint64_t nfields, in->GetCount(3, "field count"));
  std::vector<Field> fields;
  fields.reserve(nfields);
  for (uint64_t i = 0; i < nfields; ++i) {
    Field f;
    LAWS_ASSIGN_OR_RETURN(f.name, in->GetString());
    LAWS_ASSIGN_OR_RETURN(uint8_t t, in->GetU8());
    if (t > static_cast<uint8_t>(DataType::kBool)) {
      return Status::ParseError("bad column type tag");
    }
    f.type = static_cast<DataType>(t);
    LAWS_ASSIGN_OR_RETURN(uint8_t nullable, in->GetU8());
    f.nullable = nullable != 0;
    fields.push_back(std::move(f));
  }
  Schema schema(std::move(fields));
  LAWS_ASSIGN_OR_RETURN(uint64_t num_rows, in->GetVarint());
  std::vector<Column> columns;
  columns.reserve(schema.num_fields());
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    LAWS_ASSIGN_OR_RETURN(Column col,
                          DeserializeColumn(schema.field(c), num_rows, in));
    columns.push_back(std::move(col));
  }
  return Table::FromColumns(std::move(schema), std::move(columns));
}

Result<Table> DeserializeTableFromBytes(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  return DeserializeTable(&r);
}

}  // namespace laws

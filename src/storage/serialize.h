#ifndef LAWSDB_STORAGE_SERIALIZE_H_
#define LAWSDB_STORAGE_SERIALIZE_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Serializes a table into the LAWS binary format (uncompressed, plain
/// columnar layout). This is the reference encoding the semantic
/// compressor (laws::compress) is measured against.
///
/// Layout: magic "LWS1", schema, row count, per-column [validity bitmap?,
/// typed payload]. All integers little-endian; lengths as LEB128 varints.
void SerializeTable(const Table& table, ByteWriter* out);

/// Convenience: serialize to a fresh byte vector.
std::vector<uint8_t> SerializeTableToBytes(const Table& table);

/// Parses a table from the LAWS binary format.
Result<Table> DeserializeTable(ByteReader* in);

/// Convenience over a byte vector.
Result<Table> DeserializeTableFromBytes(const std::vector<uint8_t>& bytes);

}  // namespace laws

#endif  // LAWSDB_STORAGE_SERIALIZE_H_

#include "storage/table.h"

#include <algorithm>

namespace laws {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type, f.nullable);
  }
}

Result<Table> Table::FromColumns(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument("schema/column count mismatch");
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(i).type) {
      return Status::TypeMismatch("column type does not match schema field '" +
                                  schema.field(i).name + "'");
    }
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("ragged columns");
    }
  }
  Table t(std::move(schema));
  t.columns_ = std::move(columns);
  t.num_rows_ = rows;
  t.data_version_ = 1;
  return t;
}

Result<const Column*> Table::ColumnByName(std::string_view name) const {
  LAWS_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity does not match table");
  }
  // Validate before mutating so a failed append leaves the table unchanged.
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) {
      if (!schema_.field(i).nullable) {
        return Status::InvalidArgument("NULL for non-nullable field '" +
                                       schema_.field(i).name + "'");
      }
      continue;
    }
    const DataType t = schema_.field(i).type;
    const Value& v = values[i];
    const bool ok = (t == DataType::kInt64 && v.is_int64()) ||
                    (t == DataType::kDouble &&
                     (v.is_double() || v.is_int64())) ||
                    (t == DataType::kString && v.is_string()) ||
                    (t == DataType::kBool && v.is_bool());
    if (!ok) {
      return Status::TypeMismatch("value type mismatch for field '" +
                                  schema_.field(i).name + "'");
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    LAWS_RETURN_IF_ERROR(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  ++data_version_;
  return Status::OK();
}

Status Table::SyncRowCount() {
  size_t rows = columns_.empty() ? 0 : columns_[0].size();
  for (const Column& c : columns_) {
    if (c.size() != rows) {
      return Status::Internal("ragged columns after bulk load");
    }
  }
  num_rows_ = rows;
  ++data_version_;
  return Status::OK();
}

Table Table::GatherRows(const std::vector<uint32_t>& indices) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].Gather(indices);
  }
  out.num_rows_ = indices.size();
  out.data_version_ = 1;
  return out;
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const Column& c : columns_) bytes += c.MemoryBytes();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += "\n";
  const size_t shown = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c].GetValue(r).ToString();
    }
    out += "\n";
  }
  if (shown < num_rows_) {
    out += "[" + std::to_string(num_rows_ - shown) + " more rows]\n";
  }
  return out;
}

}  // namespace laws

#ifndef LAWSDB_STORAGE_TABLE_H_
#define LAWSDB_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace laws {

/// An in-memory columnar table. Mutations bump a data version counter that
/// the model-capture layer (laws::core) uses to detect stale fits — the
/// paper's "Data or model changes" challenge.
class Table {
 public:
  explicit Table(Schema schema);

  /// Builds a table from pre-populated columns; all columns must match the
  /// schema types and have equal length.
  static Result<Table> FromColumns(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Direct mutable access for bulk loaders; call SyncRowCount() afterwards
  /// to re-validate lengths and publish the new row count.
  Column* mutable_column(size_t i) { return &columns_[i]; }

  /// Column lookup by (case-insensitive) name.
  Result<const Column*> ColumnByName(std::string_view name) const;

  /// Appends one row; `values.size()` must equal the column count.
  Status AppendRow(const std::vector<Value>& values);

  /// Re-checks that all columns have equal length after bulk loading via
  /// mutable_column(), then publishes that length as the row count.
  Status SyncRowCount();

  /// Boxed cell access (slow path).
  Value GetValue(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// New table with the rows at `indices`, in order.
  Table GatherRows(const std::vector<uint32_t>& indices) const;

  /// Monotonic counter incremented by every mutation.
  uint64_t data_version() const { return data_version_; }

  /// Total columnar heap footprint in bytes.
  size_t MemoryBytes() const;

  /// Pretty-prints up to `max_rows` rows with a header (for examples/CLIs).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  uint64_t data_version_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace laws

#endif  // LAWSDB_STORAGE_TABLE_H_

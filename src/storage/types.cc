#include "storage/types.h"

#include <cstdio>

#include "common/string_util.h"

namespace laws {

std::string_view DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromString(std::string_view s) {
  const std::string up = ToLower(s);
  if (up == "int64" || up == "bigint" || up == "int" || up == "integer") {
    return DataType::kInt64;
  }
  if (up == "double" || up == "float" || up == "real" || up == "float8") {
    return DataType::kDouble;
  }
  if (up == "string" || up == "varchar" || up == "text" || up == "char") {
    return DataType::kString;
  }
  if (up == "bool" || up == "boolean") {
    return DataType::kBool;
  }
  return Status::ParseError("unknown data type: " + std::string(s));
}

Result<double> Value::AsDouble() const {
  if (is_double()) return dbl();
  if (is_int64()) return static_cast<double>(int64());
  if (is_bool()) return boolean() ? 1.0 : 0.0;
  if (is_null()) return Status::TypeMismatch("NULL has no numeric value");
  return Status::TypeMismatch("string is not numeric");
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_bool()) return boolean() ? "true" : "false";
  if (is_string()) return str();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", dbl());
  return buf;
}

}  // namespace laws

#ifndef LAWSDB_STORAGE_TYPES_H_
#define LAWSDB_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace laws {

/// Physical column types supported by the storage engine. Deliberately
/// small: the paper's workloads are scientific tables of ids, categorical
/// codes and measurements.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
};

/// Stable name for a data type ("INT64", "DOUBLE", ...).
std::string_view DataTypeToString(DataType t);

/// Parses a type name (case-insensitive); accepts SQL-ish aliases
/// (BIGINT/INT, FLOAT/REAL, VARCHAR/TEXT, BOOLEAN).
Result<DataType> DataTypeFromString(std::string_view s);

/// A dynamically typed scalar: a typed value or NULL. Used for literals,
/// row construction and scalar query results. Hot loops never touch Value —
/// they operate on the typed column arrays directly.
class Value {
 public:
  /// NULL value.
  Value() : payload_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value Bool(bool v) { return Value(Payload(v)); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(payload_);
  }
  bool is_int64() const { return std::holds_alternative<int64_t>(payload_); }
  bool is_double() const { return std::holds_alternative<double>(payload_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(payload_);
  }
  bool is_bool() const { return std::holds_alternative<bool>(payload_); }

  int64_t int64() const { return std::get<int64_t>(payload_); }
  double dbl() const { return std::get<double>(payload_); }
  const std::string& str() const { return std::get<std::string>(payload_); }
  bool boolean() const { return std::get<bool>(payload_); }

  /// Numeric view: int64/double/bool coerced to double. Error on NULL or
  /// string.
  Result<double> AsDouble() const;

  /// Renders the value for display; NULL prints as "NULL".
  std::string ToString() const;

  bool operator==(const Value& other) const { return payload_ == other.payload_; }

 private:
  using Payload =
      std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Payload p) : payload_(std::move(p)) {}

  Payload payload_;
};

}  // namespace laws

#endif  // LAWSDB_STORAGE_TYPES_H_

#include "testing/aqp_audit.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "aqp/hybrid.h"
#include "common/random.h"
#include "core/session.h"
#include "query/executor.h"
#include "storage/catalog.h"
#include "testing/differential.h"

namespace laws {
namespace testing {
namespace {

std::string FormatG(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Captured-model fixture: a balanced grid of 20 power-law sources
/// observed 6 times in each of 4 wavelength bands with small
/// multiplicative noise, fitted per group; plus an "uncaptured" table no
/// model covers, to exercise the no-model fallback.
struct AuditFixture {
  Catalog data;
  ModelCatalog models;
  DomainRegistry domains;
  std::unique_ptr<Session> session;
  std::unique_ptr<ModelQueryEngine> engine;
  std::vector<double> bands = {0.12, 0.15, 0.16, 0.18};

  Status Build(uint64_t seed) {
    Rng rng(seed);
    auto t = std::make_shared<Table>(
        Schema({Field{"source", DataType::kInt64, false},
                Field{"wavelength", DataType::kDouble, false},
                Field{"intensity", DataType::kDouble, false}}));
    for (int s = 1; s <= 20; ++s) {
      const double p = 0.5 + 0.05 * s;
      for (double nu : bands) {
        for (int rep = 0; rep < 6; ++rep) {
          LAWS_RETURN_IF_ERROR(
              t->AppendRow({Value::Int64(s), Value::Double(nu),
                            Value::Double(p * std::pow(nu, -0.7) *
                                          std::exp(rng.Normal(0, 0.004)))}));
        }
      }
    }
    data.RegisterOrReplace("measurements", t);

    auto plain = std::make_shared<Table>(
        Schema({Field{"k", DataType::kInt64, false},
                Field{"v", DataType::kDouble, false}}));
    for (int k = 0; k < 12; ++k) {
      LAWS_RETURN_IF_ERROR(plain->AppendRow(
          {Value::Int64(k % 4), Value::Double(0.25 * k - 1.0)}));
    }
    data.RegisterOrReplace("uncaptured", plain);

    session = std::make_unique<Session>(&data, &models);
    FitRequest r;
    r.table = "measurements";
    r.model_source = "power_law";
    r.input_columns = {"wavelength"};
    r.output_column = "intensity";
    r.group_column = "source";
    auto report = session->Fit(r);
    if (!report.ok()) return report.status();

    domains.Register("measurements", "wavelength",
                     ColumnDomain::Explicit(bands));
    engine = std::make_unique<ModelQueryEngine>(&data, &models, &domains);
    return Status::OK();
  }
};

/// Checks a fallback answer: exact method, stated reason, bit-identical
/// result.
void CheckFallback(const HybridAnswer& answer, const Table& exact,
                   const std::string& sql, AqpAuditReport* report) {
  ++report->exact_fallbacks;
  if (answer.approximate || answer.method != "exact") {
    report->violations.push_back("expected exact fallback for: " + sql +
                                 " (method " + answer.method + ")");
    return;
  }
  if (answer.fallback_reason.empty()) {
    report->violations.push_back("fallback without a reason for: " + sql);
    return;
  }
  std::string why;
  if (!TablesEquivalent(answer.table, exact, /*order_sensitive=*/true,
                        &why)) {
    report->violations.push_back(
        "fallback not bit-identical to exact for: " + sql + ": " + why);
  }
}

/// Checks an approximate single-value answer against the exact one: the
/// reported 95% prediction-interval half-width (times `slack`) must cover
/// the difference.
void CheckBound(const HybridAnswer& answer, const Table& exact, double slack,
                const std::string& sql, AqpAuditReport* report) {
  ++report->approximate;
  if (answer.error_bound <= 0.0) {
    report->violations.push_back("approximate answer with bound <= 0 for: " +
                                 sql);
    return;
  }
  if (answer.table.num_rows() != 1 || exact.num_rows() != 1 ||
      answer.table.num_columns() != 1 || exact.num_columns() != 1) {
    report->violations.push_back("unexpected shape for: " + sql);
    return;
  }
  const Value approx = answer.table.GetValue(0, 0);
  const Value truth = exact.GetValue(0, 0);
  if (approx.is_null() || truth.is_null()) {
    report->violations.push_back("NULL aggregate in audit for: " + sql);
    return;
  }
  const double diff = std::fabs(approx.dbl() - truth.dbl());
  if (!(diff <= slack * answer.error_bound)) {
    report->violations.push_back(
        "bound violated for: " + sql + ": |" + FormatG(approx.dbl()) +
        " - " + FormatG(truth.dbl()) + "| = " + FormatG(diff) + " > " +
        FormatG(slack) + " * " + FormatG(answer.error_bound));
  }
}

}  // namespace

std::string AqpAuditReport::Summary() const {
  std::string out = std::to_string(queries) + " queries: " +
                    std::to_string(approximate) +
                    " approximate answers audited, " +
                    std::to_string(exact_fallbacks) +
                    " exact fallbacks verified, " +
                    std::to_string(violations.size()) + " violations";
  for (const std::string& v : violations) out += "\n  " + v;
  return out;
}

Result<AqpAuditReport> RunAqpAudit(uint64_t seed, size_t num_queries) {
  AuditFixture fx;
  LAWS_RETURN_IF_ERROR(fx.Build(seed ^ 0xA0D17ULL));

  const HybridQueryEngine hybrid(&fx.data, fx.engine.get());
  HybridOptions strict_opts;
  strict_opts.min_quality = 2.0;  // unattainable: forces the quality gate
  const HybridQueryEngine strict(&fx.data, fx.engine.get(), strict_opts);

  Rng rng(seed);
  AqpAuditReport report;
  for (size_t q = 0; q < num_queries; ++q) {
    const double band =
        fx.bands[static_cast<size_t>(rng.UniformInt(0, 3))];
    const std::string band_text = FormatG(band);
    const int choice = static_cast<int>(rng.UniformInt(0, 5));
    std::string sql;
    const HybridQueryEngine* eng = &hybrid;
    double slack = 1.0;
    bool expect_fallback = false;
    switch (choice) {
      case 0:
        sql = "SELECT AVG(intensity) FROM measurements WHERE wavelength = " +
              band_text;
        break;
      case 1:
        sql = "SELECT MIN(intensity) FROM measurements WHERE wavelength = " +
              band_text;
        slack = 2.0;
        break;
      case 2:
        sql = "SELECT MAX(intensity) FROM measurements WHERE wavelength = " +
              band_text;
        slack = 2.0;
        break;
      case 3:
        // Raw multiplicity: must fall back (grid has one tuple per
        // combination).
        sql = "SELECT COUNT(*) FROM measurements WHERE wavelength = " +
              band_text;
        expect_fallback = true;
        break;
      case 4:
        // No covering model.
        sql = "SELECT AVG(v) FROM uncaptured WHERE k = " +
              std::to_string(rng.UniformInt(0, 3));
        expect_fallback = true;
        break;
      default:
        // Quality gate rejects every model.
        sql = "SELECT AVG(intensity) FROM measurements WHERE wavelength = " +
              band_text;
        eng = &strict;
        expect_fallback = true;
        break;
    }
    ++report.queries;

    Result<HybridAnswer> answer = eng->Execute(sql);
    if (!answer.ok()) {
      report.violations.push_back("hybrid error for: " + sql + ": " +
                                  answer.status().ToString());
      continue;
    }
    Result<Table> exact = ExecuteQuery(fx.data, sql);
    if (!exact.ok()) {
      report.violations.push_back("exact error for: " + sql + ": " +
                                  exact.status().ToString());
      continue;
    }
    if (expect_fallback) {
      CheckFallback(*answer, *exact, sql, &report);
    } else if (answer->approximate) {
      CheckBound(*answer, *exact, slack, sql, &report);
    } else {
      // The model path declined an eligible query; the answer must then
      // honor the fallback contract.
      CheckFallback(*answer, *exact, sql, &report);
    }
  }
  return report;
}

}  // namespace testing
}  // namespace laws

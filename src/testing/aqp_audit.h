#ifndef LAWSDB_TESTING_AQP_AUDIT_H_
#define LAWSDB_TESTING_AQP_AUDIT_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace laws {
namespace testing {

struct AqpAuditReport {
  size_t queries = 0;
  /// Model-path answers checked against their reported error bounds.
  size_t approximate = 0;
  /// Fallback answers checked bit-identical to the exact engine.
  size_t exact_fallbacks = 0;
  /// One entry per violated contract (empty on success).
  std::vector<std::string> violations;

  std::string Summary() const;
};

/// Audits the AQP error-bound contract on a captured-model fixture
/// (grouped power-law measurements; cf. the paper's Figure 2 flow):
///
///  * every approximate answer must carry a positive error bound, and its
///    values must lie within that bound of the exact engine's answer
///    (slack 1x for AVG, 2x for MIN/MAX whose extremes ride on the
///    noisiest single observations);
///  * every fallback path — COUNT(*) raw-multiplicity, no covering model,
///    quality below threshold — must return the exact engine's result
///    bit-identically, with method "exact" and a non-empty
///    fallback_reason.
///
/// SUM is deliberately excluded: the reconstructed grid has one tuple per
/// enumerated combination, so additive totals scale with raw multiplicity
/// the model cannot know. `seed` drives the query mix; `num_queries` sizes
/// the sweep.
Result<AqpAuditReport> RunAqpAudit(uint64_t seed, size_t num_queries);

}  // namespace testing
}  // namespace laws

#endif  // LAWSDB_TESTING_AQP_AUDIT_H_

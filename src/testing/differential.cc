#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include <thread>

#include "common/fault_injection.h"
#include "common/governor.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "compress/block_store.h"
#include "query/compressed_scan.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/query_context.h"
#include "query/vector_eval.h"
#include "testing/reference_oracle.h"
#include "testing/shrink.h"

namespace laws {
namespace testing {
namespace {

std::string RenderCell(const Value& v) {
  if (v.is_double()) {
    const double d = v.dbl();
    if (std::isnan(d)) return std::signbit(d) ? "-NaN" : "NaN";
    if (d == 0.0 && std::signbit(d)) return "-0.0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    return buf;
  }
  if (v.is_string()) return "'" + v.str() + "'";
  return v.ToString();
}

std::string RenderRow(const Table& t, size_t row) {
  std::string out = "(";
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (c > 0) out += ", ";
    out += RenderCell(t.GetValue(row, c));
  }
  return out + ")";
}

/// Bit-identity encoding of one row: every NaN folds to one class,
/// -0.0 keeps its sign bit (§11 output identity).
std::string EncodeRow(const Table& t, size_t row) {
  std::string key;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Value v = t.GetValue(row, c);
    if (v.is_null()) {
      key.push_back('N');
    } else if (v.is_int64()) {
      const int64_t x = v.int64();
      key.push_back('i');
      key.append(reinterpret_cast<const char*>(&x), sizeof(x));
    } else if (v.is_double()) {
      double x = v.dbl();
      if (std::isnan(x)) x = std::numeric_limits<double>::quiet_NaN();
      key.push_back('d');
      key.append(reinterpret_cast<const char*>(&x), sizeof(x));
    } else if (v.is_bool()) {
      key.push_back(v.boolean() ? 'T' : 'F');
    } else {
      const std::string& s = v.str();
      const uint32_t len = static_cast<uint32_t>(s.size());
      key.push_back('s');
      key.append(reinterpret_cast<const char*>(&len), sizeof(len));
      key.append(s);
    }
  }
  return key;
}

}  // namespace

bool TablesEquivalent(const Table& a, const Table& b, bool order_sensitive,
                      std::string* why) {
  if (a.num_columns() != b.num_columns()) {
    *why = "column count " + std::to_string(a.num_columns()) + " vs " +
           std::to_string(b.num_columns());
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Field& fa = a.schema().field(c);
    const Field& fb = b.schema().field(c);
    if (fa.name != fb.name || fa.type != fb.type) {
      *why = "schema differs at column " + std::to_string(c) + ": " +
             fa.name + " " + std::string(DataTypeToString(fa.type)) +
             " vs " + fb.name + " " +
             std::string(DataTypeToString(fb.type));
      return false;
    }
  }
  if (a.num_rows() != b.num_rows()) {
    *why = "row count " + std::to_string(a.num_rows()) + " vs " +
           std::to_string(b.num_rows());
    return false;
  }
  std::vector<std::pair<std::string, size_t>> ka, kb;
  ka.reserve(a.num_rows());
  kb.reserve(b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    ka.emplace_back(EncodeRow(a, r), r);
    kb.emplace_back(EncodeRow(b, r), r);
  }
  if (!order_sensitive) {
    std::stable_sort(ka.begin(), ka.end());
    std::stable_sort(kb.begin(), kb.end());
  }
  for (size_t i = 0; i < ka.size(); ++i) {
    if (ka[i].first != kb[i].first) {
      *why = std::string(order_sensitive ? "row " : "multiset row ") +
             std::to_string(i) + " differs: " + RenderRow(a, ka[i].second) +
             " vs " + RenderRow(b, kb[i].second);
      return false;
    }
  }
  return true;
}

CaseDiff DiffCase(const std::vector<GenTable>& tables,
                  const SelectStatement& stmt) {
  CaseDiff out;
  Result<Catalog> catalog = MaterializeCatalog(tables);
  if (!catalog.ok()) {
    out.reason = "harness: materialize failed: " + catalog.status().ToString();
    return out;
  }

  const OracleResult oracle = OracleExecuteSelect(*catalog, stmt);

  // Per-tier matrix: the row-at-a-time tree-walker on the decode path is
  // the semantic reference. The compiled bytecode tier must match it
  // bit-for-bit at 1 thread and at the default pool width, and the
  // compressed scan tier (zone-map pruning + run-aware evaluation +
  // encoded aggregation) must match it under both expression engines.
  // Every comparison is against treewalk@1 so a single diverging tier is
  // named directly.
  const ExprEngine prev_engine = GlobalExprEngine();
  const ScanEngine prev_scan = GlobalScanEngine();
  const size_t prev_block_rows = ScanBlockRows();
  ThreadPool::SetGlobalThreadCount(1);
  SetGlobalScanEngine(ScanEngine::kDecode);
  SetGlobalExprEngine(ExprEngine::kTreewalk);
  const Result<Table> exec1 = ExecuteSelect(*catalog, stmt);
  SetGlobalExprEngine(ExprEngine::kBytecode);
  const Result<Table> byte1 = ExecuteSelect(*catalog, stmt);
  ThreadPool::SetGlobalThreadCount(0);
  const Result<Table> byten = ExecuteSelect(*catalog, stmt);
  // Compressed tiers run with a deliberately tiny block size so the
  // fuzzer's small tables span many blocks and the prune/take/run-merge
  // machinery genuinely engages instead of degenerating to one block.
  SetGlobalScanEngine(ScanEngine::kCompressed);
  SetScanBlockRows(8);
  const Result<Table> comp_byten = ExecuteSelect(*catalog, stmt);
  ThreadPool::SetGlobalThreadCount(1);
  const Result<Table> comp_byte1 = ExecuteSelect(*catalog, stmt);
  SetGlobalExprEngine(ExprEngine::kTreewalk);
  const Result<Table> comp_tree1 = ExecuteSelect(*catalog, stmt);
  SetGlobalExprEngine(prev_engine);
  SetGlobalScanEngine(prev_scan);
  SetScanBlockRows(prev_block_rows);
  ThreadPool::SetGlobalThreadCount(0);

  const auto tier_divergence =
      [&](const char* name, const Result<Table>& other) -> std::string {
    if (exec1.ok() != other.ok()) {
      return std::string("executor tier divergence (treewalk@1 vs ") + name +
             "): treewalk@1 " +
             (exec1.ok() ? std::string("OK") : exec1.status().ToString()) +
             " vs " +
             (other.ok() ? std::string("OK") : other.status().ToString());
    }
    if (exec1.ok()) {
      std::string why;
      if (!TablesEquivalent(*exec1, *other, /*order_sensitive=*/true, &why)) {
        return std::string("executor tier divergence (treewalk@1 vs ") +
               name + "): " + why;
      }
    }
    return std::string();
  };
  out.reason = tier_divergence("bytecode@1", byte1);
  if (!out.reason.empty()) return out;
  out.reason = tier_divergence("bytecode@N", byten);
  if (!out.reason.empty()) return out;
  out.reason = tier_divergence("compressed+bytecode@1", comp_byte1);
  if (!out.reason.empty()) return out;
  out.reason = tier_divergence("compressed+bytecode@N", comp_byten);
  if (!out.reason.empty()) return out;
  out.reason = tier_divergence("compressed+treewalk@1", comp_tree1);
  if (!out.reason.empty()) return out;

  if (!oracle.status.ok() && !exec1.ok()) {
    // Error-ness agrees; messages may legitimately differ.
    out.agreed_error = true;
    return out;
  }
  if (oracle.status.ok() != exec1.ok()) {
    out.reason = "error-ness mismatch: oracle " +
                 (oracle.status.ok() ? std::string("OK")
                                     : oracle.status.ToString()) +
                 " vs executor " +
                 (exec1.ok() ? std::string("OK") : exec1.status().ToString());
    return out;
  }

  std::string why;
  if (!TablesEquivalent(oracle.table, *exec1, oracle.order_total, &why)) {
    out.reason = std::string("result mismatch (") +
                 (oracle.order_total ? "ordered" : "multiset") +
                 "): oracle vs executor: " + why;
    return out;
  }
  return out;
}

std::string DiffReport::Summary() const {
  std::string out = std::to_string(queries) + " queries: " +
                    std::to_string(agree_rows) + " agreed on rows, " +
                    std::to_string(agree_errors) + " agreed on errors, " +
                    std::to_string(parse_failures) + " parse failures, " +
                    std::to_string(mismatches.size()) + " mismatches";
  for (const DiffMismatch& m : mismatches) {
    out += "\n--- mismatch (replay with LAWS_FUZZ_SEED=" +
           std::to_string(m.case_seed) + " LAWS_FUZZ_QUERIES=1) ---\n";
    out += "sql:    " + m.sql + "\n";
    out += "reason: " + m.reason + "\n";
    if (!m.shrunk_sql.empty()) out += "shrunk: " + m.shrunk_sql + "\n";
    if (!m.shrunk_tables.empty()) out += m.shrunk_tables;
  }
  return out;
}

DiffReport RunDifferential(const DiffOptions& opts) {
  DiffReport report;
  for (size_t i = 0; i < opts.num_queries; ++i) {
    const uint64_t case_seed = opts.seed + i;
    GeneratedCase gc = GenerateCase(case_seed);
    ++report.queries;

    Result<SelectStatement> stmt = ParseSelect(gc.sql);
    if (!stmt.ok()) {
      ++report.parse_failures;
      DiffMismatch m;
      m.case_seed = case_seed;
      m.sql = gc.sql;
      m.reason = "generator emitted unparsable SQL: " +
                 stmt.status().ToString();
      report.mismatches.push_back(std::move(m));
      if (report.mismatches.size() >= opts.max_reported) break;
      continue;
    }

    CaseDiff diff = DiffCase(gc.tables, *stmt);
    if (diff.reason.empty()) {
      if (diff.agreed_error) {
        ++report.agree_errors;
      } else {
        ++report.agree_rows;
      }
      continue;
    }

    DiffMismatch m;
    m.case_seed = case_seed;
    m.sql = gc.sql;
    m.reason = diff.reason;

    std::vector<GenTable> shrunk_tables = gc.tables;
    SelectStatement shrunk_stmt = CloneStatement(*stmt);
    ShrinkCase(
        &shrunk_tables, &shrunk_stmt,
        [](const std::vector<GenTable>& t, const SelectStatement& s) {
          return !DiffCase(t, s).reason.empty();
        },
        opts.shrink_budget);
    m.shrunk_sql = shrunk_stmt.ToString();
    for (const GenTable& t : shrunk_tables) m.shrunk_tables += t.ToString();

    report.mismatches.push_back(std::move(m));
    if (report.mismatches.size() >= opts.max_reported) break;
  }
  // Leave the global pool at its default width for whatever runs next.
  ThreadPool::SetGlobalThreadCount(0);
  return report;
}

std::string ChaosReport::Summary() const {
  std::string out = std::to_string(queries) + " chaos cases: " +
                    std::to_string(completed_identical) +
                    " completed bit-identical, " +
                    std::to_string(governor_stopped) +
                    " stopped by the governor, " +
                    std::to_string(agreed_errors) + " agreed errors, " +
                    std::to_string(violations.size()) + " violations";
  for (const std::string& v : violations) out += "\n--- violation ---\n" + v;
  return out;
}

ChaosReport RunGovernorChaos(const ChaosOptions& opts) {
  ChaosReport report;
  const ExprEngine prev_engine = GlobalExprEngine();
  const ScanEngine prev_scan = GlobalScanEngine();
  const size_t prev_block_rows = ScanBlockRows();

  for (size_t i = 0; i < opts.num_queries; ++i) {
    const uint64_t case_seed = opts.seed + i;
    // Salt the regime stream so it does not mirror the generator's.
    Rng rng(case_seed * 0x9E3779B97F4A7C15ull + 1);
    GeneratedCase gc = GenerateCase(case_seed);
    ++report.queries;

    const auto violation = [&](const std::string& what) {
      report.violations.push_back(
          "seed " + std::to_string(case_seed) +
          " (replay with LAWS_CHAOS_SEED=" + std::to_string(case_seed) +
          " LAWS_CHAOS_QUERIES=1)\nsql:    " + gc.sql + "\nreason: " + what);
    };

    Result<SelectStatement> stmt = ParseSelect(gc.sql);
    if (!stmt.ok()) {
      violation("generator emitted unparsable SQL: " +
                stmt.status().ToString());
      if (report.violations.size() >= opts.max_reported) break;
      continue;
    }
    Result<Catalog> catalog = MaterializeCatalog(gc.tables);
    if (!catalog.ok()) {
      violation("harness: materialize failed: " + catalog.status().ToString());
      if (report.violations.size() >= opts.max_reported) break;
      continue;
    }

    // Random execution tier, shared by the reference and the governed run
    // so bit-identity is compared apples-to-apples.
    SetGlobalExprEngine(rng.UniformInt(0, 1) == 1 ? ExprEngine::kBytecode
                                                  : ExprEngine::kTreewalk);
    const bool compressed = rng.UniformInt(0, 1) == 1;
    SetGlobalScanEngine(compressed ? ScanEngine::kCompressed
                                   : ScanEngine::kDecode);
    if (compressed) SetScanBlockRows(8);
    ThreadPool::SetGlobalThreadCount(rng.UniformInt(0, 1) == 1 ? 1 : 0);

    const Result<Table> reference = ExecuteSelect(*catalog, *stmt);

    // Draw a governor regime.
    enum Regime {
      kPreCancel = 0,
      kAsyncCancel,
      kDeadline,
      kBudget,
      kPollFault,
      kAllocFault,
      kRegimeCount
    };
    const int regime = static_cast<int>(rng.UniformInt(0, kRegimeCount - 1));
    ResourceLimits limits;
    if (regime == kDeadline) {
      // Tiny deadlines trip on the first poll; generous ones let the
      // query complete — both sides of the invariant get exercised.
      static const int64_t kDeadlines[] = {1, 100, 5000, 1000000};
      limits.timeout_micros = kDeadlines[rng.UniformInt(0, 3)];
    } else if (regime == kBudget) {
      static const uint64_t kBudgets[] = {1, 512, 64ull << 10, 64ull << 20};
      limits.memory_budget_bytes = kBudgets[rng.UniformInt(0, 3)];
    } else if (regime == kPollFault || regime == kAllocFault) {
      FaultSpec spec;
      spec.kind = FaultSpec::Kind::kError;
      spec.skip_hits = static_cast<uint64_t>(rng.UniformInt(0, 40));
      spec.max_triggers = 1;
      FaultInjector::Instance().Arm(
          regime == kPollFault ? "governor/poll" : "governor/alloc", spec);
    }

    QueryContext ctx(limits);
    if (regime == kPreCancel) ctx.Cancel();
    std::thread canceler;
    if (regime == kAsyncCancel) {
      const int64_t delay_us = rng.UniformInt(0, 200);
      canceler = std::thread([&ctx, delay_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        ctx.Cancel();
      });
    }
    const Result<Table> governed =
        ctx.Run([&] { return ExecuteSelect(*catalog, *stmt); });
    if (canceler.joinable()) canceler.join();
    FaultInjector::Instance().DisarmAll();
    SetScanBlockRows(prev_block_rows);

    // The invariant: a clean governor stop, a bit-identical completion,
    // or an error both runs agree on. Anything else is a bug.
    if (!governed.ok() && IsGovernorStatusCode(governed.status().code())) {
      ++report.governor_stopped;
    } else if (governed.ok() && reference.ok()) {
      std::string why;
      if (TablesEquivalent(*reference, *governed, /*order_sensitive=*/true,
                           &why)) {
        ++report.completed_identical;
      } else {
        violation("governed run diverged from ungoverned reference: " + why);
      }
    } else if (!governed.ok() && !reference.ok()) {
      ++report.agreed_errors;
    } else if (governed.ok()) {
      violation("governed run succeeded where the reference failed: " +
                reference.status().ToString());
    } else {
      violation("governed run failed with a non-governor error the "
                "reference did not raise: " +
                governed.status().ToString());
    }
    if (report.violations.size() >= opts.max_reported) break;
  }

  SetGlobalExprEngine(prev_engine);
  SetGlobalScanEngine(prev_scan);
  SetScanBlockRows(prev_block_rows);
  ThreadPool::SetGlobalThreadCount(0);
  return report;
}

}  // namespace testing
}  // namespace laws

#ifndef LAWSDB_TESTING_DIFFERENTIAL_H_
#define LAWSDB_TESTING_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "storage/table.h"
#include "testing/query_gen.h"

namespace laws {
namespace testing {

/// Configuration for a differential sweep.
struct DiffOptions {
  uint64_t seed = 0x1AB5;
  size_t num_queries = 2000;
  /// Repro evaluations the shrinker may spend per mismatch.
  size_t shrink_budget = 400;
  /// Stop sweeping after this many mismatches (each is expensive to
  /// shrink and one is already a failure).
  size_t max_reported = 8;
};

/// One diagnosed disagreement, replayable by seed.
struct DiffMismatch {
  uint64_t case_seed = 0;
  std::string sql;
  std::string reason;
  std::string shrunk_sql;
  std::string shrunk_tables;
};

struct DiffReport {
  size_t queries = 0;
  /// Cases where oracle and executor agreed on result rows.
  size_t agree_rows = 0;
  /// Cases where both sides errored (error-ness is compared, messages are
  /// not).
  size_t agree_errors = 0;
  /// Generator emitted SQL the parser rejected — a harness bug, counted
  /// separately so it can be asserted to zero.
  size_t parse_failures = 0;
  std::vector<DiffMismatch> mismatches;

  std::string Summary() const;
};

/// Compares two result tables: schema (names + types) and values must be
/// bit-identical — every NaN is one equivalence class, but -0.0 and +0.0
/// are distinct. With `order_sensitive` rows are compared in order,
/// otherwise as multisets. On mismatch fills *why.
bool TablesEquivalent(const Table& a, const Table& b, bool order_sensitive,
                      std::string* why);

/// Outcome of diffing one statement across the oracle and the executor
/// tier matrix: tree-walker@1-thread, bytecode@1-thread and
/// bytecode@default-threads, all bit-identical or the case fails.
struct CaseDiff {
  /// Both sides raised an error (counted as agreement).
  bool agreed_error = false;
  /// Empty = agreement; otherwise a human-readable divergence.
  std::string reason;
};

CaseDiff DiffCase(const std::vector<GenTable>& tables,
                  const SelectStatement& stmt);

/// The differential sweep: generate → parse → run on both engines → diff,
/// shrinking every mismatch before reporting it.
DiffReport RunDifferential(const DiffOptions& opts);

/// Configuration for the governor chaos sweep.
struct ChaosOptions {
  uint64_t seed = 0xC4A05;
  size_t num_queries = 300;
  /// Stop collecting after this many violations (each report is large).
  size_t max_reported = 8;
};

struct ChaosReport {
  size_t queries = 0;
  /// Governed run completed and matched the ungoverned reference
  /// bit-for-bit on the same tier.
  size_t completed_identical = 0;
  /// Governed run stopped with a clean typed governor error
  /// (kCanceled / kDeadlineExceeded / kResourceExhausted).
  size_t governor_stopped = 0;
  /// Both runs raised a (non-governor) query error.
  size_t agreed_errors = 0;
  /// Invariant breaches: wrong rows, a non-governor error the reference
  /// did not raise, or a success where the reference failed. Each entry
  /// is replayable by the seed it names. Crashes never reach this list —
  /// they kill the sanitizer-instrumented process, which is the point.
  std::vector<std::string> violations;

  std::string Summary() const;
};

/// The chaos leg: every generated case runs once ungoverned (the
/// reference) and once under a randomly drawn governor regime — a cancel
/// armed up front, a cancel fired from another thread mid-flight, a tiny
/// or generous deadline, a tiny or generous memory budget, or a fault
/// armed at the governor/poll or governor/alloc site — on a randomly
/// drawn engine/thread tier. Invariant: the governed run either matches
/// the reference exactly (rows bit-identical, or both error) or fails
/// with a clean governor error. Disarms all injected faults before
/// returning.
ChaosReport RunGovernorChaos(const ChaosOptions& opts);

}  // namespace testing
}  // namespace laws

#endif  // LAWSDB_TESTING_DIFFERENTIAL_H_

#include "testing/learning_diff.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "aqp/domain.h"
#include "aqp/hybrid.h"
#include "aqp/model_aqp.h"
#include "common/metrics.h"
#include "common/random.h"
#include "learn/learner.h"
#include "query/executor.h"
#include "query/parser.h"
#include "storage/catalog.h"
#include "testing/differential.h"
#include "testing/query_gen.h"

namespace laws {
namespace testing {
namespace {

std::string FormatG(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

uint64_t MixSeed(uint64_t seed, uint64_t i) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (i + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Report(LearnDiffReport* report, size_t max_reported, std::string what) {
  if (report->violations.size() < max_reported) {
    report->violations.push_back(std::move(what));
  }
}

/// Phase A: one fuzz case with harvesting on vs. the learning-off
/// reference. The learner is fresh per case so its candidates always
/// refer to this case's tables (the batch self-check re-reads them).
void RunFuzzCase(uint64_t case_seed, LearnDiffReport* report,
                 size_t max_reported) {
  GeneratedCase gc = GenerateCase(case_seed);
  const std::string tag = " for seed " + std::to_string(case_seed) + ": " +
                          gc.sql;

  Result<SelectStatement> stmt = ParseSelect(gc.sql);
  if (!stmt.ok()) {
    ++report->parse_failures;
    return;
  }
  Result<Catalog> catalog = MaterializeCatalog(gc.tables);
  if (!catalog.ok()) {
    Report(report, max_reported,
           "materialize failed" + tag + ": " + catalog.status().ToString());
    return;
  }

  LearnerOptions lopts;
  lopts.enabled = true;
  Learner learner(lopts);
  ModelCatalog models;
  DomainRegistry domains;
  ModelQueryEngine aqp(&*catalog, &models, &domains);
  HybridOptions hopts;
  hopts.learner = &learner;
  const HybridQueryEngine hybrid(&*catalog, &aqp, hopts);

  ++report->queries;
  Result<HybridAnswer> on = hybrid.Execute(gc.sql);
  Result<Table> reference = ExecuteQuery(*catalog, gc.sql);

  if (on.ok() != reference.ok()) {
    Report(report, max_reported,
           std::string("error disagreement") + tag + ": learning-on " +
               (on.ok() ? "succeeded" : on.status().ToString()) +
               ", reference " +
               (reference.ok() ? "succeeded" : reference.status().ToString()));
    return;
  }
  if (!on.ok()) {
    ++report->agreed_errors;
    return;
  }
  // The model catalog is empty, so every answer must come off the exact
  // path — an approximate answer here would mean learning invented data.
  if (on->approximate || on->method != "exact") {
    Report(report, max_reported,
           "non-exact answer from an empty model catalog" + tag);
    return;
  }
  std::string why;
  if (!TablesEquivalent(on->table, *reference, /*order_sensitive=*/true,
                        &why)) {
    Report(report, max_reported,
           "learning-on answer diverged" + tag + ": " + why);
    return;
  }
  ++report->exact_matches;

  // Self-check: the merged sufficient statistics this case harvested
  // must equal a batch OLS over the exact rows they claim to cover.
  const std::string mismatch =
      learner.VerifyCandidatesAgainstBatch(*catalog, 1e-6);
  if (!mismatch.empty()) {
    Report(report, max_reported, "harvest self-check failed" + tag + ": " +
                                     mismatch);
    return;
  }
  ++report->self_checks;
}

/// Phase B fixture: reading = a + b·ln(t) with small Gaussian noise over
/// a fixed t-grid — a log law the candidate families contain, so the
/// harvested candidate converges on the generating law.
struct WorkloadFixture {
  Catalog data;
  ModelCatalog models;
  DomainRegistry domains;
  std::vector<int64_t> grid = {1, 2, 4, 8, 16, 32, 64, 128};
  static constexpr double kA = 2.5;
  static constexpr double kB = 0.8;
  static constexpr double kNoise = 0.01;

  Status Build(Rng* rng, size_t reps_per_t) {
    auto t = std::make_shared<Table>(
        Schema({Field{"t", DataType::kDouble, false},
                Field{"reading", DataType::kDouble, false}}));
    data.RegisterOrReplace("signals", t);
    return Append(rng, reps_per_t);
  }

  Status Append(Rng* rng, size_t reps_per_t) {
    auto table = data.Get("signals");
    if (!table.ok()) return table.status();
    for (size_t rep = 0; rep < reps_per_t; ++rep) {
      for (int64_t tv : grid) {
        const double x = static_cast<double>(tv);
        const double y =
            kA + kB * std::log(x) + rng->Normal(0.0, kNoise);
        LAWS_RETURN_IF_ERROR(
            (*table)->AppendRow({Value::Double(x), Value::Double(y)}));
      }
    }
    return Status::OK();
  }
};

void RunWorkloadPhase(const LearnDiffOptions& opts, LearnDiffReport* report) {
  Rng rng(opts.seed ^ 0xB0B5CA1EULL);
  WorkloadFixture fx;
  if (Status s = fx.Build(&rng, /*reps_per_t=*/14); !s.ok()) {
    Report(report, opts.max_reported,
           "workload fixture build failed: " + s.ToString());
    return;
  }

  LearnerOptions lopts;
  lopts.enabled = true;
  Learner learner(lopts);
  ModelQueryEngine aqp(&fx.data, &fx.models, &fx.domains);
  HybridOptions hopts;
  hopts.learner = &learner;
  const HybridQueryEngine hybrid(&fx.data, &aqp, hopts);

  // Last served bound per query text: bounds may only tighten. The 1%
  // slack covers a better-fitting family taking over the pair (its
  // adjusted R² is strictly higher, but the t-quantile differs at small
  // degrees of freedom); the strict per-model guarantee is the refine
  // gate, unit-tested in learn_test.
  std::map<std::string, double> last_bound;
  std::vector<size_t> hits_per_batch(opts.workload_batches, 0);

  for (size_t batch = 0; batch < opts.workload_batches; ++batch) {
    for (size_t q = 0; q < opts.batch_queries; ++q) {
      const int64_t tv =
          fx.grid[static_cast<size_t>(rng.UniformInt(0, 7))];
      const std::string t_text = std::to_string(tv);
      const int choice = static_cast<int>(rng.UniformInt(0, 4));
      std::string sql;
      double slack = 1.0;
      bool must_be_exact = false;
      switch (choice) {
        case 0:
          sql = "SELECT AVG(reading) FROM signals WHERE t = " + t_text;
          break;
        case 1:
          sql = "SELECT MIN(reading) FROM signals WHERE t = " + t_text;
          slack = 2.0;
          break;
        case 2:
          sql = "SELECT MAX(reading) FROM signals WHERE t = " + t_text;
          slack = 2.0;
          break;
        case 3:
          // Raw multiplicity: no model answers COUNT(*), so this leg
          // keeps harvesting even once the aggregates hit models.
          sql = "SELECT COUNT(*) FROM signals WHERE t = " + t_text;
          must_be_exact = true;
          break;
        default:
          // Raw projection referencing both columns: always exact, and
          // the richest harvest (every usable row of both columns).
          sql = "SELECT t, reading FROM signals WHERE t >= 1";
          must_be_exact = true;
          break;
      }
      ++report->queries;

      Result<HybridAnswer> answer = hybrid.Execute(sql);
      if (!answer.ok()) {
        Report(report, opts.max_reported,
               "hybrid error for: " + sql + ": " +
                   answer.status().ToString());
        continue;
      }
      Result<Table> exact = ExecuteQuery(fx.data, sql);
      if (!exact.ok()) {
        Report(report, opts.max_reported,
               "exact error for: " + sql + ": " + exact.status().ToString());
        continue;
      }

      if (answer->approximate) {
        if (must_be_exact) {
          Report(report, opts.max_reported,
                 "approximate answer for a raw-multiplicity query: " + sql);
          continue;
        }
        ++report->audited;
        ++report->model_hits;
        ++hits_per_batch[batch];
        if (answer->error_bound <= 0.0) {
          Report(report, opts.max_reported,
                 "approximate answer with bound <= 0 for: " + sql);
          continue;
        }
        const Value approx = answer->table.GetValue(0, 0);
        const Value truth = exact->GetValue(0, 0);
        if (approx.is_null() || truth.is_null()) {
          Report(report, opts.max_reported,
                 "NULL aggregate in learning audit for: " + sql);
          continue;
        }
        const double diff = std::fabs(approx.dbl() - truth.dbl());
        if (!(diff <= slack * answer->error_bound)) {
          Report(report, opts.max_reported,
                 "bound violated for: " + sql + ": |" +
                     FormatG(approx.dbl()) + " - " + FormatG(truth.dbl()) +
                     "| = " + FormatG(diff) + " > " + FormatG(slack) + " * " +
                     FormatG(answer->error_bound));
          continue;
        }
        auto it = last_bound.find(sql);
        if (it != last_bound.end() &&
            answer->error_bound > it->second * 1.01) {
          Report(report, opts.max_reported,
                 "served bound widened for: " + sql + ": " +
                     FormatG(it->second) + " -> " +
                     FormatG(answer->error_bound));
        }
        last_bound[sql] = answer->error_bound;
      } else {
        std::string why;
        if (!TablesEquivalent(answer->table, *exact,
                              /*order_sensitive=*/true, &why)) {
          Report(report, opts.max_reported,
                 "exact answer diverged for: " + sql + ": " + why);
        }
      }
    }

    // Batch self-check before publication, then one maintenance pass.
    const std::string mismatch =
        learner.VerifyCandidatesAgainstBatch(fx.data, 1e-6);
    if (!mismatch.empty()) {
      Report(report, opts.max_reported,
             "workload harvest self-check failed: " + mismatch);
    } else {
      ++report->self_checks;
    }
    LearnTickReport tick = learner.Apply(fx.data, &fx.models);
    report->promotions += tick.promoted;
    report->refinements += tick.refined;

    // Mid-sweep ingest (same law): the served model goes stale, the next
    // batch falls back exact (harvesting the fresh rows), its Apply
    // refines the model — but only if the refreshed interval is no
    // wider, so freshness is re-earned, not assumed — and the final
    // batch must then be served approximately again. Firing three
    // batches from the end leaves that recovery batch observable.
    if (batch + 3 == opts.workload_batches) {
      if (Status s = fx.Append(&rng, /*reps_per_t=*/8); !s.ok()) {
        Report(report, opts.max_reported,
               "workload ingest failed: " + s.ToString());
      }
    }
  }

  if (report->promotions == 0) {
    Report(report, opts.max_reported,
           "the repeated workload promoted no model");
  }
  if (report->model_hits == 0) {
    Report(report, opts.max_reported,
           "no query was ever served by a learned model");
  }
  // Hit rate must rise as the workload repeats: the first batch runs
  // against an empty catalog (zero hits by construction) and the final
  // batch runs after the post-ingest refinement, so a cold finish means
  // learning failed to recover from the data-version bump.
  if (!hits_per_batch.empty() &&
      hits_per_batch.back() <= hits_per_batch.front()) {
    Report(report, opts.max_reported,
           "model hit rate never rose across the repeated workload (" +
               std::to_string(hits_per_batch.front()) + " hits in the first " +
               "batch, " + std::to_string(hits_per_batch.back()) +
               " in the last)");
  }
}

}  // namespace

std::string LearnDiffReport::Summary() const {
  std::string out =
      std::to_string(queries) + " queries: " + std::to_string(exact_matches) +
      " exact answers bit-identical, " + std::to_string(agreed_errors) +
      " agreed errors, " + std::to_string(audited) +
      " approximate answers audited (" + std::to_string(model_hits) +
      " model hits), " + std::to_string(promotions) + " promoted, " +
      std::to_string(refinements) + " refined, " +
      std::to_string(self_checks) + " harvest self-checks, " +
      std::to_string(harvested_rows) + " rows harvested, " +
      std::to_string(parse_failures) + " parse failures, " +
      std::to_string(violations.size()) + " violations";
  for (const std::string& v : violations) out += "\n  " + v;
  return out;
}

LearnDiffReport RunLearningDifferential(const LearnDiffOptions& opts) {
  LearnDiffReport report;
  Counter* harvest_rows =
      MetricsRegistry::Global().GetCounter("learn.harvest.rows");
  const uint64_t rows_before = harvest_rows->value();

  for (size_t i = 0; i < opts.num_queries; ++i) {
    RunFuzzCase(MixSeed(opts.seed, i), &report, opts.max_reported);
  }
  RunWorkloadPhase(opts, &report);

  report.harvested_rows = harvest_rows->value() - rows_before;
  if (report.harvested_rows == 0) {
    Report(&report, opts.max_reported, "the sweep harvested zero rows");
  }
  return report;
}

std::string HarvestConsistencyProbe() {
  Catalog data;
  auto table = std::make_shared<Table>(
      Schema({Field{"x", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
  for (int r = 1; r <= 96; ++r) {
    const double x = static_cast<double>(r);
    Status s = table->AppendRow({Value::Double(x), Value::Double(3.0 + 2.0 * x)});
    if (!s.ok()) return "probe build failed: " + s.ToString();
  }
  data.RegisterOrReplace("probe", table);

  LearnerOptions lopts;
  lopts.enabled = true;
  Learner learner(lopts);
  ModelCatalog models;
  DomainRegistry domains;
  ModelQueryEngine aqp(&data, &models, &domains);
  HybridOptions hopts;
  hopts.learner = &learner;
  const HybridQueryEngine hybrid(&data, &aqp, hopts);

  // Two scans with an ingest between them: each scan merges its local
  // accumulator into the stored one, so the planted Merge mutant fires
  // twice and shifts the recovered parameters well past the tolerance.
  const std::string scan_sql = "SELECT x, y FROM probe WHERE x >= 0";
  for (int pass = 0; pass < 2; ++pass) {
    Result<HybridAnswer> answer = hybrid.Execute(scan_sql);
    if (!answer.ok()) {
      return "probe scan failed: " + answer.status().ToString();
    }
    if (pass == 0) {
      for (int r = 97; r <= 128; ++r) {
        const double x = static_cast<double>(r);
        Status s = table->AppendRow(
            {Value::Double(x), Value::Double(3.0 + 2.0 * x)});
        if (!s.ok()) return "probe ingest failed: " + s.ToString();
      }
    }
  }
  if (learner.num_candidates() == 0) {
    return "probe harvested no candidates";
  }
  return learner.VerifyCandidatesAgainstBatch(data, 1e-6);
}

}  // namespace testing
}  // namespace laws

#ifndef LAWSDB_TESTING_LEARNING_DIFF_H_
#define LAWSDB_TESTING_LEARNING_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace laws {
namespace testing {

/// Configuration for the learning-aware differential sweep.
struct LearnDiffOptions {
  uint64_t seed = 0x1EA21;
  /// Phase A: fuzz cases run with harvesting on against a learning-off
  /// reference.
  size_t num_queries = 3000;
  /// Phase B: repeated-workload batches over the structured fixture.
  size_t workload_batches = 6;
  size_t batch_queries = 48;
  /// Stop collecting after this many violations (each is a failure).
  size_t max_reported = 8;
};

struct LearnDiffReport {
  /// Hybrid executions across both phases.
  size_t queries = 0;
  /// Phase A cases where the learning-on exact answer was bit-identical
  /// to the learning-off reference.
  size_t exact_matches = 0;
  /// Cases where both legs raised an error (counted as agreement).
  size_t agreed_errors = 0;
  /// Generator SQL the parser rejected (harness bug; assert zero).
  size_t parse_failures = 0;
  /// Merged-sufficient-statistics self-checks that passed (the planted
  /// harvest mutant trips these).
  size_t self_checks = 0;
  /// Phase B approximate answers audited against the exact value.
  size_t audited = 0;
  /// Phase B answers served by a learned model.
  size_t model_hits = 0;
  /// Models the learner promoted / refined during Phase B.
  size_t promotions = 0;
  size_t refinements = 0;
  /// Rows folded into candidate accumulators across the sweep.
  uint64_t harvested_rows = 0;
  std::vector<std::string> violations;

  std::string Summary() const;
};

/// The learning leg of the differential harness.
///
/// Phase A replays the fuzz generator with harvesting enabled: every case
/// runs once through the hybrid engine with a live Learner attached and
/// once through the plain executor (the learning-off reference). Exact
/// answers must be bit-identical — learning is a by-product and may never
/// perturb a query result — and after every case the learner's merged
/// sufficient statistics are re-derived by batch OLS over the exact rows
/// they claim to cover.
///
/// Phase B runs a repeated AVG/MIN/MAX/COUNT(*) workload over a
/// structured fixture (reading = a + b·ln(t) + noise), applying the
/// learner between batches so harvested candidates graduate into served
/// models. Every approximate answer must pass the aqp_audit interval
/// check (|approx - exact| within the stated bound), bounds for the same
/// query may only tighten as more rows are harvested, and COUNT(*) must
/// always fall back exact.
LearnDiffReport RunLearningDifferential(const LearnDiffOptions& opts);

/// Deterministic merge-consistency probe for the mutation smoke test:
/// harvests an exactly linear table in two scans (with an ingest between
/// them, so the scan-local accumulators merge twice), then re-derives
/// every candidate by batch OLS over the same rows. Returns "" when the
/// merged statistics agree with the batch fit to ~1e-6; the planted
/// LAWS_TESTING_INJECT_BUG mutant in IncrementalOls::Merge corrupts one
/// sufficient statistic and makes this return the first mismatch.
std::string HarvestConsistencyProbe();

}  // namespace testing
}  // namespace laws

#endif  // LAWSDB_TESTING_LEARNING_DIFF_H_

#include "testing/query_gen.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/random.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace laws {
namespace testing {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Renders a value for failure reports. Unlike Value::ToString this is
/// unambiguous: full double precision, explicit -0.0 and NaN, quoted and
/// escaped strings (so a string "NULL" cannot be mistaken for NULL).
std::string RenderValue(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_int64()) return std::to_string(v.int64());
  if (v.is_double()) {
    const double d = v.dbl();
    if (std::isnan(d)) return std::signbit(d) ? "-NaN" : "NaN";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    if (d == 0.0 && std::signbit(d)) return "-0.0";
    return buf;
  }
  if (v.is_bool()) return v.boolean() ? "true" : "false";
  std::string out = "'";
  for (const char c : v.str()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  return out + "'";
}

/// The seeded statement generator. Emits SQL *text* (then parsed by the
/// harness) so the lexer/parser surface — '' escapes, keyword case,
/// BETWEEN/IN desugaring, comments — is exercised on every case.
class CaseGen {
 public:
  explicit CaseGen(uint64_t seed) : rng_(seed ^ 0x51D3A9F1C0FFEEULL) {}

  GeneratedCase Generate() {
    GeneratedCase out;
    out.tables.push_back(MakeT0());
    out.tables.push_back(MakeT1());
    join_ = rng_.Bernoulli(0.22);
    // Visible column scope: t0's columns, plus t1's under their post-join
    // names when a join is present ("sa" collides and becomes "t1_sa").
    num_cols_ = {"ia", "ib", "da", "db", "ba"};
    str_cols_ = {"sa"};
    bool_cols_ = {"ba"};
    if (join_) {
      num_cols_.push_back("ja");
      num_cols_.push_back("jd");
      str_cols_.push_back("t1_sa");
    }
    out.sql = BuildStatement();
    return out;
  }

 private:
  // ---- data generation ----------------------------------------------------

  Value RandIntValue(bool nullable) {
    if (nullable && rng_.Bernoulli(0.18)) return Value::Null();
    const double r = rng_.NextDouble();
    if (r < 0.78) return Value::Int64(rng_.UniformInt(-2, 4));  // dup-heavy
    if (r < 0.90) return Value::Int64(rng_.UniformInt(-100, 100));
    if (r < 0.96) {
      // Around 2^53, where double coercion loses integer precision.
      return Value::Int64(9007199254740992LL + rng_.UniformInt(-2, 2));
    }
    if (r < 0.98) return Value::Int64(std::numeric_limits<int64_t>::max());
    return Value::Int64(std::numeric_limits<int64_t>::min() + 1);
  }

  Value RandDoubleValue(bool nullable) {
    if (nullable && rng_.Bernoulli(0.16)) return Value::Null();
    const double r = rng_.NextDouble();
    if (r < 0.08) return Value::Double(kNaN);
    if (r < 0.12) return Value::Double(-kNaN);  // sign-flipped NaN
    if (r < 0.20) return Value::Double(0.0);
    if (r < 0.28) return Value::Double(-0.0);
    if (r < 0.34) return Value::Double(rng_.Bernoulli(0.5) ? 1.5 : -2.25);
    if (r < 0.40) return Value::Double(1e12 + rng_.UniformInt(0, 3));
    if (r < 0.44) return Value::Double(1e-9);
    if (r < 0.46) return Value::Double(1e308);
    // Values differing beyond 10 significant digits (the old text group
    // keys merged these).
    if (r < 0.52) return Value::Double(1.0 + rng_.UniformInt(0, 3) * 1e-13);
    return Value::Double(rng_.Uniform(-10.0, 10.0));
  }

  Value RandStringValue(bool nullable) {
    if (nullable && rng_.Bernoulli(0.18)) return Value::Null();
    static const char* kPool[] = {"",     "a",  "b",    "mm", "NULL",
                                  "x|y",  "|",  "a|",   "b'q", "zz",
                                  "\x01N", "aa", "true"};
    const size_t k = sizeof(kPool) / sizeof(kPool[0]);
    return Value::String(kPool[rng_.UniformInt(0, static_cast<int64_t>(k) - 1)]);
  }

  Value RandBoolValue(bool nullable) {
    if (nullable && rng_.Bernoulli(0.20)) return Value::Null();
    return Value::Bool(rng_.Bernoulli(0.5));
  }

  Value RandValue(const GenColumn& c) {
    switch (c.type) {
      case DataType::kInt64:
        return RandIntValue(c.nullable);
      case DataType::kDouble:
        return RandDoubleValue(c.nullable);
      case DataType::kString:
        return RandStringValue(c.nullable);
      case DataType::kBool:
        return RandBoolValue(c.nullable);
    }
    return Value::Null();
  }

  GenTable MakeTable(std::string name, std::vector<GenColumn> cols,
                     int64_t max_rows, double empty_p) {
    GenTable t;
    t.name = std::move(name);
    t.columns = std::move(cols);
    const size_t rows = rng_.Bernoulli(empty_p)
                            ? 0
                            : static_cast<size_t>(rng_.UniformInt(1, max_rows));
    t.rows.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      row.reserve(t.columns.size());
      for (const GenColumn& c : t.columns) row.push_back(RandValue(c));
      t.rows.push_back(std::move(row));
    }
    return t;
  }

  GenTable MakeT0() {
    return MakeTable("t0",
                     {{"ia", DataType::kInt64, true},
                      {"ib", DataType::kInt64, false},
                      {"da", DataType::kDouble, true},
                      {"db", DataType::kDouble, true},
                      {"sa", DataType::kString, true},
                      {"ba", DataType::kBool, true}},
                     44, 0.05);
  }

  GenTable MakeT1() {
    return MakeTable("t1",
                     {{"ja", DataType::kInt64, true},
                      {"jd", DataType::kDouble, true},
                      {"sa", DataType::kString, true}},
                     10, 0.08);
  }

  // ---- SQL text helpers ---------------------------------------------------

  int64_t Pick(int64_t n) { return rng_.UniformInt(0, n - 1); }

  template <typename T>
  const T& PickFrom(const std::vector<T>& v) {
    return v[static_cast<size_t>(Pick(static_cast<int64_t>(v.size())))];
  }

  /// Keywords are matched case-insensitively; vary the rendering.
  std::string Kw(std::string w) {
    const int64_t mode = Pick(3);
    if (mode == 0) return w;  // upper, as passed
    for (char& c : w) {
      c = mode == 1 ? static_cast<char>(std::tolower(c)) : c;
    }
    if (mode == 2 && w.size() > 1) {
      for (size_t i = 1; i < w.size(); ++i) {
        w[i] = static_cast<char>(std::tolower(w[i]));
      }
    }
    return w;
  }

  std::string IntLit() {
    static const char* kPool[] = {"0",   "1",  "2",   "3",  "7",
                                  "100", "9007199254740993",
                                  "4611686018427387904",
                                  "9223372036854775807"};
    std::string lit = kPool[Pick(sizeof(kPool) / sizeof(kPool[0]))];
    if (rng_.Bernoulli(0.25)) lit = "-(" + lit + ")";
    return lit;
  }

  std::string DblLit() {
    static const char* kPool[] = {"0.0",   "1.5",    "2.25",  "0.001",
                                  "123.456", "1e12", "1e-9",  "0.1",
                                  "1.0000000000001"};
    std::string lit = kPool[Pick(sizeof(kPool) / sizeof(kPool[0]))];
    if (rng_.Bernoulli(0.25)) lit = "-(" + lit + ")";
    return lit;
  }

  std::string StrLit() {
    static const char* kPool[] = {"''",    "'a'",   "'b'",  "'mm'", "'zz'",
                                  "'NULL'", "'x|y'", "'it''s'", "'true'"};
    return kPool[Pick(sizeof(kPool) / sizeof(kPool[0]))];
  }

  std::string NumTerm() {
    const double r = rng_.NextDouble();
    if (r < 0.58) return PickFrom(num_cols_);
    if (r < 0.78) return IntLit();
    if (r < 0.95) return DblLit();
    return Kw("NULL");
  }

  std::string NumExpr(int depth) {
    if (depth <= 0) return NumTerm();
    const double r = rng_.NextDouble();
    if (r < 0.34) return NumTerm();
    if (r < 0.56) {  // arithmetic
      static const char* kOps[] = {"+", "+", "-", "-", "*", "*", "/", "%"};
      const char* op = kOps[Pick(8)];
      return "(" + NumExpr(depth - 1) + " " + op + " " + NumExpr(depth - 1) +
             ")";
    }
    if (r < 0.62) return "-(" + NumExpr(depth - 1) + ")";
    if (r < 0.74) {
      static const char* kFns[] = {"abs",   "sqrt", "ln",   "exp",  "floor",
                                   "ceil",  "round", "sin", "cos",  "log10"};
      return std::string(kFns[Pick(10)]) + "(" + NumExpr(depth - 1) + ")";
    }
    if (r < 0.78) {
      return "pow(" + NumExpr(depth - 1) + ", " + NumExpr(0) + ")";
    }
    if (r < 0.86) {
      std::string out = "coalesce(" + NumExpr(depth - 1);
      const int64_t extra = rng_.UniformInt(1, 2);
      for (int64_t i = 0; i < extra; ++i) out += ", " + NumExpr(depth - 1);
      return out + ")";
    }
    if (r < 0.91) {
      return "nullif(" + NumExpr(depth - 1) + ", " + NumExpr(0) + ")";
    }
    return CaseExpr(depth - 1, /*string_branches=*/false);
  }

  std::string StrExpr(int depth) {
    const double r = rng_.NextDouble();
    if (depth <= 0 || r < 0.55) {
      return rng_.Bernoulli(0.65) ? PickFrom(str_cols_) : StrLit();
    }
    if (r < 0.75) {
      return "coalesce(" + StrExpr(depth - 1) + ", " + StrExpr(0) + ")";
    }
    if (r < 0.87) {
      return "nullif(" + StrExpr(depth - 1) + ", " + StrExpr(0) + ")";
    }
    return CaseExpr(depth - 1, /*string_branches=*/true);
  }

  std::string CaseExpr(int depth, bool string_branches) {
    auto branch = [&] {
      return string_branches ? StrExpr(depth) : NumExpr(depth);
    };
    std::string out = Kw("CASE");
    const int64_t pairs = rng_.UniformInt(1, 2);
    for (int64_t i = 0; i < pairs; ++i) {
      out += " " + Kw("WHEN") + " " + BoolExpr(depth) + " " + Kw("THEN") +
             " " + branch();
    }
    if (rng_.Bernoulli(0.7)) out += " " + Kw("ELSE") + " " + branch();
    return out + " " + Kw("END");
  }

  std::string Comparison() {
    static const char* kCmps[] = {"=", "<>", "!=", "<", "<=", ">", ">="};
    const char* cmp = kCmps[Pick(7)];
    const double r = rng_.NextDouble();
    if (r < 0.70) {
      return "(" + NumExpr(1) + " " + cmp + " " + NumExpr(1) + ")";
    }
    if (r < 0.95) {
      return "(" + StrExpr(1) + " " + cmp + " " + StrExpr(0) + ")";
    }
    // Deliberate type error: string vs numeric.
    return "(" + StrExpr(0) + " " + cmp + " " + NumExpr(0) + ")";
  }

  std::string BoolExpr(int depth) {
    const double r = rng_.NextDouble();
    if (depth <= 0 || r < 0.42) {
      const double t = rng_.NextDouble();
      if (t < 0.25) return PickFrom(bool_cols_);
      if (t < 0.35) return Kw(rng_.Bernoulli(0.5) ? "TRUE" : "FALSE");
      return Comparison();
    }
    if (r < 0.56) {
      return "(" + BoolExpr(depth - 1) + " " + Kw("AND") + " " +
             BoolExpr(depth - 1) + ")";
    }
    if (r < 0.68) {
      return "(" + BoolExpr(depth - 1) + " " + Kw("OR") + " " +
             BoolExpr(depth - 1) + ")";
    }
    if (r < 0.76) return Kw("NOT") + " (" + BoolExpr(depth - 1) + ")";
    if (r < 0.86) {
      return "(" + NumExpr(1) + " " + Kw("BETWEEN") + " " + NumExpr(0) +
             " " + Kw("AND") + " " + NumExpr(0) + ")";
    }
    if (r < 0.95) {  // IN list
      if (rng_.Bernoulli(0.5)) {
        std::string out = "(" + NumExpr(0) + " " + Kw("IN") + " (" + IntLit();
        const int64_t extra = rng_.UniformInt(1, 3);
        for (int64_t i = 0; i < extra; ++i) {
          out += ", " + (rng_.Bernoulli(0.7) ? IntLit() : DblLit());
        }
        return out + "))";
      }
      std::string out = "(" + StrExpr(0) + " " + Kw("IN") + " (" + StrLit();
      const int64_t extra = rng_.UniformInt(1, 2);
      for (int64_t i = 0; i < extra; ++i) out += ", " + StrLit();
      return out + "))";
    }
    return Comparison();
  }

  std::string AggExpr() {
    const double r = rng_.NextDouble();
    if (r < 0.14) return Kw("COUNT") + "(*)";
    if (r < 0.30) {
      // COUNT over any family (strings and bools count too).
      const double f = rng_.NextDouble();
      const std::string arg = f < 0.6   ? NumExpr(1)
                              : f < 0.9 ? StrExpr(0)
                                        : BoolExpr(0);
      return Kw("COUNT") + "(" + arg + ")";
    }
    if (r < 0.42) {
      // MIN/MAX, sometimes over strings.
      const std::string fn = Kw(rng_.Bernoulli(0.5) ? "MIN" : "MAX");
      return fn + "(" + (rng_.Bernoulli(0.25) ? StrExpr(0) : NumExpr(1)) + ")";
    }
    if (r < 0.43) {
      // Deliberate type error: SUM over a string.
      return Kw("SUM") + "(" + StrExpr(0) + ")";
    }
    static const char* kFns[] = {"SUM", "SUM", "AVG", "AVG", "VARIANCE",
                                 "STDDEV"};
    return Kw(kFns[Pick(6)]) + "(" + NumExpr(rng_.Bernoulli(0.5) ? 1 : 2) +
           ")";
  }

  // ---- statement assembly -------------------------------------------------

  std::string BuildStatement() {
    const bool is_agg = rng_.Bernoulli(0.45);
    std::vector<std::string> aliases;
    std::string sql = Kw("SELECT") + " ";
    const bool distinct = rng_.Bernoulli(is_agg ? 0.10 : 0.25);
    if (distinct) sql += Kw("DISTINCT") + " ";

    std::vector<std::string> key_texts;
    std::vector<std::string> order_pool;  // texts valid as ORDER BY keys

    if (is_agg) {
      const int64_t num_keys = rng_.UniformInt(0, 2);
      for (int64_t k = 0; k < num_keys; ++k) {
        std::string key;
        const double r = rng_.NextDouble();
        if (r < 0.55) key = PickFrom(num_cols_);
        else if (r < 0.70) key = PickFrom(str_cols_);
        else if (r < 0.80) key = PickFrom(bool_cols_);
        else key = NumExpr(1);
        key_texts.push_back(key);
      }
      const int64_t num_items = rng_.UniformInt(1, 3);
      std::vector<std::string> item_texts;
      for (int64_t i = 0; i < num_items; ++i) {
        std::string item;
        const double r = rng_.NextDouble();
        if (!key_texts.empty() && r < 0.30) {
          item = PickFrom(key_texts);
          if (rng_.Bernoulli(0.3)) item = "(" + item + " + " + IntLit() + ")";
        } else if (r < 0.85 || key_texts.empty()) {
          item = AggExpr();
          if (rng_.Bernoulli(0.2)) {
            item = "(" + item + " + " + (rng_.Bernoulli(0.5) ? AggExpr()
                                                             : IntLit()) +
                   ")";
          }
        } else if (r < 0.88) {
          item = IntLit();  // bare constant in an aggregate query
        } else {
          // Deliberate error: unaggregated, non-key column reference.
          item = PickFrom(num_cols_);
        }
        item_texts.push_back(item);
        order_pool.push_back(item);
        if (rng_.Bernoulli(0.25)) {
          const std::string alias = "v" + std::to_string(i);
          aliases.push_back(alias);
          order_pool.push_back(alias);
          item += rng_.Bernoulli(0.7) ? " " + Kw("AS") + " " + alias
                                      : " " + alias;
        }
        sql += (i > 0 ? ", " : "") + item;
      }
      sql += " " + Kw("FROM") + " t0";
      if (join_) sql += JoinClause();
      if (rng_.Bernoulli(0.60)) {
        sql += " " + Kw("WHERE") + " " + WherePredicate();
      }
      if (!key_texts.empty()) {
        sql += " " + Kw("GROUP") + " " + Kw("BY") + " ";
        for (size_t k = 0; k < key_texts.size(); ++k) {
          sql += (k > 0 ? ", " : "") + key_texts[k];
        }
        for (const std::string& k : key_texts) order_pool.push_back(k);
      }
      if (rng_.Bernoulli(0.30)) {
        static const char* kCmps[] = {"=", "<>", "<", "<=", ">", ">="};
        std::string lhs;
        const double r = rng_.NextDouble();
        if (r < 0.55) lhs = AggExpr();
        else if (!key_texts.empty() && r < 0.85) lhs = PickFrom(key_texts);
        else if (r < 0.95) lhs = AggExpr();
        else lhs = PickFrom(num_cols_);  // deliberate: unaggregated column
        sql += " " + Kw("HAVING") + " (" + lhs + " " + kCmps[Pick(6)] + " " +
               (rng_.Bernoulli(0.8) ? IntLit() : DblLit()) + ")";
      }
    } else {
      const bool star = rng_.Bernoulli(0.12);
      if (star) {
        sql += "*";
        order_pool = num_cols_;
      } else {
        const int64_t num_items = rng_.UniformInt(1, 4);
        for (int64_t i = 0; i < num_items; ++i) {
          std::string item = AnyExpr();
          order_pool.push_back(item);
          if (rng_.Bernoulli(0.25)) {
            // Aliases usually fresh; occasionally shadowing a real column
            // to exercise alias-before-column resolution in ORDER BY.
            const std::string alias =
                rng_.Bernoulli(0.15) ? "ia" : "v" + std::to_string(i);
            aliases.push_back(alias);
            order_pool.push_back(alias);
            item += rng_.Bernoulli(0.7) ? " " + Kw("AS") + " " + alias
                                        : " " + alias;
          }
          sql += (i > 0 ? ", " : "") + item;
        }
      }
      sql += " " + Kw("FROM") + " t0";
      if (join_) sql += JoinClause();
      if (rng_.Bernoulli(0.65)) {
        sql += " " + Kw("WHERE") + " " + WherePredicate();
      }
      for (const std::string& c : num_cols_) order_pool.push_back(c);
      order_pool.push_back(PickFrom(str_cols_));
    }

    if (!order_pool.empty() && rng_.Bernoulli(0.45)) {
      sql += " " + Kw("ORDER") + " " + Kw("BY") + " ";
      const int64_t num_keys =
          rng_.UniformInt(1, std::min<int64_t>(3, order_pool.size()));
      for (int64_t k = 0; k < num_keys; ++k) {
        if (k > 0) sql += ", ";
        sql += PickFrom(order_pool);
        if (rng_.Bernoulli(0.5)) {
          sql += " " + Kw(rng_.Bernoulli(0.5) ? "ASC" : "DESC");
        }
      }
    }
    if (rng_.Bernoulli(0.30)) {
      sql += " " + Kw("LIMIT") + " " + std::to_string(rng_.UniformInt(0, 25));
    }
    if (rng_.Bernoulli(0.08)) sql += " -- seeded tail comment";
    return sql;
  }

  std::string AnyExpr() {
    const double r = rng_.NextDouble();
    if (r < 0.60) return NumExpr(rng_.Bernoulli(0.5) ? 1 : 2);
    if (r < 0.80) return StrExpr(1);
    return BoolExpr(1);
  }

  std::string JoinClause() {
    std::string sql = " " + Kw("JOIN") + " t1 " + Kw("ON") + " ";
    const int64_t num_keys = rng_.Bernoulli(0.8) ? 1 : 2;
    for (int64_t k = 0; k < num_keys; ++k) {
      if (k > 0) sql += " " + Kw("AND") + " ";
      const double r = rng_.NextDouble();
      if (r < 0.45) {
        sql += std::string(rng_.Bernoulli(0.5) ? "ia" : "ib") + " = ja";
      } else if (r < 0.80) {
        sql += std::string(rng_.Bernoulli(0.5) ? "da" : "db") + " = jd";
      } else {
        sql += "sa = sa";  // both sides resolve through their own table
      }
    }
    return sql;
  }

  std::string WherePredicate() {
    // ~3% deliberately non-boolean predicates to diff the error path.
    if (rng_.Bernoulli(0.03)) return NumExpr(1);
    return BoolExpr(2);
  }

  Rng rng_;
  bool join_ = false;
  std::vector<std::string> num_cols_, str_cols_, bool_cols_;
};

}  // namespace

Result<TablePtr> GenTable::Materialize() const {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (const GenColumn& c : columns) {
    fields.push_back(Field{c.name, c.type, c.nullable});
  }
  auto table = std::make_shared<Table>(Schema(std::move(fields)));
  for (const auto& row : rows) {
    LAWS_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return table;
}

std::string GenTable::ToString() const {
  std::string out = name + "(";
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ", ";
    out += columns[c].name;
    out += ' ';
    out += DataTypeToString(columns[c].type);
    if (!columns[c].nullable) out += " NOT NULL";
  }
  out += ") -- " + std::to_string(rows.size()) + " rows\n";
  for (const auto& row : rows) {
    out += "  (";
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ", ";
      out += RenderValue(row[c]);
    }
    out += ")\n";
  }
  return out;
}

Result<Catalog> MaterializeCatalog(const std::vector<GenTable>& tables) {
  Catalog catalog;
  for (const GenTable& t : tables) {
    LAWS_ASSIGN_OR_RETURN(TablePtr table, t.Materialize());
    LAWS_RETURN_IF_ERROR(catalog.Register(t.name, std::move(table)));
  }
  return catalog;
}

GeneratedCase GenerateCase(uint64_t seed) {
  return CaseGen(seed).Generate();
}

}  // namespace testing
}  // namespace laws

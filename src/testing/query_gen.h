#ifndef LAWSDB_TESTING_QUERY_GEN_H_
#define LAWSDB_TESTING_QUERY_GEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"
#include "storage/types.h"

namespace laws {
namespace testing {

/// One column of a generated table.
struct GenColumn {
  std::string name;
  DataType type = DataType::kDouble;
  bool nullable = true;
};

/// A generated table kept in boxed-row form (not a laws::Table) so the
/// shrinker can drop rows and columns cheaply before re-materializing.
struct GenTable {
  std::string name;
  std::vector<GenColumn> columns;
  std::vector<std::vector<Value>> rows;

  Result<TablePtr> Materialize() const;

  /// Dump for failure reports: schema line plus one row per line, with
  /// NaN / -0.0 / quotes rendered unambiguously.
  std::string ToString() const;
};

/// Registers every generated table into a fresh catalog.
Result<Catalog> MaterializeCatalog(const std::vector<GenTable>& tables);

/// One differential test case: the tables it runs over plus the SQL text.
/// The SQL is grammar-valid by construction (a parse failure is a harness
/// bug); a deliberate ~5% of cases are type-invalid so that the error
/// paths of both engines are diffed too.
struct GeneratedCase {
  std::vector<GenTable> tables;
  std::string sql;
};

/// Generates the salted tables (NULL, NaN, -0.0, empty strings, strings
/// that look like NULL or contain separators, duplicate keys) and one
/// random query covering the parser grammar: projections, expressions,
/// WHERE with three-valued logic, GROUP BY/HAVING, aggregates, multi-key
/// ORDER BY ASC/DESC, DISTINCT, LIMIT, BETWEEN/IN, CASE, and joins.
/// Fully determined by `seed`.
GeneratedCase GenerateCase(uint64_t seed);

}  // namespace testing
}  // namespace laws

#endif  // LAWSDB_TESTING_QUERY_GEN_H_

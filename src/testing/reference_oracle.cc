#include "testing/reference_oracle.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace laws {
namespace testing {
namespace {

// The oracle deliberately shares no evaluation code with src/query: it is
// the naive row-at-a-time interpretation of DESIGN.md §11, written against
// boxed Values. Where DESIGN.md pins bit-level behavior (Welford update
// order, double coercion, eager error evaluation) the same arithmetic
// expressions are used so agreement is exact, not approximate.

/// A working relation: named/typed columns over boxed rows.
struct Rel {
  std::vector<Field> fields;
  std::vector<std::vector<Value>> rows;
};

bool NameEq(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<size_t> FindField(const Rel& rel, std::string_view name) {
  for (size_t i = 0; i < rel.fields.size(); ++i) {
    if (NameEq(rel.fields[i].name, name)) return i;
  }
  return Status::NotFound("oracle: no column named " + std::string(name));
}

bool HasFieldNamed(const Rel& rel, std::string_view name) {
  return FindField(rel, name).ok();
}

double NumVal(const Value& v) {
  if (v.is_int64()) return static_cast<double>(v.int64());
  if (v.is_bool()) return v.boolean() ? 1.0 : 0.0;
  return v.dbl();
}

bool IsNumericType(DataType t) { return t != DataType::kString; }

/// §11 grouping identity: every NaN is one class, -0.0 folds into +0.0.
Value CanonicalValue(Value v) {
  if (v.is_double()) {
    const double d = v.dbl();
    if (std::isnan(d)) {
      return Value::Double(std::numeric_limits<double>::quiet_NaN());
    }
    if (d == 0.0) return Value::Double(0.0);
  }
  return v;
}

/// Collision-free encoding of a canonical value, for grouping/DISTINCT
/// hashing. Independent implementation of the same identity the engine
/// uses (type tag + payload bits).
void AppendValueKey(const Value& v, std::string* key) {
  if (v.is_null()) {
    key->push_back('N');
    return;
  }
  if (v.is_int64()) {
    const int64_t x = v.int64();
    key->push_back('i');
    key->append(reinterpret_cast<const char*>(&x), sizeof(x));
    return;
  }
  if (v.is_double()) {
    double x = v.dbl();
    if (std::isnan(x)) x = std::numeric_limits<double>::quiet_NaN();
    if (x == 0.0) x = 0.0;
    key->push_back('d');
    key->append(reinterpret_cast<const char*>(&x), sizeof(x));
    return;
  }
  if (v.is_bool()) {
    key->push_back(v.boolean() ? 'T' : 'F');
    return;
  }
  const std::string& s = v.str();
  const uint32_t len = static_cast<uint32_t>(s.size());
  key->push_back('s');
  key->append(reinterpret_cast<const char*>(&len), sizeof(len));
  key->append(s);
}

/// §11 ORDER BY total order: numbers < NaN < strings < NULL ascending;
/// all NaNs are one equivalence class.
int RefCompare(const Value& a, const Value& b) {
  const bool an = a.is_null();
  const bool bn = b.is_null();
  if (an || bn) {
    if (an && bn) return 0;
    return an ? 1 : -1;
  }
  const bool as = a.is_string();
  const bool bs = b.is_string();
  if (as && bs) return a.str() < b.str() ? -1 : (a.str() == b.str() ? 0 : 1);
  if (as != bs) return as ? 1 : -1;
  const double x = NumVal(a);
  const double y = NumVal(b);
  const bool xn = std::isnan(x);
  const bool yn = std::isnan(y);
  if (xn || yn) {
    if (xn && yn) return 0;
    return xn ? 1 : -1;
  }
  return x < y ? -1 : (x == y ? 0 : 1);
}

// ---- static typing --------------------------------------------------------

bool IsUnaryMathFn(const std::string& f) {
  return f == "ln" || f == "log" || f == "log10" || f == "exp" ||
         f == "sqrt" || f == "sin" || f == "cos" || f == "floor" ||
         f == "ceil" || f == "round";
}

/// Static output type of an expression over `rel`, applying exactly the
/// engine's typing rules (§11): NULL literals type as DOUBLE; INT64 is
/// closed under +,-,*,% and negate; any DOUBLE operand (or division)
/// promotes; comparisons coerce numerics through double; CASE/COALESCE
/// unify uniform INT64/BOOL branches and promote mixes to DOUBLE. Returns
/// the same static errors the vectorized evaluator raises.
Result<DataType> InferType(const Expr& e, const Rel& rel) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.is_int64()) return DataType::kInt64;
      if (e.literal.is_string()) return DataType::kString;
      if (e.literal.is_bool()) return DataType::kBool;
      return DataType::kDouble;  // doubles and the NULL literal
    case ExprKind::kColumnRef: {
      LAWS_ASSIGN_OR_RETURN(size_t idx, FindField(rel, e.column_name));
      return rel.fields[idx].type;
    }
    case ExprKind::kUnary: {
      LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*e.children[0], rel));
      if (e.unary_op == UnaryOp::kNegate) {
        if (!IsNumericType(t)) {
          return Status::TypeMismatch("oracle: cannot negate a string");
        }
        return t == DataType::kInt64 ? DataType::kInt64 : DataType::kDouble;
      }
      if (t != DataType::kBool) {
        return Status::TypeMismatch("oracle: NOT requires a boolean");
      }
      return DataType::kBool;
    }
    case ExprKind::kBinary: {
      LAWS_ASSIGN_OR_RETURN(DataType lt, InferType(*e.children[0], rel));
      LAWS_ASSIGN_OR_RETURN(DataType rt, InferType(*e.children[1], rel));
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply:
        case BinaryOp::kDivide:
        case BinaryOp::kModulo:
          if (!IsNumericType(lt) || !IsNumericType(rt)) {
            return Status::TypeMismatch("oracle: arithmetic on non-numeric");
          }
          return lt == DataType::kInt64 && rt == DataType::kInt64 &&
                         e.binary_op != BinaryOp::kDivide
                     ? DataType::kInt64
                     : DataType::kDouble;
        case BinaryOp::kEqual:
        case BinaryOp::kNotEqual:
        case BinaryOp::kLess:
        case BinaryOp::kLessEqual:
        case BinaryOp::kGreater:
        case BinaryOp::kGreaterEqual: {
          const bool strings =
              lt == DataType::kString && rt == DataType::kString;
          if (!strings && (!IsNumericType(lt) || !IsNumericType(rt))) {
            return Status::TypeMismatch(
                "oracle: cannot compare string with numeric");
          }
          return DataType::kBool;
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if (lt != DataType::kBool || rt != DataType::kBool) {
            return Status::TypeMismatch("oracle: AND/OR require booleans");
          }
          return DataType::kBool;
      }
      return Status::Internal("oracle: bad binary op");
    }
    case ExprKind::kFunctionCall: {
      const std::string& f = e.function_name;
      if (IsUnaryMathFn(f)) {
        if (e.children.size() != 1) {
          return Status::InvalidArgument("oracle: " + f + " takes one arg");
        }
        LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*e.children[0], rel));
        if (!IsNumericType(t)) {
          return Status::TypeMismatch("oracle: " + f + " needs a numeric");
        }
        return DataType::kDouble;
      }
      if (f == "abs") {
        if (e.children.size() != 1) {
          return Status::InvalidArgument("oracle: abs takes one arg");
        }
        LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*e.children[0], rel));
        if (!IsNumericType(t)) {
          return Status::TypeMismatch("oracle: abs needs a numeric");
        }
        return t == DataType::kInt64 ? DataType::kInt64 : DataType::kDouble;
      }
      if (f == "coalesce") {
        if (e.children.empty()) {
          return Status::InvalidArgument("oracle: coalesce needs args");
        }
        bool any_string = false, all_string = true, all_int = true,
             all_bool = true;
        for (const auto& c : e.children) {
          LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*c, rel));
          any_string |= t == DataType::kString;
          all_string &= t == DataType::kString;
          all_int &= t == DataType::kInt64;
          all_bool &= t == DataType::kBool;
        }
        if (any_string && !all_string) {
          return Status::TypeMismatch("oracle: coalesce mixes families");
        }
        return all_string ? DataType::kString
               : all_int  ? DataType::kInt64
               : all_bool ? DataType::kBool
                          : DataType::kDouble;
      }
      if (f == "nullif") {
        if (e.children.size() != 2) {
          return Status::InvalidArgument("oracle: nullif takes two args");
        }
        LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*e.children[0], rel));
        // The second argument's static errors still surface even though
        // the result type ignores it.
        LAWS_RETURN_IF_ERROR(InferType(*e.children[1], rel).status());
        return t;
      }
      if (f == "pow" || f == "power") {
        if (e.children.size() != 2) {
          return Status::InvalidArgument("oracle: pow takes two args");
        }
        LAWS_ASSIGN_OR_RETURN(DataType a, InferType(*e.children[0], rel));
        LAWS_ASSIGN_OR_RETURN(DataType b, InferType(*e.children[1], rel));
        if (!IsNumericType(a) || !IsNumericType(b)) {
          return Status::TypeMismatch("oracle: pow needs numerics");
        }
        return DataType::kDouble;
      }
      return Status::InvalidArgument("oracle: unknown function " + f);
    }
    case ExprKind::kCase: {
      const size_t pairs =
          (e.children.size() - (e.case_has_else ? 1 : 0)) / 2;
      std::vector<DataType> branch_types;
      for (size_t i = 0; i < pairs; ++i) {
        LAWS_ASSIGN_OR_RETURN(DataType wt, InferType(*e.children[2 * i], rel));
        if (wt != DataType::kBool) {
          return Status::TypeMismatch("oracle: CASE WHEN is not boolean");
        }
        LAWS_ASSIGN_OR_RETURN(DataType tt,
                              InferType(*e.children[2 * i + 1], rel));
        branch_types.push_back(tt);
      }
      if (e.case_has_else) {
        LAWS_ASSIGN_OR_RETURN(DataType et,
                              InferType(*e.children.back(), rel));
        branch_types.push_back(et);
      }
      bool any_string = false, all_string = true, all_int = true,
           all_bool = true;
      for (DataType t : branch_types) {
        any_string |= t == DataType::kString;
        all_string &= t == DataType::kString;
        all_int &= t == DataType::kInt64;
        all_bool &= t == DataType::kBool;
      }
      if (any_string && !all_string) {
        return Status::TypeMismatch("oracle: CASE mixes families");
      }
      return all_string ? DataType::kString
             : all_int  ? DataType::kInt64
             : all_bool ? DataType::kBool
                        : DataType::kDouble;
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument("oracle: aggregate in scalar context");
    case ExprKind::kStar:
      return Status::InvalidArgument("oracle: * outside COUNT(*)");
  }
  return Status::Internal("oracle: bad expression kind");
}

// ---- row-at-a-time evaluation ---------------------------------------------

/// Evaluates `e` for one row. Assumes the whole clause already passed
/// InferType (static errors), so only data-dependent errors arise here:
/// division/modulo by zero, integer overflow, NULLIF family mismatches.
/// Evaluation is eager like the engine's: every child is evaluated even
/// when NULL propagation or an unmatched CASE branch discards the value,
/// so the error sets of both engines coincide.
Result<Value> EvalRow(const Expr& e, const Rel& rel,
                      const std::vector<Value>& row) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      LAWS_ASSIGN_OR_RETURN(size_t idx, FindField(rel, e.column_name));
      return row[idx];
    }
    case ExprKind::kUnary: {
      LAWS_ASSIGN_OR_RETURN(Value v, EvalRow(*e.children[0], rel, row));
      if (e.unary_op == UnaryOp::kNegate) {
        if (v.is_null()) return Value::Null();
        LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*e.children[0], rel));
        if (t == DataType::kInt64) {
          int64_t out = 0;
          if (__builtin_sub_overflow(int64_t{0}, v.int64(), &out)) {
            return Status::NumericError("oracle: overflow in negation");
          }
          return Value::Int64(out);
        }
        return Value::Double(-NumVal(v));
      }
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.boolean());
    }
    case ExprKind::kBinary: {
      // Both sides always evaluate (no short circuit), so a data error on
      // the right fires even when the left is NULL or decides the result.
      LAWS_ASSIGN_OR_RETURN(Value lv, EvalRow(*e.children[0], rel, row));
      LAWS_ASSIGN_OR_RETURN(Value rv, EvalRow(*e.children[1], rel, row));
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply:
        case BinaryOp::kDivide:
        case BinaryOp::kModulo: {
          LAWS_ASSIGN_OR_RETURN(DataType lt, InferType(*e.children[0], rel));
          LAWS_ASSIGN_OR_RETURN(DataType rt, InferType(*e.children[1], rel));
          const bool int_result = lt == DataType::kInt64 &&
                                  rt == DataType::kInt64 &&
                                  e.binary_op != BinaryOp::kDivide;
          if (lv.is_null() || rv.is_null()) return Value::Null();
          if (int_result) {
            const int64_t a = lv.int64();
            const int64_t b = rv.int64();
            int64_t out = 0;
            bool overflow = false;
            switch (e.binary_op) {
              case BinaryOp::kAdd:
                overflow = __builtin_add_overflow(a, b, &out);
                break;
              case BinaryOp::kSubtract:
                overflow = __builtin_sub_overflow(a, b, &out);
                break;
              case BinaryOp::kMultiply:
                overflow = __builtin_mul_overflow(a, b, &out);
                break;
              case BinaryOp::kModulo:
                if (b == 0) {
                  return Status::NumericError("oracle: modulo by zero");
                }
                out = b == -1 ? 0 : a % b;
                break;
              default:
                return Status::Internal("oracle: bad int op");
            }
            if (overflow) {
              return Status::NumericError("oracle: integer overflow");
            }
            return Value::Int64(out);
          }
          const double a = NumVal(lv);
          const double b = NumVal(rv);
          switch (e.binary_op) {
            case BinaryOp::kAdd:
              return Value::Double(a + b);
            case BinaryOp::kSubtract:
              return Value::Double(a - b);
            case BinaryOp::kMultiply:
              return Value::Double(a * b);
            case BinaryOp::kDivide:
              if (b == 0.0) {
                return Status::NumericError("oracle: division by zero");
              }
              return Value::Double(a / b);
            case BinaryOp::kModulo:
              if (b == 0.0) {
                return Status::NumericError("oracle: modulo by zero");
              }
              return Value::Double(std::fmod(a, b));
            default:
              return Status::Internal("oracle: bad arithmetic op");
          }
        }
        case BinaryOp::kEqual:
        case BinaryOp::kNotEqual:
        case BinaryOp::kLess:
        case BinaryOp::kLessEqual:
        case BinaryOp::kGreater:
        case BinaryOp::kGreaterEqual: {
          if (lv.is_null() || rv.is_null()) return Value::Null();
          int c;
          if (lv.is_string() && rv.is_string()) {
            c = lv.str() < rv.str() ? -1 : (lv.str() == rv.str() ? 0 : 1);
          } else {
            // Double coercion, including the 2^53 precision loss for big
            // INT64 values — identical to the engine. NaN compares as
            // "greater, not equal" exactly like the raw double compare.
            const double a = NumVal(lv);
            const double b = NumVal(rv);
            c = a < b ? -1 : (a == b ? 0 : 1);
          }
          switch (e.binary_op) {
            case BinaryOp::kEqual:
              return Value::Bool(c == 0);
            case BinaryOp::kNotEqual:
              return Value::Bool(c != 0);
            case BinaryOp::kLess:
              return Value::Bool(c < 0);
            case BinaryOp::kLessEqual:
              return Value::Bool(c <= 0);
            case BinaryOp::kGreater:
              return Value::Bool(c > 0);
            case BinaryOp::kGreaterEqual:
              return Value::Bool(c >= 0);
            default:
              return Status::Internal("oracle: bad comparison op");
          }
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          const bool lnull = lv.is_null();
          const bool rnull = rv.is_null();
          const bool l = lnull ? false : lv.boolean();
          const bool r = rnull ? false : rv.boolean();
          if (e.binary_op == BinaryOp::kAnd) {
            if ((!lnull && !l) || (!rnull && !r)) return Value::Bool(false);
            if (lnull || rnull) return Value::Null();
            return Value::Bool(true);
          }
          if ((!lnull && l) || (!rnull && r)) return Value::Bool(true);
          if (lnull || rnull) return Value::Null();
          return Value::Bool(false);
        }
      }
      return Status::Internal("oracle: bad binary op");
    }
    case ExprKind::kFunctionCall: {
      const std::string& f = e.function_name;
      if (IsUnaryMathFn(f)) {
        LAWS_ASSIGN_OR_RETURN(Value v, EvalRow(*e.children[0], rel, row));
        if (v.is_null()) return Value::Null();
        const double x = NumVal(v);
        if (f == "ln" || f == "log") return Value::Double(std::log(x));
        if (f == "log10") return Value::Double(std::log10(x));
        if (f == "exp") return Value::Double(std::exp(x));
        if (f == "sqrt") return Value::Double(std::sqrt(x));
        if (f == "sin") return Value::Double(std::sin(x));
        if (f == "cos") return Value::Double(std::cos(x));
        if (f == "floor") return Value::Double(std::floor(x));
        if (f == "ceil") return Value::Double(std::ceil(x));
        return Value::Double(std::round(x));
      }
      if (f == "abs") {
        LAWS_ASSIGN_OR_RETURN(Value v, EvalRow(*e.children[0], rel, row));
        if (v.is_null()) return Value::Null();
        LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*e.children[0], rel));
        if (t == DataType::kInt64) {
          const int64_t x = v.int64();
          if (x == std::numeric_limits<int64_t>::min()) {
            return Status::NumericError("oracle: overflow in abs");
          }
          return Value::Int64(x < 0 ? -x : x);
        }
        return Value::Double(std::fabs(NumVal(v)));
      }
      if (f == "coalesce") {
        LAWS_ASSIGN_OR_RETURN(DataType t, InferType(e, rel));
        std::vector<Value> vals;
        vals.reserve(e.children.size());
        for (const auto& c : e.children) {
          LAWS_ASSIGN_OR_RETURN(Value v, EvalRow(*c, rel, row));
          vals.push_back(std::move(v));
        }
        for (const Value& v : vals) {
          if (v.is_null()) continue;
          if (t == DataType::kDouble) return Value::Double(NumVal(v));
          return v;
        }
        return Value::Null();
      }
      if (f == "nullif") {
        LAWS_ASSIGN_OR_RETURN(Value a, EvalRow(*e.children[0], rel, row));
        LAWS_ASSIGN_OR_RETURN(Value b, EvalRow(*e.children[1], rel, row));
        LAWS_ASSIGN_OR_RETURN(DataType at, InferType(*e.children[0], rel));
        LAWS_ASSIGN_OR_RETURN(DataType bt, InferType(*e.children[1], rel));
        bool equal = false;
        if (!a.is_null() && !b.is_null()) {
          // The family check is per-row in the engine: it only fires for
          // rows where both sides are non-NULL.
          if (at == DataType::kString && bt == DataType::kString) {
            equal = a.str() == b.str();
          } else if (IsNumericType(at) && IsNumericType(bt)) {
            equal = NumVal(a) == NumVal(b);
          } else {
            return Status::TypeMismatch("oracle: nullif type mismatch");
          }
        }
        if (a.is_null() || equal) return Value::Null();
        return a;
      }
      // pow / power (unknown functions were rejected by InferType).
      LAWS_ASSIGN_OR_RETURN(Value a, EvalRow(*e.children[0], rel, row));
      LAWS_ASSIGN_OR_RETURN(Value b, EvalRow(*e.children[1], rel, row));
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Double(std::pow(NumVal(a), NumVal(b)));
    }
    case ExprKind::kCase: {
      LAWS_ASSIGN_OR_RETURN(DataType t, InferType(e, rel));
      const size_t pairs =
          (e.children.size() - (e.case_has_else ? 1 : 0)) / 2;
      std::vector<Value> whens, thens;
      for (size_t i = 0; i < pairs; ++i) {
        LAWS_ASSIGN_OR_RETURN(Value w, EvalRow(*e.children[2 * i], rel, row));
        LAWS_ASSIGN_OR_RETURN(Value v,
                              EvalRow(*e.children[2 * i + 1], rel, row));
        whens.push_back(std::move(w));
        thens.push_back(std::move(v));
      }
      if (e.case_has_else) {
        LAWS_ASSIGN_OR_RETURN(Value v, EvalRow(*e.children.back(), rel, row));
        thens.push_back(std::move(v));
      }
      const Value* hit = nullptr;
      for (size_t i = 0; i < pairs; ++i) {
        if (!whens[i].is_null() && whens[i].boolean()) {
          hit = &thens[i];
          break;
        }
      }
      if (hit == nullptr && e.case_has_else) hit = &thens.back();
      if (hit == nullptr || hit->is_null()) return Value::Null();
      if (t == DataType::kDouble) return Value::Double(NumVal(*hit));
      return *hit;
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument("oracle: aggregate in scalar context");
    case ExprKind::kStar:
      return Status::InvalidArgument("oracle: * outside COUNT(*)");
  }
  return Status::Internal("oracle: bad expression kind");
}

/// Evaluates `e` for every row of `rel`; errors if any row errors (eager
/// vectorized semantics).
Result<std::vector<Value>> EvalAllRows(const Expr& e, const Rel& rel) {
  LAWS_RETURN_IF_ERROR(InferType(e, rel).status());
  std::vector<Value> out;
  out.reserve(rel.rows.size());
  for (const auto& row : rel.rows) {
    LAWS_ASSIGN_OR_RETURN(Value v, EvalRow(e, rel, row));
    out.push_back(std::move(v));
  }
  return out;
}

// ---- relational stages ----------------------------------------------------

Rel RelFromTable(const Table& t) {
  Rel rel;
  rel.fields = t.schema().fields();
  rel.rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(t.num_columns());
    for (size_t c = 0; c < t.num_columns(); ++c) {
      row.push_back(t.GetValue(r, c));
    }
    rel.rows.push_back(std::move(row));
  }
  return rel;
}

/// INNER equi-join, nested loops. NULL keys never match; NaN keys never
/// match; -0.0 matches +0.0. Output order: left-major, right rows in table
/// order — the probe order of the engine's hash join.
Result<Rel> RefJoin(const Rel& left, const Rel& right,
                    const std::vector<JoinKey>& keys,
                    const std::string& right_name) {
  if (keys.empty()) {
    return Status::InvalidArgument("oracle: JOIN requires an ON key");
  }
  std::vector<size_t> li, ri;
  for (const JoinKey& k : keys) {
    LAWS_ASSIGN_OR_RETURN(size_t l, FindField(left, k.left_column));
    LAWS_ASSIGN_OR_RETURN(size_t r, FindField(right, k.right_column));
    if (left.fields[l].type != right.fields[r].type) {
      return Status::TypeMismatch("oracle: join key type mismatch");
    }
    li.push_back(l);
    ri.push_back(r);
  }

  Rel out;
  out.fields = left.fields;
  for (const Field& f : right.fields) {
    Field of = f;
    if (HasFieldNamed(left, f.name)) {
      of.name = right_name + "_" + f.name;
      if (HasFieldNamed(left, of.name)) {
        return Status::InvalidArgument(
            "oracle: cannot disambiguate join column " + f.name);
      }
    }
    out.fields.push_back(std::move(of));
  }

  auto joinable = [](const Value& v) {
    if (v.is_null()) return false;
    if (v.is_double() && std::isnan(v.dbl())) return false;
    return true;
  };
  auto key_equal = [](const Value& a, const Value& b) {
    if (a.is_double()) {
      const double x = a.dbl() == 0.0 ? 0.0 : a.dbl();
      const double y = b.dbl() == 0.0 ? 0.0 : b.dbl();
      return x == y;
    }
    return a == b;
  };

  for (const auto& lrow : left.rows) {
    bool lok = true;
    for (size_t k = 0; k < li.size() && lok; ++k) {
      lok = joinable(lrow[li[k]]);
    }
    if (!lok) continue;
    for (const auto& rrow : right.rows) {
      bool match = true;
      for (size_t k = 0; k < li.size() && match; ++k) {
        match = joinable(rrow[ri[k]]) && key_equal(lrow[li[k]], rrow[ri[k]]);
      }
      if (!match) continue;
      std::vector<Value> orow = lrow;
      orow.insert(orow.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(orow));
    }
  }
  return out;
}

/// WHERE / HAVING: keep rows where the predicate is non-NULL true.
Result<Rel> RefFilter(const Expr& pred, const Rel& rel) {
  LAWS_ASSIGN_OR_RETURN(DataType t, InferType(pred, rel));
  if (t != DataType::kBool) {
    return Status::TypeMismatch("oracle: predicate is not boolean");
  }
  LAWS_ASSIGN_OR_RETURN(std::vector<Value> mask, EvalAllRows(pred, rel));
  Rel out;
  out.fields = rel.fields;
  for (size_t r = 0; r < rel.rows.size(); ++r) {
    if (!mask[r].is_null() && mask[r].boolean()) {
      out.rows.push_back(rel.rows[r]);
    }
  }
  return out;
}

std::unique_ptr<Expr> SubstAliases(const Expr& expr,
                                   const SelectStatement& stmt) {
  if (expr.kind == ExprKind::kColumnRef) {
    for (const SelectItem& item : stmt.select_list) {
      if (!item.is_star && !item.alias.empty() &&
          item.alias == expr.column_name) {
        return item.expr->Clone();
      }
    }
  }
  auto out = expr.Clone();
  for (auto& c : out->children) c = SubstAliases(*c, stmt);
  return out;
}

struct RefAggSlot {
  const Expr* node = nullptr;
  std::string repr;
  std::string hidden_name;
  bool is_star = false;
};

void CollectAggs(const Expr& expr, std::vector<RefAggSlot>* slots) {
  if (expr.kind == ExprKind::kAggregate) {
    const std::string repr = expr.ToString();
    for (const RefAggSlot& s : *slots) {
      if (s.repr == repr) return;
    }
    RefAggSlot slot;
    slot.node = &expr;
    slot.repr = repr;
    slot.hidden_name = "__agg" + std::to_string(slots->size());
    slot.is_star = expr.children[0]->kind == ExprKind::kStar;
    slots->push_back(std::move(slot));
    return;
  }
  for (const auto& c : expr.children) CollectAggs(*c, slots);
}

std::unique_ptr<Expr> RewriteAgg(const Expr& expr,
                                 const std::vector<RefAggSlot>& slots,
                                 const std::vector<std::string>& key_reprs,
                                 const std::vector<std::string>& key_names) {
  const std::string repr = expr.ToString();
  for (size_t i = 0; i < key_reprs.size(); ++i) {
    if (repr == key_reprs[i]) return Expr::MakeColumnRef(key_names[i]);
  }
  if (expr.kind == ExprKind::kAggregate) {
    for (const RefAggSlot& s : slots) {
      if (s.repr == repr) return Expr::MakeColumnRef(s.hidden_name);
    }
  }
  auto out = expr.Clone();
  for (auto& c : out->children) {
    c = RewriteAgg(*c, slots, key_reprs, key_names);
  }
  return out;
}

struct RefAggState {
  size_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double mean = 0.0;
  double m2 = 0.0;
  bool any = false;
  bool saw_comparable = false;
  std::string smin, smax;
  bool is_string = false;
};

Value RefAggFinal(AggregateFunc func, const RefAggState& s) {
  switch (func) {
    case AggregateFunc::kCount:
      return Value::Int64(static_cast<int64_t>(s.count));
    case AggregateFunc::kSum:
      return s.any ? Value::Double(s.sum) : Value::Null();
    case AggregateFunc::kAvg:
      return s.count > 0 ? Value::Double(s.sum / static_cast<double>(s.count))
                         : Value::Null();
    case AggregateFunc::kMin:
      if (!s.any) return Value::Null();
      if (s.is_string) return Value::String(s.smin);
      return s.saw_comparable
                 ? Value::Double(s.min)
                 : Value::Double(std::numeric_limits<double>::quiet_NaN());
    case AggregateFunc::kMax:
      if (!s.any) return Value::Null();
      if (s.is_string) return Value::String(s.smax);
      return s.saw_comparable
                 ? Value::Double(s.max)
                 : Value::Double(std::numeric_limits<double>::quiet_NaN());
    case AggregateFunc::kVariance:
      return s.count > 1 && !s.is_string
                 ? Value::Double(s.m2 / static_cast<double>(s.count - 1))
                 : Value::Null();
    case AggregateFunc::kStddev:
      return s.count > 1 && !s.is_string
                 ? Value::Double(
                       std::sqrt(s.m2 / static_cast<double>(s.count - 1)))
                 : Value::Null();
  }
  return Value::Null();
}

/// GROUP BY + aggregation. First-seen group order keyed on canonical
/// values; accumulation walks rows in table order per slot, with the
/// identical Welford recurrence — variance agrees bitwise.
Result<Rel> RefAggregate(const Rel& input, const SelectStatement& stmt,
                         const std::vector<RefAggSlot>& slots,
                         std::vector<std::string>* key_names) {
  std::vector<DataType> key_types;
  std::vector<std::vector<Value>> key_vals;  // [key][row]
  for (const auto& g : stmt.group_by) {
    LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*g, input));
    LAWS_ASSIGN_OR_RETURN(std::vector<Value> vals, EvalAllRows(*g, input));
    key_types.push_back(t);
    key_vals.push_back(std::move(vals));
  }
  std::vector<DataType> arg_types(slots.size(), DataType::kDouble);
  std::vector<std::vector<Value>> arg_vals(slots.size());
  for (size_t a = 0; a < slots.size(); ++a) {
    if (slots[a].is_star) continue;
    const Expr& arg = *slots[a].node->children[0];
    LAWS_ASSIGN_OR_RETURN(DataType t, InferType(arg, input));
    LAWS_ASSIGN_OR_RETURN(std::vector<Value> vals, EvalAllRows(arg, input));
    const AggregateFunc func = slots[a].node->aggregate_func;
    if (t == DataType::kString &&
        (func == AggregateFunc::kSum || func == AggregateFunc::kAvg ||
         func == AggregateFunc::kVariance ||
         func == AggregateFunc::kStddev)) {
      return Status::TypeMismatch("oracle: aggregate needs a numeric arg");
    }
    arg_types[a] = t;
    arg_vals[a] = std::move(vals);
  }

  const size_t n = input.rows.size();
  std::unordered_map<std::string, size_t> group_index;
  std::vector<size_t> rep_row;
  std::vector<size_t> group_of(n);
  for (size_t r = 0; r < n; ++r) {
    std::string key;
    for (size_t k = 0; k < key_vals.size(); ++k) {
      AppendValueKey(key_vals[k][r], &key);
    }
    auto [it, inserted] = group_index.emplace(std::move(key), rep_row.size());
    if (inserted) rep_row.push_back(r);
    group_of[r] = it->second;
  }
  std::vector<std::vector<RefAggState>> states(
      rep_row.size(), std::vector<RefAggState>(slots.size()));

  for (size_t a = 0; a < slots.size(); ++a) {
    if (slots[a].is_star) {
      for (size_t r = 0; r < n; ++r) {
        RefAggState& s = states[group_of[r]][a];
        ++s.count;
        s.any = true;
      }
      continue;
    }
    if (arg_types[a] == DataType::kString) {
      for (size_t r = 0; r < n; ++r) {
        const Value& v = arg_vals[a][r];
        if (v.is_null()) continue;
        RefAggState& s = states[group_of[r]][a];
        ++s.count;
        s.any = true;
        s.is_string = true;
        if (s.count == 1 || v.str() < s.smin) s.smin = v.str();
        if (s.count == 1 || v.str() > s.smax) s.smax = v.str();
      }
      continue;
    }
    for (size_t r = 0; r < n; ++r) {
      if (arg_vals[a][r].is_null()) continue;
      RefAggState& s = states[group_of[r]][a];
      ++s.count;
      s.any = true;
      const double v = NumVal(arg_vals[a][r]);
      if (!std::isnan(v)) s.saw_comparable = true;
      s.sum += v;
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
      const double delta = v - s.mean;
      s.mean += delta / static_cast<double>(s.count);
      s.m2 += delta * (v - s.mean);
    }
  }

  // A global aggregate over zero rows still yields one (empty-state) row.
  const bool synthetic_global = stmt.group_by.empty() && states.empty();
  if (synthetic_global) {
    rep_row.push_back(0);
    states.emplace_back(slots.size());
  }

  Rel out;
  key_names->clear();
  for (size_t k = 0; k < key_types.size(); ++k) {
    const std::string name = "__key" + std::to_string(k);
    key_names->push_back(name);
    out.fields.push_back(Field{name, key_types[k], true});
  }
  for (size_t a = 0; a < slots.size(); ++a) {
    const DataType t =
        slots[a].node->aggregate_func == AggregateFunc::kCount
            ? DataType::kInt64
            : (!slots[a].is_star && arg_types[a] == DataType::kString
                   ? DataType::kString
                   : DataType::kDouble);
    out.fields.push_back(Field{slots[a].hidden_name, t, true});
  }
  for (size_t g = 0; g < states.size(); ++g) {
    std::vector<Value> row;
    for (size_t k = 0; k < key_types.size(); ++k) {
      row.push_back(n == 0 ? Value::Null()
                           : CanonicalValue(key_vals[k][rep_row[g]]));
    }
    for (size_t a = 0; a < slots.size(); ++a) {
      row.push_back(RefAggFinal(slots[a].node->aggregate_func, states[g][a]));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

/// ORDER BY: stable sort over the §11 total order; fills *order_total with
/// whether the keys had no ties among the surviving rows.
Result<Rel> RefSort(const Rel& rel,
                    const std::vector<std::unique_ptr<Expr>>& keys,
                    const std::vector<OrderKey>& order_by,
                    bool* order_total) {
  std::vector<std::vector<Value>> key_vals;  // [key][row]
  for (const auto& k : keys) {
    LAWS_ASSIGN_OR_RETURN(std::vector<Value> vals, EvalAllRows(*k, rel));
    key_vals.push_back(std::move(vals));
  }
  std::vector<size_t> perm(rel.rows.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](size_t x, size_t y) {
    for (size_t k = 0; k < key_vals.size(); ++k) {
      int c = RefCompare(key_vals[k][x], key_vals[k][y]);
      if (!order_by[k].ascending) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  });
  *order_total = !keys.empty();
  for (size_t i = 0; i + 1 < perm.size() && *order_total; ++i) {
    bool tie = true;
    for (size_t k = 0; k < key_vals.size() && tie; ++k) {
      tie = RefCompare(key_vals[k][perm[i]], key_vals[k][perm[i + 1]]) == 0;
    }
    if (tie) *order_total = false;
  }
  Rel out;
  out.fields = rel.fields;
  out.rows.reserve(rel.rows.size());
  for (size_t i : perm) out.rows.push_back(rel.rows[i]);
  return out;
}

Rel RefDistinct(const Rel& rel) {
  std::unordered_set<std::string> seen;
  Rel out;
  out.fields = rel.fields;
  for (const auto& row : rel.rows) {
    std::string key;
    for (const Value& v : row) AppendValueKey(v, &key);
    if (seen.insert(std::move(key)).second) out.rows.push_back(row);
  }
  return out;
}

Result<Table> RelToTable(const Rel& rel) {
  Table out{Schema(rel.fields)};
  for (const auto& row : rel.rows) {
    LAWS_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> Run(const Catalog& catalog, const SelectStatement& stmt,
                  bool* order_total) {
  *order_total = false;
  LAWS_ASSIGN_OR_RETURN(TablePtr base, catalog.Get(stmt.from_table));
  Rel rel = RelFromTable(*base);
  if (!stmt.join_table.empty()) {
    LAWS_ASSIGN_OR_RETURN(TablePtr right_t, catalog.Get(stmt.join_table));
    Rel right = RelFromTable(*right_t);
    LAWS_ASSIGN_OR_RETURN(
        rel, RefJoin(rel, right, stmt.join_keys, stmt.join_table));
  }
  const Rel source = rel;  // star expansion uses the pre-WHERE schema
  if (stmt.where != nullptr) {
    LAWS_ASSIGN_OR_RETURN(rel, RefFilter(*stmt.where, rel));
  }

  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.select_list) {
    if (!item.is_star && item.expr->ContainsAggregate()) has_aggregate = true;
  }
  if (stmt.having != nullptr) has_aggregate = true;

  std::vector<SelectItem> projected_items;
  std::unique_ptr<Expr> having;
  std::vector<std::unique_ptr<Expr>> order_exprs;

  if (has_aggregate) {
    std::vector<RefAggSlot> slots;
    std::vector<std::unique_ptr<Expr>> resolved_order;
    std::unique_ptr<Expr> resolved_having;
    for (const SelectItem& item : stmt.select_list) {
      if (item.is_star) {
        return Status::InvalidArgument(
            "oracle: SELECT * is invalid with GROUP BY");
      }
      CollectAggs(*item.expr, &slots);
    }
    if (stmt.having != nullptr) {
      resolved_having = SubstAliases(*stmt.having, stmt);
      CollectAggs(*resolved_having, &slots);
    }
    for (const OrderKey& k : stmt.order_by) {
      resolved_order.push_back(SubstAliases(*k.expr, stmt));
      CollectAggs(*resolved_order.back(), &slots);
    }

    std::vector<std::string> key_names;
    LAWS_ASSIGN_OR_RETURN(rel, RefAggregate(rel, stmt, slots, &key_names));

    std::vector<std::string> key_reprs;
    for (const auto& g : stmt.group_by) key_reprs.push_back(g->ToString());
    for (const SelectItem& item : stmt.select_list) {
      SelectItem out;
      out.alias = item.alias.empty() ? item.expr->ToString() : item.alias;
      out.expr = RewriteAgg(*item.expr, slots, key_reprs, key_names);
      projected_items.push_back(std::move(out));
    }
    if (resolved_having != nullptr) {
      having = RewriteAgg(*resolved_having, slots, key_reprs, key_names);
    }
    for (auto& k : resolved_order) {
      order_exprs.push_back(RewriteAgg(*k, slots, key_reprs, key_names));
    }
  } else {
    for (const SelectItem& item : stmt.select_list) {
      if (item.is_star) {
        for (const Field& f : source.fields) {
          SelectItem out;
          out.alias = f.name;
          out.expr = Expr::MakeColumnRef(f.name);
          projected_items.push_back(std::move(out));
        }
        continue;
      }
      SelectItem out;
      out.alias = item.alias.empty() ? item.expr->ToString() : item.alias;
      out.expr = item.expr->Clone();
      projected_items.push_back(std::move(out));
    }
    for (const OrderKey& k : stmt.order_by) {
      order_exprs.push_back(SubstAliases(*k.expr, stmt));
    }
  }

  if (having != nullptr) {
    LAWS_ASSIGN_OR_RETURN(rel, RefFilter(*having, rel));
  }
  if (!order_exprs.empty()) {
    LAWS_ASSIGN_OR_RETURN(
        rel, RefSort(rel, order_exprs, stmt.order_by, order_total));
  }

  // Projection.
  Rel projected;
  std::vector<std::vector<Value>> cols;  // [item][row]
  for (const SelectItem& item : projected_items) {
    LAWS_ASSIGN_OR_RETURN(DataType t, InferType(*item.expr, rel));
    LAWS_ASSIGN_OR_RETURN(std::vector<Value> vals,
                          EvalAllRows(*item.expr, rel));
    projected.fields.push_back(Field{item.alias, t, true});
    cols.push_back(std::move(vals));
  }
  projected.rows.resize(rel.rows.size());
  for (size_t r = 0; r < rel.rows.size(); ++r) {
    projected.rows[r].reserve(cols.size());
    for (size_t c = 0; c < cols.size(); ++c) {
      projected.rows[r].push_back(std::move(cols[c][r]));
    }
  }

  if (stmt.distinct) projected = RefDistinct(projected);
  if (stmt.limit >= 0 &&
      static_cast<size_t>(stmt.limit) < projected.rows.size()) {
    projected.rows.resize(static_cast<size_t>(stmt.limit));
  }
  return RelToTable(projected);
}

}  // namespace

OracleResult OracleExecuteSelect(const Catalog& catalog,
                                 const SelectStatement& stmt) {
  OracleResult out;
  bool order_total = false;
  Result<Table> table = Run(catalog, stmt, &order_total);
  if (!table.ok()) {
    out.status = table.status();
    return out;
  }
  out.table = std::move(*table);
  out.order_total = order_total;
  return out;
}

}  // namespace testing
}  // namespace laws

#ifndef LAWSDB_TESTING_REFERENCE_ORACLE_H_
#define LAWSDB_TESTING_REFERENCE_ORACLE_H_

#include "common/result.h"
#include "query/ast.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace laws {
namespace testing {

/// Outcome of running a statement through the reference interpreter.
struct OracleResult {
  /// Error-ness is what the differential runner compares; messages may
  /// legitimately differ from the executor's.
  Status status = Status::OK();
  Table table{Schema{}};
  /// True when the statement had ORDER BY and the sort keys imposed a
  /// total order on the surviving rows (no ties) — the runner then
  /// compares row order too, not just the multiset.
  bool order_total = false;
};

/// Deliberately naive row-at-a-time reference interpreter implementing the
/// semantics pinned in DESIGN.md §11. It shares no code with the
/// vectorized executor: expressions are evaluated per row over boxed
/// Values, grouping is a first-seen ordered list keyed on canonical
/// values, sorting is a stable sort over the §11 total order. It mirrors
/// the engine's contract exactly — eager (non-short-circuit) evaluation
/// error sets, static typing rules (INT64 arithmetic, 2^53 double
/// coercion in comparisons), NULL/NaN ordering and grouping classes,
/// Welford accumulation in table row order — so results are compared for
/// bit identity, not approximately.
OracleResult OracleExecuteSelect(const Catalog& catalog,
                                 const SelectStatement& stmt);

}  // namespace testing
}  // namespace laws

#endif  // LAWSDB_TESTING_REFERENCE_ORACLE_H_

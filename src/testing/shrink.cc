#include "testing/shrink.h"

#include <utility>

namespace laws {
namespace testing {

SelectStatement CloneStatement(const SelectStatement& stmt) {
  SelectStatement out;
  out.distinct = stmt.distinct;
  for (const SelectItem& item : stmt.select_list) {
    SelectItem c;
    c.alias = item.alias;
    c.is_star = item.is_star;
    if (item.expr != nullptr) c.expr = item.expr->Clone();
    out.select_list.push_back(std::move(c));
  }
  out.from_table = stmt.from_table;
  out.join_table = stmt.join_table;
  out.join_keys = stmt.join_keys;
  if (stmt.where != nullptr) out.where = stmt.where->Clone();
  for (const auto& g : stmt.group_by) out.group_by.push_back(g->Clone());
  if (stmt.having != nullptr) out.having = stmt.having->Clone();
  for (const OrderKey& k : stmt.order_by) {
    OrderKey c;
    c.expr = k.expr->Clone();
    c.ascending = k.ascending;
    out.order_by.push_back(std::move(c));
  }
  out.limit = stmt.limit;
  return out;
}

namespace {

/// Tracks the repro budget; once spent, every further candidate is
/// rejected, which freezes the case in its current (committed) state.
struct Budget {
  size_t remaining;
  const ReproFn& repro;

  bool Check(const std::vector<GenTable>& tables,
             const SelectStatement& stmt) {
    if (remaining == 0) return false;
    --remaining;
    return repro(tables, stmt);
  }
};

/// ddmin-style row removal: delete chunks of halving size while the
/// failure persists.
bool ShrinkRows(std::vector<GenTable>* tables, const SelectStatement& stmt,
                Budget* budget) {
  bool changed = false;
  for (size_t ti = 0; ti < tables->size(); ++ti) {
    size_t chunk = ((*tables)[ti].rows.size() + 1) / 2;
    while (chunk >= 1 && budget->remaining > 0) {
      bool removed_any = false;
      size_t start = 0;
      while (start < (*tables)[ti].rows.size()) {
        std::vector<GenTable> candidate = *tables;
        auto& rows = candidate[ti].rows;
        const size_t end = std::min(start + chunk, rows.size());
        rows.erase(rows.begin() + static_cast<ptrdiff_t>(start),
                   rows.begin() + static_cast<ptrdiff_t>(end));
        if (budget->Check(candidate, stmt)) {
          *tables = std::move(candidate);
          changed = true;
          removed_any = true;
          // Same start now addresses the next chunk.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
      if (!removed_any) chunk /= 2;
    }
  }
  return changed;
}

bool ShrinkColumns(std::vector<GenTable>* tables, const SelectStatement& stmt,
                   Budget* budget) {
  bool changed = false;
  for (size_t ti = 0; ti < tables->size(); ++ti) {
    for (size_t ci = (*tables)[ti].columns.size(); ci-- > 0;) {
      if ((*tables)[ti].columns.size() <= 1) break;
      std::vector<GenTable> candidate = *tables;
      candidate[ti].columns.erase(candidate[ti].columns.begin() +
                                  static_cast<ptrdiff_t>(ci));
      for (auto& row : candidate[ti].rows) {
        row.erase(row.begin() + static_cast<ptrdiff_t>(ci));
      }
      if (budget->Check(candidate, stmt)) {
        *tables = std::move(candidate);
        changed = true;
      }
    }
  }
  return changed;
}

/// Applies `edit` to a fresh clone and commits it if the failure persists.
bool TryEdit(const std::vector<GenTable>& tables, SelectStatement* stmt,
             Budget* budget,
             const std::function<bool(SelectStatement*)>& edit) {
  SelectStatement candidate = CloneStatement(*stmt);
  if (!edit(&candidate)) return false;  // edit not applicable
  if (!budget->Check(tables, candidate)) return false;
  *stmt = std::move(candidate);
  return true;
}

bool ShrinkClauses(const std::vector<GenTable>& tables, SelectStatement* stmt,
                   Budget* budget) {
  bool changed = false;
  changed |= TryEdit(tables, stmt, budget, [](SelectStatement* s) {
    if (s->limit < 0) return false;
    s->limit = -1;
    return true;
  });
  changed |= TryEdit(tables, stmt, budget, [](SelectStatement* s) {
    if (!s->distinct) return false;
    s->distinct = false;
    return true;
  });
  changed |= TryEdit(tables, stmt, budget, [](SelectStatement* s) {
    if (s->having == nullptr) return false;
    s->having = nullptr;
    return true;
  });
  changed |= TryEdit(tables, stmt, budget, [](SelectStatement* s) {
    if (s->where == nullptr) return false;
    s->where = nullptr;
    return true;
  });
  changed |= TryEdit(tables, stmt, budget, [](SelectStatement* s) {
    if (s->join_table.empty()) return false;
    s->join_table.clear();
    s->join_keys.clear();
    return true;
  });
  for (size_t i = stmt->order_by.size(); i-- > 0;) {
    changed |= TryEdit(tables, stmt, budget, [i](SelectStatement* s) {
      if (i >= s->order_by.size()) return false;
      s->order_by.erase(s->order_by.begin() + static_cast<ptrdiff_t>(i));
      return true;
    });
  }
  for (size_t i = stmt->group_by.size(); i-- > 0;) {
    changed |= TryEdit(tables, stmt, budget, [i](SelectStatement* s) {
      if (i >= s->group_by.size()) return false;
      s->group_by.erase(s->group_by.begin() + static_cast<ptrdiff_t>(i));
      return true;
    });
  }
  for (size_t i = stmt->select_list.size(); i-- > 0;) {
    changed |= TryEdit(tables, stmt, budget, [i](SelectStatement* s) {
      if (s->select_list.size() <= 1 || i >= s->select_list.size()) {
        return false;
      }
      s->select_list.erase(s->select_list.begin() +
                           static_cast<ptrdiff_t>(i));
      return true;
    });
  }
  return changed;
}

/// Replaces one expression slot with one of its children (a single
/// hoisting step); repeated sweeps flatten deep trees.
bool ShrinkExprs(const std::vector<GenTable>& tables, SelectStatement* stmt,
                 Budget* budget) {
  // Enumerate slots structurally so the lambda can find the same slot in
  // the cloned statement: kind (0=where, 1=having, 2=select, 3=group,
  // 4=order) plus index.
  struct Slot {
    int kind;
    size_t index;
  };
  auto slot_of = [](SelectStatement* s, const Slot& slot) -> Expr* {
    switch (slot.kind) {
      case 0:
        return s->where.get();
      case 1:
        return s->having.get();
      case 2:
        return slot.index < s->select_list.size() &&
                       !s->select_list[slot.index].is_star
                   ? s->select_list[slot.index].expr.get()
                   : nullptr;
      case 3:
        return slot.index < s->group_by.size()
                   ? s->group_by[slot.index].get()
                   : nullptr;
      default:
        return slot.index < s->order_by.size()
                   ? s->order_by[slot.index].expr.get()
                   : nullptr;
    }
  };
  auto replace_slot = [](SelectStatement* s, const Slot& slot,
                         std::unique_ptr<Expr> e) {
    switch (slot.kind) {
      case 0:
        s->where = std::move(e);
        break;
      case 1:
        s->having = std::move(e);
        break;
      case 2:
        s->select_list[slot.index].expr = std::move(e);
        break;
      case 3:
        s->group_by[slot.index] = std::move(e);
        break;
      default:
        s->order_by[slot.index].expr = std::move(e);
        break;
    }
  };

  std::vector<Slot> slots;
  slots.push_back({0, 0});
  slots.push_back({1, 0});
  for (size_t i = 0; i < stmt->select_list.size(); ++i) slots.push_back({2, i});
  for (size_t i = 0; i < stmt->group_by.size(); ++i) slots.push_back({3, i});
  for (size_t i = 0; i < stmt->order_by.size(); ++i) slots.push_back({4, i});

  bool changed = false;
  for (const Slot& slot : slots) {
    const Expr* current = slot_of(stmt, slot);
    if (current == nullptr) continue;
    for (size_t c = 0; c < current->children.size(); ++c) {
      changed |= TryEdit(tables, stmt, budget, [&](SelectStatement* s) {
        Expr* e = slot_of(s, slot);
        if (e == nullptr || c >= e->children.size()) return false;
        replace_slot(s, slot, e->children[c]->Clone());
        return true;
      });
      // The slot may now hold the hoisted child; re-read for further
      // candidates.
      current = slot_of(stmt, slot);
      if (current == nullptr) break;
    }
  }
  return changed;
}

}  // namespace

void ShrinkCase(std::vector<GenTable>* tables, SelectStatement* stmt,
                const ReproFn& repro, size_t budget) {
  Budget b{budget, repro};
  bool changed = true;
  while (changed && b.remaining > 0) {
    changed = false;
    changed |= ShrinkClauses(*tables, stmt, &b);
    changed |= ShrinkExprs(*tables, stmt, &b);
    changed |= ShrinkRows(tables, *stmt, &b);
    changed |= ShrinkColumns(tables, *stmt, &b);
  }
}

}  // namespace testing
}  // namespace laws

#ifndef LAWSDB_TESTING_SHRINK_H_
#define LAWSDB_TESTING_SHRINK_H_

#include <functional>
#include <vector>

#include "query/ast.h"
#include "testing/query_gen.h"

namespace laws {
namespace testing {

/// Deep copy of a parsed statement (SelectStatement holds unique_ptr
/// expression trees and is not copyable).
SelectStatement CloneStatement(const SelectStatement& stmt);

/// True when the (tables, statement) pair still reproduces the failure
/// being shrunk.
using ReproFn =
    std::function<bool(const std::vector<GenTable>&, const SelectStatement&)>;

/// Greedy minimizer for a failing differential case. Repeatedly tries
/// structure-removing edits — dropping row chunks (ddmin-style), dropping
/// columns, clearing LIMIT/DISTINCT/HAVING/WHERE/JOIN, removing ORDER BY /
/// GROUP BY keys and select items, and hoisting expression subtrees over
/// their parents — keeping each edit only if `repro` still fires. Runs to
/// a fixpoint or until `budget` repro evaluations are spent. The result
/// stays a valid case: edits that turn the failure into agreement (e.g.
/// dropping a referenced column makes both engines error identically) are
/// rejected by the predicate itself.
void ShrinkCase(std::vector<GenTable>* tables, SelectStatement* stmt,
                const ReproFn& repro, size_t budget);

}  // namespace testing
}  // namespace laws

#endif  // LAWSDB_TESTING_SHRINK_H_

#include "workload/retail.h"

#include <cmath>

#include "common/random.h"

namespace laws {

Result<RetailDataset> GenerateRetail(const RetailConfig& config) {
  if (config.num_skus == 0 || config.num_days == 0) {
    return Status::InvalidArgument("need SKUs and days");
  }
  Rng rng(config.seed);
  RetailDataset dataset;
  dataset.config = config;
  dataset.truth.reserve(config.num_skus);
  for (size_t s = 0; s < config.num_skus; ++s) {
    RetailSkuTruth t;
    t.sku = static_cast<int64_t>(s + 1);
    t.level = std::max(5.0, rng.Normal(config.level_mu, config.level_sd));
    t.sin_coef = rng.Normal(config.season_amp_mu, config.season_amp_sd);
    t.cos_coef = rng.Normal(0.0, config.season_amp_sd);
    t.trend = rng.Normal(0.0, config.trend_sd);
    dataset.truth.push_back(t);
  }

  Schema schema({Field{"sku", DataType::kInt64, false},
                 Field{"day", DataType::kInt64, false},
                 Field{"units", DataType::kDouble, false}});
  Table table(schema);
  Column* sku_col = table.mutable_column(0);
  Column* day_col = table.mutable_column(1);
  Column* units_col = table.mutable_column(2);
  for (const RetailSkuTruth& t : dataset.truth) {
    for (size_t d = 0; d < config.num_days; ++d) {
      const double day = static_cast<double>(d);
      const double w = 2.0 * M_PI * day / config.period;
      const double units = t.level + t.sin_coef * std::sin(w) +
                           t.cos_coef * std::cos(w) + t.trend * day +
                           rng.Normal(0.0, config.noise_sd);
      sku_col->AppendInt64(t.sku);
      day_col->AppendInt64(static_cast<int64_t>(d));
      units_col->AppendDouble(units);
    }
  }
  LAWS_RETURN_IF_ERROR(table.SyncRowCount());
  dataset.sales = std::move(table);
  return dataset;
}

}  // namespace laws

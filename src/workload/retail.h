#ifndef LAWSDB_WORKLOAD_RETAIL_H_
#define LAWSDB_WORKLOAD_RETAIL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Synthetic retail demand workload standing in for the paper's proposed
/// TPC-DS evaluation (§6): benchmark generators plant strong regularities,
/// and ours makes the regularity explicit — per-SKU daily unit sales follow
/// level + weekly seasonality + linear trend, with Gaussian noise:
///
///   units(sku, day) = level_s + a_s sin(2 pi day/7) + b_s cos(2 pi day/7)
///                     + trend_s * day + eps
struct RetailConfig {
  size_t num_skus = 200;
  size_t num_days = 365;
  double level_mu = 120.0;
  double level_sd = 40.0;
  double season_amp_mu = 25.0;
  double season_amp_sd = 8.0;
  double trend_sd = 0.05;
  double noise_sd = 6.0;
  double period = 7.0;
  uint64_t seed = 7;
};

/// Ground truth for one SKU.
struct RetailSkuTruth {
  int64_t sku = 0;
  double level = 0.0;
  double sin_coef = 0.0;
  double cos_coef = 0.0;
  double trend = 0.0;
};

/// The generated workload: sales(sku INT64, day INT64, units DOUBLE).
struct RetailDataset {
  Table sales{Schema{}};
  std::vector<RetailSkuTruth> truth;
  RetailConfig config;
};

Result<RetailDataset> GenerateRetail(const RetailConfig& config = {});

}  // namespace laws

#endif  // LAWSDB_WORKLOAD_RETAIL_H_

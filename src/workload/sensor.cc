#include "workload/sensor.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace laws {

Result<SensorDataset> GenerateSensor(const SensorConfig& config) {
  if (config.num_sensors == 0 || config.num_ticks < 4) {
    return Status::InvalidArgument("need sensors and ticks");
  }
  for (double b : config.breakpoints) {
    if (b <= 0.0 || b >= 1.0) {
      return Status::InvalidArgument("breakpoints must be in (0, 1)");
    }
  }
  Rng rng(config.seed);
  SensorDataset dataset;
  dataset.config = config;
  for (double b : config.breakpoints) {
    dataset.tick_breakpoints.push_back(
        b * static_cast<double>(config.num_ticks));
  }
  std::sort(dataset.tick_breakpoints.begin(), dataset.tick_breakpoints.end());

  const size_t num_segments = config.breakpoints.size() + 1;
  dataset.truth.reserve(config.num_sensors);
  for (size_t s = 0; s < config.num_sensors; ++s) {
    SensorTruth t;
    t.sensor = static_cast<int64_t>(s + 1);
    // Continuous piecewise-linear drift: each segment starts where the
    // previous ended, with a fresh slope.
    double level = rng.Normal(config.base_mu, config.base_sd);
    double seg_start = 0.0;
    for (size_t seg = 0; seg < num_segments; ++seg) {
      const double slope = rng.Normal(0.0, config.slope_sd);
      // intercept such that value(seg_start) == level
      t.segments.emplace_back(level - slope * seg_start, slope);
      const double seg_end =
          seg < dataset.tick_breakpoints.size()
              ? dataset.tick_breakpoints[seg]
              : static_cast<double>(config.num_ticks);
      level += slope * (seg_end - seg_start);
      seg_start = seg_end;
    }
    dataset.truth.push_back(std::move(t));
  }

  Schema schema({Field{"sensor", DataType::kInt64, false},
                 Field{"tick", DataType::kInt64, false},
                 Field{"temperature", DataType::kDouble, false}});
  Table table(schema);
  Column* sensor_col = table.mutable_column(0);
  Column* tick_col = table.mutable_column(1);
  Column* temp_col = table.mutable_column(2);
  for (const SensorTruth& t : dataset.truth) {
    for (size_t tick = 0; tick < config.num_ticks; ++tick) {
      const double x = static_cast<double>(tick);
      const size_t seg = static_cast<size_t>(
          std::upper_bound(dataset.tick_breakpoints.begin(),
                           dataset.tick_breakpoints.end(), x) -
          dataset.tick_breakpoints.begin());
      const auto& [intercept, slope] = t.segments[seg];
      const double temp =
          intercept + slope * x + rng.Normal(0.0, config.noise_sd);
      sensor_col->AppendInt64(t.sensor);
      tick_col->AppendInt64(static_cast<int64_t>(tick));
      temp_col->AppendDouble(temp);
    }
  }
  LAWS_RETURN_IF_ERROR(table.SyncRowCount());
  dataset.readings = std::move(table);
  return dataset;
}

}  // namespace laws

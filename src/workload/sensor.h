#ifndef LAWSDB_WORKLOAD_SENSOR_H_
#define LAWSDB_WORKLOAD_SENSOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Synthetic sensor-network workload in the spirit of MauveDB's motivating
/// deployments (paper §5): each sensor reports a temperature that drifts
/// piecewise-linearly over time (regime changes at fixed breakpoints) with
/// Gaussian measurement noise. Good substrate for piecewise-polynomial
/// (FunctionDB-style) models and grid materialization experiments.
struct SensorConfig {
  size_t num_sensors = 50;
  size_t num_ticks = 2000;
  /// Interior regime-change breakpoints as fractions of the time axis.
  std::vector<double> breakpoints = {0.35, 0.7};
  double base_mu = 20.0;
  double base_sd = 3.0;
  double slope_sd = 0.004;
  double noise_sd = 0.25;
  uint64_t seed = 99;
};

struct SensorTruth {
  int64_t sensor = 0;
  /// Per-segment (intercept, slope); segments.size() = breakpoints+1.
  std::vector<std::pair<double, double>> segments;
};

/// readings(sensor INT64, tick INT64, temperature DOUBLE).
struct SensorDataset {
  Table readings{Schema{}};
  std::vector<SensorTruth> truth;
  SensorConfig config;
  /// Breakpoints in tick units (for building matching piecewise models).
  std::vector<double> tick_breakpoints;
};

Result<SensorDataset> GenerateSensor(const SensorConfig& config = {});

}  // namespace laws

#endif  // LAWSDB_WORKLOAD_SENSOR_H_

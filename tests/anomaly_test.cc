#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "anomaly/anomaly.h"
#include "anomaly/exploration.h"
#include "common/random.h"
#include "core/session.h"
#include "storage/catalog.h"

namespace laws {
namespace {

/// Grouped power-law data where a known subset of groups is anomalous
/// (output unrelated to input).
struct AnomalyFixture {
  Catalog data;
  ModelCatalog models;
  std::unique_ptr<Session> session;
  uint64_t model_id = 0;
  std::set<int64_t> planted;  // anomalous group keys
  TablePtr table;

  explicit AnomalyFixture(uint64_t seed = 3) {
    Rng rng(seed);
    table = std::make_shared<Table>(
        Schema({Field{"g", DataType::kInt64, false},
                Field{"x", DataType::kDouble, false},
                Field{"y", DataType::kDouble, false}}));
    for (int g = 1; g <= 40; ++g) {
      const bool anomalous = g % 10 == 0;  // groups 10, 20, 30, 40
      if (anomalous) planted.insert(g);
      const double p = rng.Uniform(0.8, 1.5);
      const double a = rng.Uniform(-0.9, -0.5);
      for (int i = 0; i < 40; ++i) {
        const double x = rng.Uniform(0.1, 0.2);
        const double y =
            anomalous ? rng.Uniform(1.0, 20.0)
                      : p * std::pow(x, a) * std::exp(rng.Normal(0, 0.02));
        EXPECT_TRUE(table
                        ->AppendRow({Value::Int64(g), Value::Double(x),
                                     Value::Double(y)})
                        .ok());
      }
    }
    data.RegisterOrReplace("obs", table);
    session = std::make_unique<Session>(&data, &models);
    FitRequest r;
    r.table = "obs";
    r.model_source = "power_law";
    r.input_columns = {"x"};
    r.output_column = "y";
    r.group_column = "g";
    auto report = session->Fit(r);
    EXPECT_TRUE(report.ok());
    model_id = report->model_id;
  }
};

TEST(AnomalyTest, PlantedGroupsRankFirst) {
  AnomalyFixture f;
  auto model = f.models.Get(f.model_id);
  ASSERT_TRUE(model.ok());
  auto report = ScoreGroups(**model);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->ranked.size(), 40u);
  // The four planted anomalies occupy the top four scores.
  std::set<int64_t> top;
  for (size_t i = 0; i < f.planted.size(); ++i) {
    top.insert(report->ranked[i].group_key);
  }
  EXPECT_EQ(top, f.planted);
}

TEST(AnomalyTest, FlaggingPrecisionAndRecall) {
  AnomalyFixture f;
  auto model = f.models.Get(f.model_id);
  ASSERT_TRUE(model.ok());
  auto report = ScoreGroups(**model);
  ASSERT_TRUE(report.ok());
  size_t true_pos = 0, false_pos = 0;
  for (const auto& s : report->ranked) {
    if (!s.flagged) continue;
    if (f.planted.count(s.group_key) > 0) {
      ++true_pos;
    } else {
      ++false_pos;
    }
  }
  EXPECT_EQ(true_pos, f.planted.size());  // full recall
  EXPECT_LE(false_pos, 2u);               // high precision
}

TEST(AnomalyTest, CleanDataFlagsNothing) {
  Rng rng(7);
  Catalog data;
  ModelCatalog models;
  auto t = std::make_shared<Table>(
      Schema({Field{"g", DataType::kInt64, false},
              Field{"x", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
  for (int g = 1; g <= 20; ++g) {
    for (int i = 0; i < 30; ++i) {
      const double x = rng.Uniform(0.1, 0.2);
      EXPECT_TRUE(t->AppendRow({Value::Int64(g), Value::Double(x),
                                Value::Double(std::pow(x, -0.7) *
                                              std::exp(rng.Normal(0, 0.02)))})
                      .ok());
    }
  }
  data.RegisterOrReplace("clean", t);
  Session session(&data, &models);
  FitRequest r;
  r.table = "clean";
  r.model_source = "power_law";
  r.input_columns = {"x"};
  r.output_column = "y";
  r.group_column = "g";
  auto report = session.Fit(r);
  ASSERT_TRUE(report.ok());
  auto model = models.Get(report->model_id);
  ASSERT_TRUE(model.ok());
  auto anomalies = ScoreGroups(**model);
  ASSERT_TRUE(anomalies.ok());
  EXPECT_LE(anomalies->flagged, 1u);
}

TEST(AnomalyTest, RequiresGroupedModel) {
  CapturedModel ungrouped;
  ungrouped.grouped = false;
  EXPECT_FALSE(ScoreGroups(ungrouped).ok());
}

TEST(OutlierTest, InjectedTupleOutlierFound) {
  AnomalyFixture f(11);
  // Corrupt one row of a healthy group with an absurd value. (A single
  // outlier inflates that group's residual SE to ~|outlier|/sqrt(n), so its
  // own z-score lands near sqrt(n) — comfortably above the threshold.)
  auto table = *f.data.Get("obs");
  ASSERT_TRUE(table
                  ->AppendRow({Value::Int64(1), Value::Double(0.15),
                               Value::Double(1000.0)})
                  .ok());
  // Refit so the model matches current data.
  auto refit = f.session->Refit(f.model_id);
  ASSERT_TRUE(refit.ok());
  auto model = f.models.Get(refit->model_id);
  ASSERT_TRUE(model.ok());
  auto outliers = DetectOutlierTuples(*table, **model, 5.0);
  ASSERT_TRUE(outliers.ok());
  size_t found = 0;
  for (const auto& o : *outliers) {
    if (o.group_key == 1 && o.observed >= 1000.0) ++found;
  }
  EXPECT_EQ(found, 1u);
  // Results are ranked by |z|.
  for (size_t i = 1; i < outliers->size(); ++i) {
    EXPECT_GE(std::fabs((*outliers)[i - 1].z_score),
              std::fabs((*outliers)[i].z_score));
  }
}

TEST(ExplorationTest, PowerLawGradientPeaksAtSmallX) {
  // Single captured power law: |d/dx p*x^a| with a < 0 decays in x, so the
  // sweep must surface the smallest domain values first.
  CapturedModel m;
  m.model_source = "power_law";
  m.grouped = false;
  m.parameters = {1.0, -0.7};
  const auto domain =
      ColumnDomain::Explicit({0.1, 0.12, 0.14, 0.16, 0.18, 0.2});
  auto points = FindHighGradientRegions(m, domain, 3);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_DOUBLE_EQ((*points)[0].input, 0.1);
  EXPECT_DOUBLE_EQ((*points)[1].input, 0.12);
  EXPECT_DOUBLE_EQ((*points)[2].input, 0.14);
  // Sorted by |gradient| descending.
  for (size_t i = 1; i < points->size(); ++i) {
    EXPECT_GE(std::fabs((*points)[i - 1].gradient),
              std::fabs((*points)[i].gradient));
  }
}

TEST(ExplorationTest, GroupedSweepCoversAllGroups) {
  AnomalyFixture f(13);
  auto model = f.models.Get(f.model_id);
  ASSERT_TRUE(model.ok());
  const auto domain = ColumnDomain::Explicit({0.1, 0.15, 0.2});
  // Ask for everything: 40 groups x 3 points.
  auto points = FindHighGradientRegions(**model, domain, 1000);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 120u);
}

TEST(AnomalyTest, RankingIsMonotoneInScore) {
  AnomalyFixture f(17);
  auto model = f.models.Get(f.model_id);
  ASSERT_TRUE(model.ok());
  auto report = ScoreGroups(**model);
  ASSERT_TRUE(report.ok());
  for (size_t i = 1; i < report->ranked.size(); ++i) {
    EXPECT_GE(report->ranked[i - 1].score, report->ranked[i].score);
  }
  EXPECT_GT(report->median_residual_se, 0.0);
  EXPECT_GT(report->median_r_squared, 0.0);
}

TEST(AnomalyTest, ThresholdsControlFlagging) {
  AnomalyFixture f(19);
  auto model = f.models.Get(f.model_id);
  ASSERT_TRUE(model.ok());
  AnomalyOptions lax;
  lax.r_squared_threshold = -1.0;  // nothing fails the R2 screen
  lax.rse_factor = 1e18;           // nothing fails the RSE screen
  auto none = ScoreGroups(**model, lax);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->flagged, 0u);
  AnomalyOptions strict;
  strict.r_squared_threshold = 1.1;  // everything fails
  auto all = ScoreGroups(**model, strict);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->flagged, all->ranked.size());
}

TEST(OutlierTest, ThresholdMonotonicity) {
  AnomalyFixture f(23);
  auto table = *f.data.Get("obs");
  auto model = f.models.Get(f.model_id);
  ASSERT_TRUE(model.ok());
  auto loose = DetectOutlierTuples(*table, **model, 2.0);
  auto tight = DetectOutlierTuples(*table, **model, 6.0);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GE(loose->size(), tight->size());
  for (const auto& o : *tight) EXPECT_GE(std::fabs(o.z_score), 6.0);
}

TEST(OutlierTest, RequiresGroupedModelAndKnownColumns) {
  AnomalyFixture f(29);
  auto table = *f.data.Get("obs");
  CapturedModel ungrouped;
  ungrouped.grouped = false;
  EXPECT_FALSE(DetectOutlierTuples(*table, ungrouped, 4.0).ok());
  auto model = f.models.Get(f.model_id);
  CapturedModel wrong = **model;
  wrong.output_column = "missing";
  EXPECT_FALSE(DetectOutlierTuples(*table, wrong, 4.0).ok());
}

TEST(ExplorationTest, MultiInputModelRejected) {
  CapturedModel m;
  m.model_source = "linear(2)";
  m.grouped = false;
  m.parameters = {0.0, 1.0, 1.0};
  const auto domain = ColumnDomain::IntegerRange(0, 10, 1);
  EXPECT_FALSE(FindHighGradientRegions(m, domain, 5).ok());
}

TEST(ExplorationTest, UngroupedModelSweep) {
  CapturedModel m;
  m.model_source = "poly(2)";
  m.grouped = false;
  m.parameters = {0.0, 0.0, 1.0};  // y = x^2, dy/dx = 2x
  auto domain = ColumnDomain::IntegerRange(-5, 5, 1);
  auto points = FindHighGradientRegions(m, domain, 3);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_NEAR(std::fabs((*points)[0].gradient), 10.0, 1e-6);
  EXPECT_NEAR(std::fabs((*points)[0].input), 5.0, 1e-12);
}

}  // namespace
}  // namespace laws

#include <gtest/gtest.h>

#include <cmath>

#include "aqp/analytic.h"
#include "aqp/bloom.h"
#include "aqp/domain.h"
#include "aqp/histogram_aqp.h"
#include "aqp/hybrid.h"
#include "aqp/inverse.h"
#include "aqp/model_aqp.h"
#include "aqp/sampling_aqp.h"
#include "model/model.h"
#include "query/executor.h"
#include "common/random.h"
#include "core/session.h"
#include "query/executor.h"
#include "query/parser.h"

namespace laws {
namespace {

// --- Domains ----------------------------------------------------------------

TEST(DomainTest, ExplicitValues) {
  auto d = ColumnDomain::Explicit({0.18, 0.12, 0.15, 0.16, 0.12});
  EXPECT_EQ(d.Cardinality(), 4u);  // deduped, sorted
  EXPECT_DOUBLE_EQ(d.ValueAt(0), 0.12);
  EXPECT_DOUBLE_EQ(d.ValueAt(3), 0.18);
  EXPECT_TRUE(d.Contains(0.15));
  EXPECT_FALSE(d.Contains(0.14));
  EXPECT_EQ(d.IndicesInRange(0.13, 0.17).size(), 2u);
  EXPECT_TRUE(d.IndicesInRange(0.2, 0.3).empty());
}

TEST(DomainTest, IntegerRange) {
  auto d = ColumnDomain::IntegerRange(10, 50, 5);
  EXPECT_EQ(d.Cardinality(), 9u);
  EXPECT_DOUBLE_EQ(d.ValueAt(0), 10.0);
  EXPECT_DOUBLE_EQ(d.ValueAt(8), 50.0);
  EXPECT_TRUE(d.Contains(25.0));
  EXPECT_FALSE(d.Contains(26.0));
  EXPECT_FALSE(d.Contains(25.5));
  EXPECT_FALSE(d.Contains(55.0));
  EXPECT_EQ(d.IndicesInRange(20, 30).size(), 3u);  // 20, 25, 30
}

TEST(DomainTest, InferExplicitFromDoubleColumn) {
  Column c(DataType::kDouble);
  for (int i = 0; i < 100; ++i) c.AppendDouble(i % 2 == 0 ? 0.12 : 0.15);
  auto d = DomainRegistry::InferFromColumn(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, ColumnDomain::Kind::kExplicitValues);
  EXPECT_EQ(d->Cardinality(), 2u);
}

TEST(DomainTest, InferIntegerRangeFromRegularProgression) {
  Column c(DataType::kInt64);
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 50; ++i) c.AppendInt64(100 + i * 10);
  }
  auto d = DomainRegistry::InferFromColumn(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, ColumnDomain::Kind::kIntegerRange);
  EXPECT_EQ(d->start, 100);
  EXPECT_EQ(d->stop, 590);
  EXPECT_EQ(d->step, 10);
}

TEST(DomainTest, InferRejectsHighCardinality) {
  Column c(DataType::kDouble);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) c.AppendDouble(rng.NextDouble());
  EXPECT_FALSE(DomainRegistry::InferFromColumn(c, 100).ok());
}

TEST(DomainRegistryTest, RegisterAndGet) {
  DomainRegistry reg;
  reg.Register("t", "x", ColumnDomain::Explicit({1, 2, 3}));
  EXPECT_TRUE(reg.Contains("t", "x"));
  EXPECT_FALSE(reg.Contains("t", "y"));
  ASSERT_TRUE(reg.Get("t", "x").ok());
  EXPECT_FALSE(reg.Get("u", "x").ok());
}

// --- Bloom filter ----------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(10000, 0.01);
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(rng.NextU64());
  for (uint64_t k : keys) bloom.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(bloom.MayContain(k));
}

TEST(BloomTest, FalsePositiveRateNearTarget) {
  BloomFilter bloom(20000, 0.01);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) bloom.Insert(rng.NextU64());
  int fps = 0;
  const int probes = 50000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.MayContain(rng.NextU64())) ++fps;
  }
  const double rate = static_cast<double>(fps) / probes;
  EXPECT_LT(rate, 0.03);  // target 1%, allow slack
}

TEST(BloomTest, SizeScalesWithTargetFpr) {
  BloomFilter loose(10000, 0.1);
  BloomFilter tight(10000, 0.001);
  EXPECT_LT(loose.SizeBytes(), tight.SizeBytes());
}

TEST(LegalCombinationFilterTest, BuildAndProbe) {
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int g = 1; g <= 100; ++g) {
    // Each group observed only at x = g/100.
    ASSERT_TRUE(t.AppendRow({Value::Int64(g), Value::Double(g / 100.0),
                             Value::Double(1.0)})
                    .ok());
  }
  auto filter = LegalCombinationFilter::Build(t, "g", {"x"}, 0.001);
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(filter->items_inserted(), 100u);
  // Observed combinations are always admitted.
  for (int g = 1; g <= 100; ++g) {
    EXPECT_TRUE(filter->MayContain(g, {g / 100.0}));
  }
  // Phantom combinations are mostly rejected.
  int phantom_hits = 0;
  for (int g = 1; g <= 100; ++g) {
    if (filter->MayContain(g, {0.999})) ++phantom_hits;
  }
  EXPECT_LE(phantom_hits, 2);
}

// --- Model-based AQP ----------------------------------------------------------

/// Full AQP fixture: grouped power-law data, captured model, domains.
struct AqpFixture {
  Catalog data;
  ModelCatalog models;
  DomainRegistry domains;
  std::unique_ptr<Session> session;
  std::unique_ptr<ModelQueryEngine> engine;
  uint64_t model_id = 0;
  std::vector<double> bands = {0.12, 0.15, 0.16, 0.18};

  AqpFixture() {
    Rng rng(5);
    auto t = std::make_shared<Table>(
        Schema({Field{"source", DataType::kInt64, false},
                Field{"wavelength", DataType::kDouble, false},
                Field{"intensity", DataType::kDouble, false}}));
    for (int s = 1; s <= 30; ++s) {
      const double p = 0.5 + 0.05 * s;
      const double a = -0.7;
      for (int i = 0; i < 40; ++i) {
        const double nu = bands[static_cast<size_t>(rng.UniformInt(0, 3))];
        EXPECT_TRUE(
            t->AppendRow({Value::Int64(s), Value::Double(nu),
                          Value::Double(p * std::pow(nu, a) *
                                        std::exp(rng.Normal(0, 0.01)))})
                .ok());
      }
    }
    data.RegisterOrReplace("measurements", t);
    session = std::make_unique<Session>(&data, &models);
    FitRequest r;
    r.table = "measurements";
    r.model_source = "power_law";
    r.input_columns = {"wavelength"};
    r.output_column = "intensity";
    r.group_column = "source";
    auto report = session->Fit(r);
    EXPECT_TRUE(report.ok());
    model_id = report->model_id;
    domains.Register("measurements", "wavelength",
                     ColumnDomain::Explicit(bands));
    engine = std::make_unique<ModelQueryEngine>(&data, &models, &domains);
  }
};

TEST(ModelAqpTest, PointQueryAnsweredFromModelOnly) {
  AqpFixture f;
  auto answer = f.engine->Execute(
      "SELECT intensity FROM measurements WHERE source = 7 AND wavelength = "
      "0.15");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->method, "model-point");
  EXPECT_EQ(answer->raw_rows_accessed, 0u);
  ASSERT_EQ(answer->table.num_rows(), 1u);
  const double expected = (0.5 + 0.05 * 7) * std::pow(0.15, -0.7);
  EXPECT_NEAR(answer->table.GetValue(0, 0).dbl(), expected, 0.05);
  EXPECT_GT(answer->error_bound, 0.0);
}

TEST(ModelAqpTest, SelectionQueryOverEnumeratedGrid) {
  AqpFixture f;
  // Paper query 2: all sources whose predicted intensity at 0.15 exceeds a
  // threshold.
  auto answer = f.engine->Execute(
      "SELECT source, intensity FROM measurements WHERE wavelength = 0.15 "
      "AND intensity > 5.0");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->raw_rows_accessed, 0u);
  // Exact comparison: p_s * 0.15^-0.7 > 5  =>  p_s > 1.33  => s >= 17ish.
  const double cutoff = 5.0 / std::pow(0.15, -0.7);
  int expected = 0;
  for (int s = 1; s <= 30; ++s) {
    if (0.5 + 0.05 * s > cutoff) ++expected;
  }
  EXPECT_NEAR(static_cast<double>(answer->table.num_rows()),
              static_cast<double>(expected), 1.0);
}

TEST(ModelAqpTest, AggregateOverModel) {
  AqpFixture f;
  auto answer = f.engine->Execute(
      "SELECT AVG(intensity) FROM measurements WHERE wavelength = 0.12");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->table.num_rows(), 1u);
  double expected = 0.0;
  for (int s = 1; s <= 30; ++s) {
    expected += (0.5 + 0.05 * s) * std::pow(0.12, -0.7);
  }
  expected /= 30.0;
  EXPECT_NEAR(answer->table.GetValue(0, 0).dbl(), expected,
              expected * 0.02);
}

TEST(ModelAqpTest, UnpinnedNonEnumerableDimensionFails) {
  AqpFixture f;
  DomainRegistry empty;
  ModelQueryEngine engine(&f.data, &f.models, &empty);
  auto answer = engine.Execute(
      "SELECT intensity FROM measurements WHERE source = 7");
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
  // But a pinned query still works without a domain.
  auto pinned = engine.Execute(
      "SELECT intensity FROM measurements WHERE source = 7 AND wavelength = "
      "0.15");
  EXPECT_TRUE(pinned.ok()) << pinned.status().ToString();
}

TEST(ModelAqpTest, UncoveredColumnFails) {
  AqpFixture f;
  auto answer = f.engine->Execute(
      "SELECT nonexistent FROM measurements WHERE source = 1");
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
}

TEST(ModelAqpTest, StaleModelIsNotUsed) {
  AqpFixture f;
  auto table = *f.data.Get("measurements");
  ASSERT_TRUE(table
                  ->AppendRow({Value::Int64(1), Value::Double(0.15),
                               Value::Double(1.0)})
                  .ok());
  auto answer = f.engine->Execute(
      "SELECT intensity FROM measurements WHERE source = 1 AND wavelength = "
      "0.15");
  EXPECT_FALSE(answer.ok());  // only model is stale now
}

TEST(ModelAqpTest, LegalFilterDropsPhantomCombinations) {
  AqpFixture f;
  // Build legality over the raw data: every source was observed at all 4
  // bands (high row count), so this mostly checks plumbing + the negative
  // probe below.
  auto table = *f.data.Get("measurements");
  auto filter =
      LegalCombinationFilter::Build(*table, "source", {"wavelength"}, 0.001);
  ASSERT_TRUE(filter.ok());
  f.engine->AttachLegalFilter(f.model_id, std::move(*filter));
  // A wavelength that never occurred: enumeration admits nothing.
  auto phantom = f.engine->Execute(
      "SELECT intensity FROM measurements WHERE source = 7 AND wavelength = "
      "0.55");
  ASSERT_TRUE(phantom.ok()) << phantom.status().ToString();
  EXPECT_EQ(phantom->table.num_rows(), 0u);
  // Legal combinations still answer.
  auto legal = f.engine->Execute(
      "SELECT intensity FROM measurements WHERE source = 7 AND wavelength = "
      "0.15");
  ASSERT_TRUE(legal.ok());
  EXPECT_EQ(legal->table.num_rows(), 1u);
}

TEST(ModelAqpTest, ReconstructTableZeroIo) {
  AqpFixture f;
  auto model = f.models.Get(f.model_id);
  ASSERT_TRUE(model.ok());
  auto recon = f.engine->ReconstructTable(**model, {});
  ASSERT_TRUE(recon.ok()) << recon.status().ToString();
  EXPECT_EQ(recon->raw_rows_accessed, 0u);
  // 30 sources x 4 bands.
  EXPECT_EQ(recon->table.num_rows(), 120u);
  EXPECT_EQ(recon->tuples_reconstructed, 120u);
}

TEST(ModelAqpTest, TupleCapEnforced) {
  AqpFixture f;
  f.engine->set_max_tuples(10);
  auto answer = f.engine->Execute(
      "SELECT AVG(intensity) FROM measurements WHERE wavelength = 0.12");
  EXPECT_FALSE(answer.ok());
}

TEST(RangeConstraintTest, ExtractsConjunctiveRanges) {
  auto e = ParseExpression(
      "source = 42 AND wavelength >= 0.1 AND wavelength < 0.2 AND "
      "intensity > 3.0");
  ASSERT_TRUE(e.ok());
  auto ranges = ExtractRangeConstraints(e->get());
  ASSERT_EQ(ranges.count("source"), 1u);
  EXPECT_DOUBLE_EQ(ranges["source"].first, 42.0);
  EXPECT_DOUBLE_EQ(ranges["source"].second, 42.0);
  EXPECT_DOUBLE_EQ(ranges["wavelength"].first, 0.1);
  EXPECT_DOUBLE_EQ(ranges["wavelength"].second, 0.2);
  EXPECT_DOUBLE_EQ(ranges["intensity"].first, 3.0);
  // Disjunctions contribute nothing.
  auto e2 = ParseExpression("source = 1 OR source = 2");
  auto r2 = ExtractRangeConstraints(e2->get());
  EXPECT_TRUE(r2.empty());
}

// --- Analytic linear aggregates --------------------------------------------

CapturedModel LinearCaptured(double intercept, double slope, double rse) {
  CapturedModel m;
  m.model_source = "linear(1)";
  m.parameters = {intercept, slope};
  m.quality.residual_standard_error = rse;
  return m;
}

TEST(AnalyticTest, ClosedFormsOnIntegerRange) {
  CapturedModel m = LinearCaptured(2.0, 3.0, 0.5);
  auto domain = ColumnDomain::IntegerRange(0, 99, 1);
  auto count = AnalyticLinearAggregate(m, AggregateFunc::kCount, domain, 10,
                                       19);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->value, 10.0);
  auto sum =
      AnalyticLinearAggregate(m, AggregateFunc::kSum, domain, 10, 19);
  ASSERT_TRUE(sum.ok());
  // sum(2 + 3x) for x=10..19 = 20 + 3*145 = 455.
  EXPECT_DOUBLE_EQ(sum->value, 455.0);
  auto avg =
      AnalyticLinearAggregate(m, AggregateFunc::kAvg, domain, 10, 19);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->value, 45.5);
  auto mn = AnalyticLinearAggregate(m, AggregateFunc::kMin, domain, 10, 19);
  auto mx = AnalyticLinearAggregate(m, AggregateFunc::kMax, domain, 10, 19);
  EXPECT_DOUBLE_EQ(mn->value, 32.0);
  EXPECT_DOUBLE_EQ(mx->value, 59.0);
  // Error bounds follow RSE scaling.
  EXPECT_DOUBLE_EQ(mn->error_bound, 0.5);
  EXPECT_NEAR(avg->error_bound, 0.5 / std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(sum->error_bound, 0.5 * std::sqrt(10.0), 1e-12);
}

TEST(AnalyticTest, NegativeSlopeFlipsExtremes) {
  CapturedModel m = LinearCaptured(10.0, -2.0, 0.1);
  auto domain = ColumnDomain::IntegerRange(0, 10, 1);
  auto mn = AnalyticLinearAggregate(m, AggregateFunc::kMin, domain, 0, 10);
  auto mx = AnalyticLinearAggregate(m, AggregateFunc::kMax, domain, 0, 10);
  EXPECT_DOUBLE_EQ(mn->value, -10.0);  // at x=10
  EXPECT_DOUBLE_EQ(mx->value, 10.0);   // at x=0
}

TEST(AnalyticTest, ExplicitDomainFallback) {
  CapturedModel m = LinearCaptured(0.0, 1.0, 0.0);
  auto domain = ColumnDomain::Explicit({1.0, 2.0, 5.0});
  auto sum = AnalyticLinearAggregate(m, AggregateFunc::kSum, domain, 0, 10);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->value, 8.0);
  EXPECT_EQ(sum->n, 3u);
}

TEST(AnalyticTest, EmptyRangeAndValidation) {
  CapturedModel m = LinearCaptured(0.0, 1.0, 0.0);
  auto domain = ColumnDomain::IntegerRange(0, 10, 1);
  auto empty =
      AnalyticLinearAggregate(m, AggregateFunc::kCount, domain, 20, 30);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->n, 0u);
  CapturedModel grouped = m;
  grouped.grouped = true;
  EXPECT_FALSE(
      AnalyticLinearAggregate(grouped, AggregateFunc::kSum, domain, 0, 5)
          .ok());
  CapturedModel wrong = m;
  wrong.model_source = "power_law";
  EXPECT_FALSE(
      AnalyticLinearAggregate(wrong, AggregateFunc::kSum, domain, 0, 5).ok());
}

// --- Sampling baseline -------------------------------------------------------

TEST(SamplingTest, EstimatesNearTruth) {
  Rng rng(6);
  Table t(Schema({Field{"x", DataType::kDouble, false}}));
  double exact_sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.Uniform(0.0, 10.0);
    exact_sum += v;
    ASSERT_TRUE(t.AppendRow({Value::Double(v)}).ok());
  }
  SamplingEngine engine(t, 0.01);
  EXPECT_NEAR(engine.fraction(), 0.01, 0.003);
  auto count = engine.EstimateAggregate(AggregateFunc::kCount, "x", nullptr);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(count->value, 100000.0, 1.0);  // scaled by 1/actual_fraction
  auto avg = engine.EstimateAggregate(AggregateFunc::kAvg, "x", nullptr);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->value, 5.0, 3.0 * avg->ci_half_width / 1.96);
  auto sum = engine.EstimateAggregate(AggregateFunc::kSum, "x", nullptr);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum->value, exact_sum, exact_sum * 0.05);
}

TEST(SamplingTest, FilteredEstimates) {
  Rng rng(7);
  Table t(Schema({Field{"x", DataType::kDouble, false}}));
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Double(rng.Uniform(0.0, 1.0))}).ok());
  }
  SamplingEngine engine(t, 0.05);
  auto pred = ParseExpression("x < 0.25");
  ASSERT_TRUE(pred.ok());
  auto count =
      engine.EstimateAggregate(AggregateFunc::kCount, "x", pred->get());
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(count->value, 12500.0, 3.0 * count->ci_half_width / 1.96 + 500);
}

TEST(SamplingTest, SampleIsSmallerThanTable) {
  Rng rng(8);
  Table t(Schema({Field{"x", DataType::kDouble, false}}));
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Double(rng.Normal())}).ok());
  }
  SamplingEngine engine(t, 0.02);
  EXPECT_LT(engine.SampleBytes(), t.MemoryBytes() / 10);
}

// --- Hybrid engine -----------------------------------------------------------

TEST(HybridTest, UsesModelWhenGoodAndCovering) {
  AqpFixture f;
  HybridQueryEngine hybrid(&f.data, f.engine.get());
  auto answer = hybrid.Execute(
      "SELECT intensity FROM measurements WHERE source = 7 AND wavelength = "
      "0.15");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->approximate);
  EXPECT_EQ(answer->method, "model-point");
  EXPECT_GT(answer->error_bound, 0.0);
  EXPECT_TRUE(answer->fallback_reason.empty());
}

TEST(HybridTest, FallsBackToExactForUncoveredQuery) {
  AqpFixture f;
  HybridQueryEngine hybrid(&f.data, f.engine.get());
  // Aggregate over everything is covered, but a query with no usable
  // model path (unpinned + non-enumerable in an empty-domain engine) is
  // not — emulate by referencing the raw table through a predicate the
  // model path can serve, then one it cannot: here, no model covers a
  // query that references nothing but still needs exactness? Use a
  // DISTINCT query: reconstruction handles it too, so instead drop the
  // domain registry.
  DomainRegistry empty;
  ModelQueryEngine no_domains(&f.data, &f.models, &empty);
  HybridQueryEngine hybrid2(&f.data, &no_domains);
  auto answer =
      hybrid2.Execute("SELECT AVG(intensity) FROM measurements");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_FALSE(answer->approximate);
  EXPECT_EQ(answer->method, "exact");
  EXPECT_FALSE(answer->fallback_reason.empty());
}

TEST(HybridTest, QualityGateForcesExact) {
  AqpFixture f;
  HybridOptions strict;
  strict.min_quality = 0.9999;  // no real fit clears this
  HybridQueryEngine hybrid(&f.data, f.engine.get(), strict);
  auto answer = hybrid.Execute(
      "SELECT AVG(intensity) FROM measurements WHERE source = 7 AND "
      "wavelength = 0.15");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->approximate);
  EXPECT_NE(answer->fallback_reason.find("quality"), std::string::npos);
}

TEST(HybridTest, NoFallbackModeFails) {
  AqpFixture f;
  DomainRegistry empty;
  ModelQueryEngine no_domains(&f.data, &f.models, &empty);
  HybridOptions opts;
  opts.allow_exact_fallback = false;
  HybridQueryEngine hybrid(&f.data, &no_domains, opts);
  EXPECT_FALSE(
      hybrid.Execute("SELECT AVG(intensity) FROM measurements").ok());
}

// --- Multi-input enumeration --------------------------------------------------

TEST(ModelAqpTest, TwoInputDimensionsEnumerate) {
  // y = 1 + 2*x1 + 3*x2 over small explicit domains; grid = |x1| * |x2|.
  Catalog data;
  ModelCatalog models;
  Rng rng(77);
  auto t = std::make_shared<Table>(
      Schema({Field{"x1", DataType::kDouble, false},
              Field{"x2", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
  const std::vector<double> d1 = {0.0, 1.0, 2.0};
  const std::vector<double> d2 = {10.0, 20.0};
  for (int rep = 0; rep < 50; ++rep) {
    const double x1 = d1[static_cast<size_t>(rng.UniformInt(0, 2))];
    const double x2 = d2[static_cast<size_t>(rng.UniformInt(0, 1))];
    ASSERT_TRUE(
        t->AppendRow({Value::Double(x1), Value::Double(x2),
                      Value::Double(1 + 2 * x1 + 3 * x2 +
                                    rng.Normal(0, 0.01))})
            .ok());
  }
  data.RegisterOrReplace("grid2", t);
  Session session(&data, &models);
  FitRequest fit;
  fit.table = "grid2";
  fit.model_source = "linear(2)";
  fit.input_columns = {"x1", "x2"};
  fit.output_column = "y";
  ASSERT_TRUE(session.Fit(fit).ok());
  DomainRegistry domains;
  domains.Register("grid2", "x1", ColumnDomain::Explicit(d1));
  domains.Register("grid2", "x2", ColumnDomain::Explicit(d2));
  ModelQueryEngine engine(&data, &models, &domains);
  auto all = engine.Execute("SELECT x1, x2, y FROM grid2");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->table.num_rows(), 6u);  // 3 x 2 grid
  // Pin one dimension; the other enumerates.
  auto pinned = engine.Execute(
      "SELECT y FROM grid2 WHERE x1 = 1 ORDER BY y");
  ASSERT_TRUE(pinned.ok());
  ASSERT_EQ(pinned->table.num_rows(), 2u);
  EXPECT_NEAR(pinned->table.GetValue(0, 0).dbl(), 33.0, 0.1);
  EXPECT_NEAR(pinned->table.GetValue(1, 0).dbl(), 63.0, 0.1);
}

// --- Stratified sampling baseline -------------------------------------------

TEST(StratifiedSamplingTest, SelectivePredicateStillAnswered) {
  // One giant group and many small ones: a uniform 1% sample rarely sees
  // small groups; the stratified sample always does.
  Rng rng(11);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"v", DataType::kDouble, false}}));
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(1),
                             Value::Double(rng.Normal(100, 5))})
                    .ok());
  }
  for (int g = 2; g <= 100; ++g) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(t.AppendRow({Value::Int64(g),
                               Value::Double(rng.Normal(10.0 * g, 1.0))})
                      .ok());
    }
  }
  auto strat = StratifiedSamplingEngine::Build(t, "g", 20);
  ASSERT_TRUE(strat.ok()) << strat.status().ToString();
  EXPECT_EQ(strat->num_groups(), 100u);
  // Every group contributed at most 20 rows.
  EXPECT_LE(strat->sample_rows(), 100u * 20u);

  auto pred = ParseExpression("g = 57");
  ASSERT_TRUE(pred.ok());
  auto avg = strat->EstimateAggregate(AggregateFunc::kAvg, "v", pred->get());
  ASSERT_TRUE(avg.ok());
  EXPECT_GT(avg->sample_rows_used, 0u);
  EXPECT_NEAR(avg->value, 570.0, 2.0);
  auto count =
      strat->EstimateAggregate(AggregateFunc::kCount, "v", pred->get());
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(count->value, 50.0, 1e-9);  // 20 rows * weight 2.5

  // The uniform sample at comparable size usually misses it badly.
  SamplingEngine uniform(t, static_cast<double>(strat->sample_rows()) /
                                static_cast<double>(t.num_rows()));
  auto ucount =
      uniform.EstimateAggregate(AggregateFunc::kCount, "v", pred->get());
  ASSERT_TRUE(ucount.ok());
  EXPECT_GT(std::fabs(count->value - 50.0) + 1.0,
            0.0);  // stratified is exact here; uniform is noisy
}

TEST(StratifiedSamplingTest, WeightedSumMatchesPopulation) {
  Rng rng(12);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"v", DataType::kDouble, false}}));
  double exact_sum = 0.0;
  for (int g = 1; g <= 40; ++g) {
    const int rows = 10 * g;  // strongly varying strata sizes
    for (int i = 0; i < rows; ++i) {
      const double v = rng.Uniform(0.0, 10.0);
      exact_sum += v;
      ASSERT_TRUE(t.AppendRow({Value::Int64(g), Value::Double(v)}).ok());
    }
  }
  auto strat = StratifiedSamplingEngine::Build(t, "g", 25, 7);
  ASSERT_TRUE(strat.ok());
  auto sum = strat->EstimateAggregate(AggregateFunc::kSum, "v", nullptr);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum->value, exact_sum, exact_sum * 0.1);
}

TEST(StratifiedSamplingTest, Validation) {
  Table t(Schema({Field{"g", DataType::kDouble, false}}));
  EXPECT_FALSE(StratifiedSamplingEngine::Build(t, "g", 10).ok());  // type
  Table t2(Schema({Field{"g", DataType::kInt64, false}}));
  EXPECT_FALSE(StratifiedSamplingEngine::Build(t2, "g", 0).ok());  // cap
  EXPECT_FALSE(StratifiedSamplingEngine::Build(t2, "missing", 5).ok());
}

// --- Histogram baseline -----------------------------------------------------

TEST(HistogramAqpTest, RangeEstimates) {
  Rng rng(9);
  Table t(Schema({Field{"x", DataType::kDouble, false},
                  Field{"tag", DataType::kString, false}}));
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Double(rng.Uniform(0.0, 100.0)),
                             Value::String("a")})
                    .ok());
  }
  auto engine = HistogramEngine::Build(t, 64);
  ASSERT_TRUE(engine.ok());
  auto count =
      engine->EstimateRange(AggregateFunc::kCount, "x", "x", 25.0, 75.0);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(*count, 25000.0, 1000.0);
  auto avg = engine->EstimateRange(AggregateFunc::kAvg, "x", "x", 25.0, 75.0);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(*avg, 50.0, 2.0);
  // Cross-column SUM is not derivable.
  EXPECT_EQ(engine
                ->EstimateRange(AggregateFunc::kSum, "y", "x", 0.0, 1.0)
                .status()
                .code(),
            StatusCode::kUnimplemented);
  // String columns got no histogram.
  EXPECT_EQ(engine->GetHistogram("tag"), nullptr);
  EXPECT_GT(engine->SizeBytes(), 0u);
  EXPECT_LT(engine->SizeBytes(), t.MemoryBytes() / 100);
}

// --- Inverse prediction --------------------------------------------------

TEST(InverseTest, PredictsInputIntervalsPerGroup) {
  // Two captured linear groups: g1: y = x, g2: y = 2x over x = 0..10.
  CapturedModel m;
  m.model_source = "linear(1)";
  m.grouped = true;
  Table pt(Schema({Field{"g", DataType::kInt64, false},
                   Field{"intercept", DataType::kDouble, false},
                   Field{"b1", DataType::kDouble, false},
                   Field{"residual_se", DataType::kDouble, false},
                   Field{"r_squared", DataType::kDouble, false},
                   Field{"n_obs", DataType::kInt64, false}}));
  ASSERT_TRUE(pt.AppendRow({Value::Int64(1), Value::Double(0.0),
                            Value::Double(1.0), Value::Double(0.01),
                            Value::Double(0.99), Value::Int64(10)})
                  .ok());
  ASSERT_TRUE(pt.AppendRow({Value::Int64(2), Value::Double(0.0),
                            Value::Double(2.0), Value::Double(0.01),
                            Value::Double(0.99), Value::Int64(10)})
                  .ok());
  m.parameter_table = std::move(pt);

  const auto domain = ColumnDomain::IntegerRange(0, 10, 1);
  auto regions = InversePredict(m, domain, 4.0, 6.0);
  ASSERT_TRUE(regions.ok()) << regions.status().ToString();
  ASSERT_EQ(regions->size(), 2u);
  // g1: y in [4,6] for x in [4,6]; g2: y in [4,6] for x in {2,3}.
  EXPECT_EQ((*regions)[0].group_key, 1);
  EXPECT_DOUBLE_EQ((*regions)[0].input_lo, 4.0);
  EXPECT_DOUBLE_EQ((*regions)[0].input_hi, 6.0);
  EXPECT_EQ((*regions)[0].points, 3u);
  EXPECT_EQ((*regions)[1].group_key, 2);
  EXPECT_DOUBLE_EQ((*regions)[1].input_lo, 2.0);
  EXPECT_DOUBLE_EQ((*regions)[1].input_hi, 3.0);
}

TEST(InverseTest, DisjointRegionsForNonMonotoneModel) {
  // y = x^2 over x in [-5, 5]: y in [4, 9] has two symmetric regions.
  CapturedModel m;
  m.model_source = "poly(2)";
  m.grouped = false;
  m.parameters = {0.0, 0.0, 1.0};
  const auto domain = ColumnDomain::IntegerRange(-5, 5, 1);
  auto regions = InversePredict(m, domain, 4.0, 9.0);
  ASSERT_TRUE(regions.ok());
  ASSERT_EQ(regions->size(), 2u);
  EXPECT_DOUBLE_EQ((*regions)[0].input_lo, -3.0);
  EXPECT_DOUBLE_EQ((*regions)[0].input_hi, -2.0);
  EXPECT_DOUBLE_EQ((*regions)[1].input_lo, 2.0);
  EXPECT_DOUBLE_EQ((*regions)[1].input_hi, 3.0);
}

TEST(InverseTest, EmptyAndInvalidTargets) {
  CapturedModel m;
  m.model_source = "linear(1)";
  m.parameters = {0.0, 1.0};
  const auto domain = ColumnDomain::IntegerRange(0, 10, 1);
  auto none = InversePredict(m, domain, 100.0, 200.0);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(InversePredict(m, domain, 5.0, 4.0).ok());
}

TEST(InverseTest, InvertMonotoneBisection) {
  PowerLawModel model;
  const Vector params = {2.0, -0.7};
  // f(x) = 2 x^-0.7 is decreasing; find x with f(x) = 3.
  auto x = InvertMonotone(model, params, 3.0, 0.05, 2.0);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_NEAR(model.Evaluate({*x}, params), 3.0, 1e-8);
  // Out-of-range target.
  EXPECT_EQ(InvertMonotone(model, params, 1000.0, 0.05, 2.0).status().code(),
            StatusCode::kNotFound);
  // Non-monotone model on a straddling interval.
  PolynomialModel parabola(2);
  EXPECT_FALSE(
      InvertMonotone(parabola, {0.0, 0.0, 1.0}, 4.0, -5.0, 5.0).ok());
  // Empty interval.
  EXPECT_FALSE(InvertMonotone(model, params, 3.0, 2.0, 1.0).ok());
}

// --- Materialized model views (MauveDB-style) ------------------------------

TEST(ModelViewTest, MaterializeAndQueryWithExactEngine) {
  AqpFixture f;
  auto tuples = f.engine->MaterializeView(f.model_id, "mview", &f.data);
  ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
  EXPECT_EQ(*tuples, 30u * 4u);  // sources x bands
  // The view is a normal table now.
  auto result = ExecuteQuery(
      f.data, "SELECT COUNT(*) FROM mview WHERE wavelength = 0.12");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->GetValue(0, 0).int64(), 30);
  EXPECT_FALSE(f.engine->MaterializeView(999999, "x", &f.data).ok());
  EXPECT_FALSE(f.engine->MaterializeView(f.model_id, "x", nullptr).ok());
}

TEST(HistogramAqpTest, MinMaxClampedToRange) {
  Table t(Schema({Field{"x", DataType::kDouble, false}}));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Double(static_cast<double>(i))}).ok());
  }
  auto engine = HistogramEngine::Build(t, 10);
  ASSERT_TRUE(engine.ok());
  auto mn = engine->EstimateRange(AggregateFunc::kMin, "x", "x", 250.0, 600.0);
  auto mx = engine->EstimateRange(AggregateFunc::kMax, "x", "x", 250.0, 600.0);
  ASSERT_TRUE(mn.ok());
  ASSERT_TRUE(mx.ok());
  EXPECT_NEAR(*mn, 250.0, 100.0);
  EXPECT_NEAR(*mx, 600.0, 100.0);
}

}  // namespace
}  // namespace laws

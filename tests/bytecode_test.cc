// Unit tests for the compiled expression tier (DESIGN.md §13): golden
// programs out of the compiler, constant folding / CSE / type
// specialization, §11 semantics parity against the tree-walker, and the
// batch/scratch mechanics of the VM.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "query/bytecode.h"
#include "query/expr_eval.h"
#include "query/parser.h"
#include "query/vector_eval.h"
#include "storage/table.h"

namespace laws {
namespace {

Schema TestSchema() {
  return Schema({Field{"ia", DataType::kInt64, true},
                 Field{"ib", DataType::kInt64, true},
                 Field{"da", DataType::kDouble, true},
                 Field{"db", DataType::kDouble, true},
                 Field{"ba", DataType::kBool, true},
                 Field{"sa", DataType::kString, true}});
}

// Parses the expression of `SELECT <expr> FROM t` (parser has no
// standalone expression entry point).
std::unique_ptr<Expr> ParseExpr(const std::string& text) {
  auto stmt = ParseSelect("SELECT " + text + " FROM t");
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status().ToString();
  if (!stmt.ok()) return nullptr;
  return std::move(stmt->select_list[0].expr);
}

std::optional<CompiledExpr> Compile(const std::string& text) {
  auto expr = ParseExpr(text);
  if (expr == nullptr) return std::nullopt;
  return CompileExpr(*expr, TestSchema());
}

Table SmallTable() {
  Table t{TestSchema()};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto row = [&](Value ia, Value ib, Value da, Value db, Value ba) {
    EXPECT_TRUE(
        t.AppendRow({std::move(ia), std::move(ib), std::move(da),
                     std::move(db), std::move(ba), Value::String("s")})
            .ok());
  };
  row(Value::Int64(1), Value::Int64(10), Value::Double(1.5),
      Value::Double(2.0), Value::Bool(true));
  row(Value::Int64(-7), Value::Int64(3), Value::Double(-0.0),
      Value::Double(0.5), Value::Bool(false));
  row(Value::Null(), Value::Int64(5), Value::Double(nan),
      Value::Double(-3.25), Value::Null());
  row(Value::Int64(9007199254740993LL),  // 2^53 + 1: comparison horizon
      Value::Int64(9007199254740992LL), Value::Double(9007199254740992.0),
      Value::Double(100.0), Value::Bool(true));
  row(Value::Int64(0), Value::Null(), Value::Null(), Value::Double(0.25),
      Value::Bool(false));
  return t;
}

// Both engines over the same expression and table must agree bit-for-bit
// (NaNs one class) including NULL-ness, or raise errors with identical
// messages.
void ExpectParity(const std::string& text, const Table& table) {
  auto expr = ParseExpr(text);
  ASSERT_NE(expr, nullptr);
  auto compiled = CompileExpr(*expr, table.schema());
  ASSERT_TRUE(compiled.has_value()) << text << " did not compile";
  Result<Column> tw = EvaluateExpr(*expr, table);
  BatchEvaluator eval;
  Result<Column> bc = eval.Run(*compiled, table);
  ASSERT_EQ(tw.ok(), bc.ok())
      << text << ": treewalk " << (tw.ok() ? "ok" : tw.status().ToString())
      << " vs bytecode " << (bc.ok() ? "ok" : bc.status().ToString());
  if (!tw.ok()) {
    EXPECT_EQ(tw.status().ToString(), bc.status().ToString()) << text;
    return;
  }
  ASSERT_EQ(tw->size(), bc->size()) << text;
  ASSERT_EQ(tw->type(), bc->type()) << text;
  for (size_t i = 0; i < tw->size(); ++i) {
    ASSERT_EQ(tw->IsNull(i), bc->IsNull(i)) << text << " row " << i;
    if (tw->IsNull(i)) continue;
    switch (tw->type()) {
      case DataType::kDouble: {
        const double a = tw->DoubleAt(i), b = bc->DoubleAt(i);
        if (std::isnan(a) || std::isnan(b)) {
          EXPECT_TRUE(std::isnan(a) && std::isnan(b)) << text << " row " << i;
        } else {
          uint64_t ba, bb;
          std::memcpy(&ba, &a, 8);
          std::memcpy(&bb, &b, 8);
          EXPECT_EQ(ba, bb) << text << " row " << i << ": " << a << " vs "
                            << b;
        }
        break;
      }
      case DataType::kInt64:
        EXPECT_EQ(tw->Int64At(i), bc->Int64At(i)) << text << " row " << i;
        break;
      case DataType::kBool:
        EXPECT_EQ(tw->BoolAt(i), bc->BoolAt(i)) << text << " row " << i;
        break;
      default:
        FAIL() << "unexpected result type for " << text;
    }
  }
}

// --- Golden programs ------------------------------------------------------

TEST(BytecodeCompilerTest, GoldenIntAdd) {
  auto p = Compile("ia + 1");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(),
            "s0=loadcol.i64(ia); s1=const.i64(1); s1=add.i64(s0,s1)");
  EXPECT_EQ(p->result_type, DataType::kInt64);
  EXPECT_EQ(p->num_slots, 2);
}

TEST(BytecodeCompilerTest, GoldenMixedPromotesToDouble) {
  auto p = Compile("ia * da");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(),
            "s0=loadcol.i64(ia); s1=loadcol.f64(da); s0=cast.i64.f64(s0); "
            "s1=mul.f64(s0,s1)");
  EXPECT_EQ(p->result_type, DataType::kDouble);
}

TEST(BytecodeCompilerTest, GoldenComparisonIsDoubleTyped) {
  // §11: every numeric comparison goes through double coercion, even
  // int64-vs-int64 (the 2^53 horizon is intentional, shared semantics).
  auto p = Compile("ia < ib");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(),
            "s0=loadcol.i64(ia); s1=loadcol.i64(ib); s0=cast.i64.f64(s0); "
            "s1=cast.i64.f64(s1); s1=cmplt.f64(s0,s1)");
  EXPECT_EQ(p->result_type, DataType::kBool);
}

// --- Constant folding and CSE ---------------------------------------------

TEST(BytecodeCompilerTest, ConstantSubtreeFoldsToOneLoad) {
  auto p = Compile("da + (1 + 2 * 3)");
  ASSERT_TRUE(p.has_value());
  // The column-free subtree becomes a single constant instruction.
  size_t consts = 0;
  for (const auto& ins : p->code) {
    consts += ins.op == OpCode::kConstI64 || ins.op == OpCode::kConstF64;
  }
  EXPECT_EQ(consts, 1u) << p->ToString();
  EXPECT_EQ(p->constants.size(), 1u);
  EXPECT_TRUE(p->constants[0].is_int64());
  EXPECT_EQ(p->constants[0].int64(), 7);
}

TEST(BytecodeCompilerTest, FoldTimeErrorVetoesTheFold) {
  // 1/0 errors at evaluation time in the tree-walker. Folding it at
  // compile time would move the error; the compiler must leave the
  // division in the program instead.
  auto p = Compile("da + 1 / 0");
  ASSERT_TRUE(p.has_value());
  bool has_div = false;
  for (const auto& ins : p->code) has_div |= ins.op == OpCode::kDivF64;
  EXPECT_TRUE(has_div) << p->ToString();
}

TEST(BytecodeCompilerTest, SharedSubexpressionCompilesOnce) {
  auto p = Compile("(da * db) + (da * db)");
  ASSERT_TRUE(p.has_value());
  size_t muls = 0;
  for (const auto& ins : p->code) muls += ins.op == OpCode::kMulF64;
  EXPECT_EQ(muls, 1u) << p->ToString();
  // Without CSE this is 2 loads + mul twice; with it, the add reads the
  // pinned mul slot for both operands.
  const Instruction& last = p->code.back();
  EXPECT_EQ(last.op, OpCode::kAddF64);
  EXPECT_EQ(last.a, last.b);
}

TEST(BytecodeCompilerTest, NearEqualLiteralsDoNotShareARegister) {
  // Regression (30k-sweep seeds 13278/19263): %.10g renders
  // 1.0000000000001 as "1", so a CSE key built from Expr::ToString()
  // conflated it with the integer literal 1 and rewired the second
  // occurrence onto the first one's register — the comparison then ran
  // against the wrong constant.
  const Table t = SmallTable();
  ExpectParity("((-1.0000000000001 * db) >= coalesce(-1, db, ib))", t);
  ExpectParity(
      "(ba = 1) OR (((ib / 1.0000000000001) >= ib) AND "
      "((ib / 1.0000000000001) <= ib))",
      t);
}

TEST(BytecodeCompilerTest, LiteralTypeCollisionKeepsCaseInt64) {
  // int64 0 and double 0.0 both print "0"; under a text-keyed CSE the
  // ELSE 0 inherited the double constant's register and type, promoting
  // the CASE to DOUBLE where the tree-walker stays INT64 (seed 21765).
  const std::string text = "CASE WHEN da >= 0.0 THEN ia ELSE 0 END";
  auto p = Compile(text);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->result_type, DataType::kInt64) << p->ToString();
  ExpectParity(text, SmallTable());
}

// --- Fallback boundary ----------------------------------------------------

TEST(BytecodeCompilerTest, DeclinesNonCompilableShapes) {
  EXPECT_FALSE(Compile("sa").has_value());              // string column
  EXPECT_FALSE(Compile("'x'").has_value());             // string literal
  EXPECT_FALSE(Compile("sa = 'x'").has_value());        // string compare
  EXPECT_FALSE(Compile("SUM(ia)").has_value());         // aggregate
  EXPECT_FALSE(Compile("frobnicate(da)").has_value());  // unknown function
  EXPECT_FALSE(Compile("nosuchcol + 1").has_value());   // unknown column
  EXPECT_FALSE(Compile("ia AND ba").has_value());       // type error
}

// --- §11 semantics parity -------------------------------------------------

TEST(BytecodeSemanticsTest, ArithmeticParity) {
  const Table t = SmallTable();
  ExpectParity("ia + ib", t);
  ExpectParity("da * db - ia", t);
  ExpectParity("da / db", t);
  ExpectParity("ia % ib", t);
  ExpectParity("-da", t);
  ExpectParity("-ia", t);
  ExpectParity("abs(ia)", t);
  ExpectParity("abs(da)", t);
  ExpectParity("ln(db)", t);       // negative db rows produce NaN
  ExpectParity("sqrt(da)", t);     // negative/-0.0 rows
  ExpectParity("pow(da, 2)", t);
}

TEST(BytecodeSemanticsTest, NaNComparisonClasses) {
  // The NaN row must land in the same truth bucket on both engines:
  // NaN > x and NaN >= x are TRUE, ==/</<= FALSE (three-way compare puts
  // NaN in the "greater" class).
  const Table t = SmallTable();
  for (const char* cmp : {"=", "<>", "<", "<=", ">", ">="}) {
    ExpectParity(std::string("da ") + cmp + " db", t);
    ExpectParity(std::string("da ") + cmp + " 0.0", t);
  }
}

TEST(BytecodeSemanticsTest, SignedZeroSurvivesBothEngines) {
  const Table t = SmallTable();
  // Row 1 has da = -0.0; the bit pattern must round-trip both engines
  // (ExpectParity compares raw bits, not ==).
  ExpectParity("da", t);
  ExpectParity("da * 1.0", t);
  ExpectParity("-da", t);
}

TEST(BytecodeSemanticsTest, CheckedInt64OverflowParity) {
  Table t{Schema({Field{"ia", DataType::kInt64, true}})};
  ASSERT_TRUE(t.AppendRow({Value::Int64(INT64_MAX)}).ok());
  auto expr = ParseExpr("ia + 1");
  ASSERT_NE(expr, nullptr);
  auto compiled = CompileExpr(*expr, t.schema());
  ASSERT_TRUE(compiled.has_value());
  Result<Column> tw = EvaluateExpr(*expr, t);
  BatchEvaluator eval;
  Result<Column> bc = eval.Run(*compiled, t);
  ASSERT_FALSE(tw.ok());
  ASSERT_FALSE(bc.ok());
  EXPECT_EQ(tw.status().ToString(), bc.status().ToString());
  EXPECT_NE(bc.status().ToString().find("integer overflow in arithmetic"),
            std::string::npos);
}

TEST(BytecodeSemanticsTest, Int64MinEdgeCasesParity) {
  Table t{Schema({Field{"ia", DataType::kInt64, true},
                  Field{"ib", DataType::kInt64, true}})};
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(INT64_MIN), Value::Int64(-1)}).ok());
  // INT64_MIN % -1 is defined as 0 (not a trap) on both engines.
  ExpectParity("ia % ib", t);
  // -INT64_MIN and abs(INT64_MIN) must error identically.
  for (const char* text : {"-ia", "abs(ia)"}) {
    auto expr = ParseExpr(text);
    ASSERT_NE(expr, nullptr);
    auto compiled = CompileExpr(*expr, t.schema());
    ASSERT_TRUE(compiled.has_value());
    Result<Column> tw = EvaluateExpr(*expr, t);
    BatchEvaluator eval;
    Result<Column> bc = eval.Run(*compiled, t);
    ASSERT_FALSE(tw.ok()) << text;
    ASSERT_FALSE(bc.ok()) << text;
    EXPECT_EQ(tw.status().ToString(), bc.status().ToString()) << text;
  }
}

TEST(BytecodeSemanticsTest, DivisionByZeroSkipsNullLanes) {
  // The divisor is NULL on one row and 0.0 on none; no error may fire
  // for the NULL lane's scratch contents.
  Table t{Schema({Field{"da", DataType::kDouble, true},
                  Field{"db", DataType::kDouble, true}})};
  ASSERT_TRUE(t.AppendRow({Value::Double(1.0), Value::Double(2.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Double(1.0), Value::Null()}).ok());
  ExpectParity("da / db", t);
  ExpectParity("da % db", t);
  // And a real 0.0 divisor on a non-NULL lane errors on both engines.
  ASSERT_TRUE(t.AppendRow({Value::Double(1.0), Value::Double(0.0)}).ok());
  auto expr = ParseExpr("da / db");
  auto compiled = CompileExpr(*expr, t.schema());
  ASSERT_TRUE(compiled.has_value());
  Result<Column> tw = EvaluateExpr(*expr, t);
  BatchEvaluator eval;
  Result<Column> bc = eval.Run(*compiled, t);
  ASSERT_FALSE(tw.ok());
  ASSERT_FALSE(bc.ok());
  EXPECT_EQ(tw.status().ToString(), bc.status().ToString());
}

TEST(BytecodeSemanticsTest, ThreeValuedLogicParity) {
  const Table t = SmallTable();
  ExpectParity("ba AND da > 0", t);
  ExpectParity("ba OR da > 0", t);
  ExpectParity("NOT ba", t);
  ExpectParity("(da > 0 AND db > 0) OR ba", t);
}

TEST(BytecodeSemanticsTest, CaseCoalesceNullifParity) {
  const Table t = SmallTable();
  ExpectParity("CASE WHEN da > 0 THEN ia ELSE ib END", t);
  ExpectParity("CASE WHEN da > 0 THEN 1 WHEN db > 0 THEN 2 END", t);
  ExpectParity("CASE WHEN ba THEN da ELSE ia END", t);  // mixed -> double
  ExpectParity("coalesce(da, db)", t);
  ExpectParity("coalesce(ia, ib)", t);
  ExpectParity("coalesce(da, ia, 0)", t);
  ExpectParity("nullif(ia, 1)", t);
  ExpectParity("nullif(da, db)", t);
}

TEST(BytecodeSemanticsTest, ComparisonHorizonAt2Pow53) {
  // 2^53 + 1 == 2^53 compares TRUE through double coercion on both
  // engines — the shared (documented) horizon, not a divergence.
  const Table t = SmallTable();
  ExpectParity("ia = ib", t);
  ExpectParity("ia = da", t);
}

// --- VM mechanics ---------------------------------------------------------

TEST(BytecodeVmTest, TinyBatchesCrossBoundariesCorrectly) {
  // batch_size 3 over 5 rows: 2 batches, the second partial. Results must
  // be identical to the default batch size and the tree-walker.
  const Table t = SmallTable();
  auto expr = ParseExpr("da * 2.0 + ia");
  ASSERT_NE(expr, nullptr);
  auto compiled = CompileExpr(*expr, t.schema());
  ASSERT_TRUE(compiled.has_value());
  BatchEvaluator tiny(3);
  Result<Column> small = tiny.Run(*compiled, t);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  Result<Column> tw = EvaluateExpr(*expr, t);
  ASSERT_TRUE(tw.ok());
  ASSERT_EQ(small->size(), tw->size());
  for (size_t i = 0; i < tw->size(); ++i) {
    ASSERT_EQ(small->IsNull(i), tw->IsNull(i)) << i;
    if (tw->IsNull(i)) continue;
    const double a = small->DoubleAt(i), b = tw->DoubleAt(i);
    if (std::isnan(b)) {
      EXPECT_TRUE(std::isnan(a)) << i;
    } else {
      EXPECT_EQ(a, b) << i;
    }
  }
}

TEST(BytecodeVmTest, ScratchReuseIsBitIdenticalAcrossRuns) {
  // One evaluator, many runs over different programs and tables: stale
  // scratch from run N must never leak into run N+1.
  const Table t = SmallTable();
  BatchEvaluator eval;
  auto run = [&](const std::string& text) {
    auto expr = ParseExpr(text);
    auto compiled = CompileExpr(*expr, t.schema());
    EXPECT_TRUE(compiled.has_value()) << text;
    Result<Column> c = eval.Run(*compiled, t);
    EXPECT_TRUE(c.ok()) << text;
    return std::move(c).value();
  };
  const Column first = run("da + db");
  run("coalesce(da, ia, -1)");  // different program dirties the slots
  run("ia - ib");  // (ia * ib would overflow on the 2^53 row)
  const Column again = run("da + db");
  ASSERT_EQ(first.size(), again.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first.IsNull(i), again.IsNull(i)) << i;
    if (first.IsNull(i)) continue;
    uint64_t ba, bb;
    const double a = first.DoubleAt(i), b = again.DoubleAt(i);
    std::memcpy(&ba, &a, 8);
    std::memcpy(&bb, &b, 8);
    EXPECT_EQ(ba, bb) << i;
  }
}

TEST(BytecodeVmTest, FilterMatchesTreewalkSelection) {
  const Table t = SmallTable();
  auto expr = ParseExpr("da > 0 AND ia < 100");
  ASSERT_NE(expr, nullptr);
  Result<std::vector<uint32_t>> tw = FilterRows(*expr, t);
  ASSERT_TRUE(tw.ok());
  SetGlobalExprEngine(ExprEngine::kBytecode);
  Result<std::vector<uint32_t>> bc = FilterRowsAuto(*expr, t);
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(*tw, *bc);
}

TEST(BytecodeVmTest, NonBooleanFilterDiagnosesLikeTreewalk) {
  const Table t = SmallTable();
  auto expr = ParseExpr("da + db");
  ASSERT_NE(expr, nullptr);
  Result<std::vector<uint32_t>> tw = FilterRows(*expr, t);
  SetGlobalExprEngine(ExprEngine::kBytecode);
  Result<std::vector<uint32_t>> bc = FilterRowsAuto(*expr, t);
  ASSERT_FALSE(tw.ok());
  ASSERT_FALSE(bc.ok());
  EXPECT_EQ(tw.status().ToString(), bc.status().ToString());
}

TEST(BytecodeVmTest, TreewalkToggleForcesFallback) {
  const Table t = SmallTable();
  auto expr = ParseExpr("da + 1.0");
  ASSERT_NE(expr, nullptr);
  SetGlobalExprEngine(ExprEngine::kTreewalk);
  std::string disasm = "unset";
  Result<Column> r = EvaluateExprAuto(*expr, t, &disasm);
  SetGlobalExprEngine(ExprEngine::kBytecode);
  ASSERT_TRUE(r.ok());
  // Forced treewalk never compiles, so the disassembly stays empty.
  EXPECT_EQ(disasm, "");
  std::string disasm2;
  Result<Column> r2 = EvaluateExprAuto(*expr, t, &disasm2);
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(disasm2.find("add.f64"), std::string::npos) << disasm2;
}

}  // namespace
}  // namespace laws

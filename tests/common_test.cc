#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"

namespace laws {
namespace {

// --- Status / Result ---------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table t");
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::Unimplemented("").code(),   Status::Internal("").code(),
      Status::IOError("").code(),         Status::ParseError("").code(),
      Status::TypeMismatch("").code(),    Status::NumericError("").code(),
      Status::Aborted("").code()};
  EXPECT_EQ(codes.size(), 11u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNumericError), "NumericError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  LAWS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoublePositive(21), 42);
  EXPECT_FALSE(DoublePositive(-1).ok());
  EXPECT_EQ(DoublePositive(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// --- Rng ----------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ZipfBounded) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Zipf(100, 1.2);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(RngTest, ZipfIsSkewedTowardSmallValues) {
  Rng rng(23);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.Zipf(1000, 1.5) == 1 ? 1 : 0;
  // Rank 1 should dominate under s=1.5.
  EXPECT_GT(ones, n / 4);
}

TEST(RngTest, PermutationIsBijective) {
  Rng rng(29);
  const auto perm = rng.Permutation(257);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

// --- string_util ----------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Join({}, "|"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "wher"));
  EXPECT_TRUE(StartsWith("power_law", "power"));
  EXPECT_FALSE(StartsWith("pow", "power"));
  EXPECT_TRUE(EndsWith("model.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "model.cc"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(11ull * 1024 * 1024), "11.0 MiB");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.6931471805599453, 4), "0.6931");
  EXPECT_EQ(FormatDouble(1e6, 3), "1e+06");
}

// --- bytes ------------------------------------------------------------

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.5);
  ByteReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetDouble(), 3.5);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  ByteReader r(w.data());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(r.GetString()->size(), 1000u);
}

TEST(BytesTest, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetU8().ok());
  EXPECT_FALSE(r.GetU64().ok());
  EXPECT_EQ(r.GetU64().status().code(), StatusCode::kParseError);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutU8('a');
  ByteReader r(w.data());
  EXPECT_FALSE(r.GetString().ok());
}

class VarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(VarintRoundTrip, Signed) {
  ByteWriter w;
  w.PutSignedVarint(GetParam());
  ByteReader r(w.data());
  EXPECT_EQ(*r.GetSignedVarint(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

TEST_P(VarintRoundTrip, UnsignedOfAbs) {
  const uint64_t v = static_cast<uint64_t>(GetParam());
  ByteWriter w;
  w.PutVarint(v);
  ByteReader r(w.data());
  EXPECT_EQ(*r.GetVarint(), v);
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, VarintRoundTrip,
    ::testing::Values(0, 1, -1, 127, 128, -128, 300, -300, 1'000'000,
                      -1'000'000, INT64_MAX, INT64_MIN, INT64_MAX - 1,
                      INT64_MIN + 1));

TEST(BytesTest, RandomVarintProperty) {
  Rng rng(31);
  ByteWriter w;
  std::vector<int64_t> values;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextU64());
    values.push_back(v);
    w.PutSignedVarint(v);
  }
  ByteReader r(w.data());
  for (int64_t expected : values) EXPECT_EQ(*r.GetSignedVarint(), expected);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, MalformedVarintTooLong) {
  // 11 continuation bytes exceed the 64-bit budget.
  std::vector<uint8_t> bad(11, 0xFF);
  ByteReader r(bad.data(), bad.size());
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(BytesTest, HugeLengthPrefixDoesNotWrap) {
  // A corrupt length prefix near UINT64_MAX must fail cleanly: the naive
  // bound `pos_ + n > size_` wraps around and would admit the read.
  for (uint64_t n : {UINT64_MAX, UINT64_MAX - 1, UINT64_MAX - 7,
                     UINT64_MAX - 63, uint64_t{1} << 63}) {
    ByteWriter w;
    w.PutVarint(n);
    w.PutRaw("payload", 7);
    ByteReader r(w.data());
    EXPECT_FALSE(r.GetString().ok()) << n;
  }
}

TEST(BytesTest, HugeRawReadDoesNotWrap) {
  std::vector<uint8_t> buf(16, 0xAB);
  ByteReader r(buf.data(), buf.size());
  ASSERT_TRUE(r.GetU64().ok());  // pos_ = 8, so pos_ + SIZE_MAX wraps
  std::vector<uint8_t> out(32);
  EXPECT_FALSE(r.GetRaw(out.data(), SIZE_MAX).ok());
  EXPECT_FALSE(r.GetRaw(out.data(), SIZE_MAX - 4).ok());
  EXPECT_TRUE(r.GetRaw(out.data(), 8).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.GetU8().ok());
}

TEST(BytesTest, GetCountRejectsImplausibleCounts) {
  // 1000 claimed 8-byte elements against a 7-byte remainder.
  ByteWriter w;
  w.PutVarint(1000);
  w.PutRaw("1234567", 7);
  {
    ByteReader r(w.data());
    auto n = r.GetCount(8, "elems");
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), StatusCode::kParseError);
    EXPECT_NE(n.status().message().find("elems"), std::string::npos);
  }
  // The same count is fine when each element may be a single byte... but
  // not with only 7 bytes left; 7 elements pass.
  {
    ByteReader r(w.data());
    EXPECT_FALSE(r.GetCount(1, "elems").ok());
  }
  ByteWriter w2;
  w2.PutVarint(7);
  w2.PutRaw("1234567", 7);
  ByteReader r2(w2.data());
  auto n2 = r2.GetCount(1, "elems");
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 7u);
}

TEST(BytesTest, CheckAvailableGuardsOverflow) {
  std::vector<uint8_t> buf(64);
  ByteReader r(buf.data(), buf.size());
  EXPECT_TRUE(r.CheckAvailable(8, 8, "x").ok());
  EXPECT_FALSE(r.CheckAvailable(9, 8, "x").ok());
  // count * elem_bytes would overflow 64 bits; the division form must not.
  EXPECT_FALSE(r.CheckAvailable(UINT64_MAX / 2, 8, "x").ok());
  EXPECT_FALSE(r.CheckAvailable(UINT64_MAX, UINT64_MAX, "x").ok());
  EXPECT_TRUE(r.CheckAvailable(64, 1, "x").ok());
  EXPECT_TRUE(r.CheckAvailable(0, 0, "x").ok());
}

// --- Metrics -----------------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAndResets) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name returns the same (stable) pointer.
  EXPECT_EQ(reg.GetCounter("test.counter"), c);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsTest, HistogramSummaryStatsAreExact) {
  MetricsRegistry reg;
  MetricHistogram* h = reg.GetHistogram("test.hist");
  EXPECT_EQ(h->count(), 0u);
  for (double v : {1.0, 2.0, 3.0, 10.0}) h->Record(v);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 16.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 10.0);
  EXPECT_DOUBLE_EQ(h->Mean(), 4.0);
}

TEST(MetricsTest, HistogramQuantileIsWithinBucketResolution) {
  MetricsRegistry reg;
  MetricHistogram* h = reg.GetHistogram("test.q");
  for (int i = 0; i < 100; ++i) h->Record(100.0);
  h->Record(100000.0);
  // p50 sits in the bucket holding 100; the log2 midpoint is within 2x.
  const double p50 = h->Quantile(0.5);
  EXPECT_GE(p50, 50.0);
  EXPECT_LE(p50, 200.0);
  // Quantiles are clamped into [min, max].
  EXPECT_GE(h->Quantile(0.0), 100.0);
  EXPECT_LE(h->Quantile(1.0), 100000.0);
}

TEST(MetricsTest, SamplesSkipZeroEntriesAndSortByName) {
  MetricsRegistry reg;
  reg.GetCounter("b.nonzero")->Add(2);
  reg.GetCounter("a.zero");  // never incremented -> omitted
  reg.GetCounter("a.nonzero")->Add(1);
  auto counters = reg.CounterSamples();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "a.nonzero");
  EXPECT_EQ(counters[1].name, "b.nonzero");
  reg.GetHistogram("empty.hist");  // empty -> omitted
  reg.GetHistogram("h")->Record(5.0);
  auto hists = reg.HistogramSamples();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].name, "h");
  EXPECT_EQ(hists[0].count, 1u);
}

TEST(MetricsTest, RenderAndJsonListNonZeroMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("query.executed")->Add(3);
  reg.GetHistogram("lat.micros")->Record(42.0);
  const std::string text = reg.Render();
  EXPECT_NE(text.find("query.executed"), std::string::npos);
  EXPECT_NE(text.find("lat.micros"), std::string::npos);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counter.query.executed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"histogram.lat.micros.count\": 1"),
            std::string::npos);
}

// --- Trace -------------------------------------------------------------

TEST(TraceTest, SpansRecordIntoThreadLocalSink) {
  TraceSink sink;
  {
    ScopedSpan outer("Outer");
    outer.SetRows(100, 10);
    {
      ScopedSpan inner("Inner");
      inner.SetDetail("x > 1");
    }
  }
  ASSERT_EQ(sink.spans().size(), 2u);
  const SpanRecord& outer = sink.spans()[0];
  const SpanRecord& inner = sink.spans()[1];
  EXPECT_STREQ(outer.name, "Outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_TRUE(outer.has_rows);
  EXPECT_EQ(outer.rows_in, 100u);
  EXPECT_EQ(outer.rows_out, 10u);
  EXPECT_STREQ(inner.name, "Inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.detail, "x > 1");
  // The outer span covers the inner one.
  EXPECT_GE(outer.micros, inner.micros);
}

TEST(TraceTest, EndIsIdempotentAndStopsUpdates) {
  TraceSink sink;
  ScopedSpan span("Phase");
  span.SetRows(1, 1);
  span.End();
  span.SetRows(99, 99);  // no-op after End
  span.End();            // double End is a no-op
  ASSERT_EQ(sink.spans().size(), 1u);
  EXPECT_EQ(sink.spans()[0].rows_in, 1u);
}

TEST(TraceTest, SinkStackRestoresPreviousSink) {
  EXPECT_EQ(TraceSink::Current(), nullptr);
  {
    TraceSink outer_sink;
    EXPECT_EQ(TraceSink::Current(), &outer_sink);
    {
      TraceSink inner_sink;
      EXPECT_EQ(TraceSink::Current(), &inner_sink);
      ScopedSpan span("OnlyInner");
      span.End();
      EXPECT_EQ(inner_sink.spans().size(), 1u);
      EXPECT_EQ(outer_sink.spans().size(), 0u);
    }
    EXPECT_EQ(TraceSink::Current(), &outer_sink);
  }
  EXPECT_EQ(TraceSink::Current(), nullptr);
}

TEST(TraceTest, InactiveSpanIsANoOp) {
  ASSERT_EQ(TraceSink::Current(), nullptr);
  ASSERT_FALSE(TraceEnabled());
  ScopedSpan span("Idle");
  EXPECT_FALSE(span.active());
  span.SetRows(1, 1);  // must not crash
  span.End();
}

TEST(TraceTest, TraceGateFeedsSpanHistograms) {
  // The global gate routes span durations into span.<name>.micros.
  MetricsRegistry& reg = MetricsRegistry::Global();
  MetricHistogram* h = reg.GetHistogram("span.GatedPhase.micros");
  const uint64_t before = h->count();
  SetTraceEnabled(true);
  { ScopedSpan span("GatedPhase"); }
  SetTraceEnabled(false);
  EXPECT_EQ(h->count(), before + 1);
  { ScopedSpan span("GatedPhase"); }  // gate off, no sink -> not recorded
  EXPECT_EQ(h->count(), before + 1);
}

TEST(TraceTest, RenderShowsTreeRowsAndDetail) {
  TraceSink sink;
  {
    ScopedSpan outer("Query");
    ScopedSpan inner("Filter");
    inner.SetDetail("(x > 1)");
    inner.SetRows(10, 3);
  }
  const std::string text = sink.Render();
  EXPECT_NE(text.find("Query"), std::string::npos);
  EXPECT_NE(text.find("  Filter((x > 1))  rows=10->3"), std::string::npos);
  EXPECT_NE(text.find("time="), std::string::npos);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMicros(), t.ElapsedMillis());
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace laws

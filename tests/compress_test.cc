#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "compress/column_compressor.h"
#include "compress/encoding.h"
#include "compress/semantic.h"
#include "model/grouped_fit.h"
#include "model/model.h"

namespace laws {
namespace {

// --- Block encoders ------------------------------------------------------

TEST(RleTest, RoundTripRuns) {
  const std::vector<int64_t> v = {5, 5, 5, 5, -1, -1, 7, 7, 7, 7, 7, 7};
  ByteWriter w;
  RleEncodeInt64(v, &w);
  ByteReader r(w.data());
  EXPECT_EQ(*RleDecodeInt64(&r), v);
}

TEST(RleTest, CompressesConstantRuns) {
  const std::vector<int64_t> v(10000, 42);
  ByteWriter w;
  RleEncodeInt64(v, &w);
  EXPECT_LT(w.size(), 32u);
}

TEST(RleTest, EmptyInput) {
  ByteWriter w;
  RleEncodeInt64({}, &w);
  ByteReader r(w.data());
  EXPECT_TRUE(RleDecodeInt64(&r)->empty());
}

TEST(DeltaVarintTest, RoundTripSortedAndRandom) {
  Rng rng(1);
  std::vector<int64_t> sorted;
  int64_t acc = 0;
  for (int i = 0; i < 5000; ++i) {
    acc += rng.UniformInt(0, 10);
    sorted.push_back(acc);
  }
  ByteWriter w;
  DeltaVarintEncodeInt64(sorted, &w);
  // Sorted small-delta data: ~1 byte per value.
  EXPECT_LT(w.size(), sorted.size() * 2);
  ByteReader r(w.data());
  EXPECT_EQ(*DeltaVarintDecodeInt64(&r), sorted);
}

TEST(DeltaVarintTest, ExtremesSafe) {
  const std::vector<int64_t> v = {INT64_MIN, INT64_MAX, 0, -1, INT64_MIN,
                                  INT64_MAX};
  ByteWriter w;
  DeltaVarintEncodeInt64(v, &w);
  ByteReader r(w.data());
  EXPECT_EQ(*DeltaVarintDecodeInt64(&r), v);
}

TEST(BitPackTest, RoundTripSmallRange) {
  Rng rng(2);
  std::vector<int64_t> v;
  for (int i = 0; i < 3000; ++i) v.push_back(rng.UniformInt(100, 115));
  ByteWriter w;
  BitPackEncodeInt64(v, &w);
  // Range 16 -> 4 bits/value.
  EXPECT_LT(w.size(), v.size());
  ByteReader r(w.data());
  EXPECT_EQ(*BitPackDecodeInt64(&r), v);
}

TEST(BitPackTest, ConstantColumnIsTiny) {
  const std::vector<int64_t> v(100000, -7);
  ByteWriter w;
  BitPackEncodeInt64(v, &w);
  EXPECT_LT(w.size(), 16u);
  ByteReader r(w.data());
  EXPECT_EQ(*BitPackDecodeInt64(&r), v);
}

TEST(BitPackTest, WideRangeFallsBackToRaw) {
  const std::vector<int64_t> v = {INT64_MIN, 0, INT64_MAX};
  ByteWriter w;
  BitPackEncodeInt64(v, &w);
  ByteReader r(w.data());
  EXPECT_EQ(*BitPackDecodeInt64(&r), v);
}

class BitPackWidths : public ::testing::TestWithParam<int> {};

TEST_P(BitPackWidths, EveryWidthRoundTrips) {
  const int width = GetParam();
  Rng rng(100 + width);
  const int64_t hi = width >= 63 ? INT64_MAX
                                 : (int64_t{1} << width) - 1;
  std::vector<int64_t> v;
  for (int i = 0; i < 257; ++i) v.push_back(rng.UniformInt(0, hi));
  v.push_back(0);
  v.push_back(hi);
  ByteWriter w;
  BitPackEncodeInt64(v, &w);
  ByteReader r(w.data());
  EXPECT_EQ(*BitPackDecodeInt64(&r), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitPackWidths,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 15, 16, 31, 33,
                                           47, 55, 56, 57, 63));

TEST(ByteShuffleTest, RoundTrip) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.Normal(100.0, 1.0));
  ByteWriter w;
  ByteShuffleEncodeDouble(v, &w);
  ByteReader r(w.data());
  EXPECT_EQ(*ByteShuffleDecodeDouble(&r), v);
}

TEST(ZlibTest, RoundTripAndCompressesRedundancy) {
  std::string text;
  for (int i = 0; i < 1000; ++i) text += "the quick brown fox ";
  auto z = ZlibCompress(reinterpret_cast<const uint8_t*>(text.data()),
                        text.size());
  ASSERT_TRUE(z.ok());
  EXPECT_LT(z->size(), text.size() / 10);
  auto back = ZlibDecompress(*z);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::string(back->begin(), back->end()), text);
}

TEST(ZlibTest, RejectsCorruptBlob) {
  std::vector<uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(ZlibDecompress(junk).ok());
  std::vector<uint8_t> bad(32, 0xAB);
  EXPECT_FALSE(ZlibDecompress(bad).ok());
}

// --- Column compressor -------------------------------------------------

Column SequentialInt64(size_t n) {
  Column c(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) c.AppendInt64(static_cast<int64_t>(i));
  return c;
}

TEST(ColumnCompressorTest, AutoPicksCompactEncodingForSequentialInts) {
  Column c = SequentialInt64(10000);
  auto cc = CompressColumn(c, ColumnEncoding::kAuto);
  ASSERT_TRUE(cc.ok());
  EXPECT_LT(cc->compressed_bytes(), c.MemoryBytes() / 3);
  auto back = DecompressColumn(*cc, Field{"x", DataType::kInt64, false});
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back->Int64At(i), c.Int64At(i));
  }
}

class EncodingRoundTrip : public ::testing::TestWithParam<ColumnEncoding> {};

TEST_P(EncodingRoundTrip, Int64WithNulls) {
  Rng rng(7);
  Column c(DataType::kInt64);
  for (int i = 0; i < 500; ++i) {
    if (rng.Bernoulli(0.1)) {
      ASSERT_TRUE(c.AppendNull().ok());
    } else {
      c.AppendInt64(rng.UniformInt(-50, 50));
    }
  }
  auto cc = CompressColumn(c, GetParam());
  ASSERT_TRUE(cc.ok()) << cc.status().ToString();
  auto back = DecompressColumn(*cc, Field{"x", DataType::kInt64, true});
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back->GetValue(i), c.GetValue(i)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Int64Encodings, EncodingRoundTrip,
                         ::testing::Values(ColumnEncoding::kPlain,
                                           ColumnEncoding::kRle,
                                           ColumnEncoding::kDeltaVarint,
                                           ColumnEncoding::kBitPack,
                                           ColumnEncoding::kZlib,
                                           ColumnEncoding::kAuto));

TEST(ColumnCompressorTest, DoubleShuffleZlibRoundTrip) {
  Rng rng(8);
  Column c(DataType::kDouble);
  for (int i = 0; i < 2000; ++i) c.AppendDouble(rng.Normal(5.0, 0.001));
  for (ColumnEncoding e : {ColumnEncoding::kPlain,
                           ColumnEncoding::kShuffleZlib,
                           ColumnEncoding::kZlib, ColumnEncoding::kAuto}) {
    auto cc = CompressColumn(c, e);
    ASSERT_TRUE(cc.ok());
    auto back = DecompressColumn(*cc, Field{"x", DataType::kDouble, false});
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(back->DoubleAt(i), c.DoubleAt(i));
    }
  }
}

TEST(ColumnCompressorTest, StringColumnRoundTrip) {
  Column c(DataType::kString);
  const char* tags[] = {"red", "green", "blue"};
  for (int i = 0; i < 1000; ++i) c.AppendString(tags[i % 3]);
  auto cc = CompressColumn(c, ColumnEncoding::kAuto);
  ASSERT_TRUE(cc.ok());
  EXPECT_LT(cc->compressed_bytes(), c.MemoryBytes());
  auto back = DecompressColumn(*cc, Field{"x", DataType::kString, false});
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back->StringAt(i), c.StringAt(i));
  }
}

TEST(ColumnCompressorTest, BoolColumnRoundTrip) {
  Rng rng(9);
  Column c(DataType::kBool);
  for (int i = 0; i < 300; ++i) c.AppendBool(rng.Bernoulli(0.5));
  auto cc = CompressColumn(c, ColumnEncoding::kAuto);
  ASSERT_TRUE(cc.ok());
  auto back = DecompressColumn(*cc, Field{"x", DataType::kBool, false});
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back->BoolAt(i), c.BoolAt(i));
  }
}

TEST(ColumnCompressorTest, InapplicableEncodingErrors) {
  Column dbl(DataType::kDouble);
  dbl.AppendDouble(1.0);
  EXPECT_FALSE(CompressColumn(dbl, ColumnEncoding::kRle).ok());
  EXPECT_FALSE(CompressColumn(dbl, ColumnEncoding::kDeltaVarint).ok());
  Column b(DataType::kBool);
  b.AppendBool(true);
  EXPECT_FALSE(CompressColumn(b, ColumnEncoding::kBitPack).ok());
}

TEST(ColumnCompressorTest, Int64ShuffleZlibRoundTrip) {
  // XOR-delta-like payloads: low bytes random, high bytes zero.
  Rng rng(21);
  Column c(DataType::kInt64);
  for (int i = 0; i < 4000; ++i) {
    c.AppendInt64(static_cast<int64_t>(rng.NextU64() & 0xFFFFFF));
  }
  auto cc = CompressColumn(c, ColumnEncoding::kShuffleZlib);
  ASSERT_TRUE(cc.ok());
  EXPECT_LT(cc->compressed_bytes(), c.MemoryBytes() / 2);
  auto back = DecompressColumn(*cc, Field{"x", DataType::kInt64, false});
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back->Int64At(i), c.Int64At(i));
  }
}

TEST(CompressedTableTest, FullTableRoundTripAndRatio) {
  Rng rng(10);
  Table t(Schema({Field{"k", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"tag", DataType::kString, false}}));
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(i / 100),
                             Value::Double(rng.Normal()),
                             Value::String(i % 2 == 0 ? "even" : "odd")})
                    .ok());
  }
  auto ct = CompressTable(t);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->num_rows, 5000u);
  EXPECT_LT(ct->CompressionRatio(), 1.0);
  EXPECT_GT(ct->TotalCompressedBytes(), 0u);
  auto back = DecompressTable(*ct);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); r += 97) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(back->GetValue(r, c), t.GetValue(r, c));
    }
  }
}

// --- Semantic compression -----------------------------------------------

/// Builds a power-law grouped table y = p_g * x^a_g with noise, fits it,
/// and returns everything needed for semantic compression.
struct SemanticFixture {
  Table table{Schema{}};
  PowerLawModel model;
  GroupedFitSpec spec;
  GroupedFitOutput fits;
};

SemanticFixture MakeSemanticFixture(double noise_sd, uint64_t seed = 11) {
  SemanticFixture f;
  Rng rng(seed);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int g = 1; g <= 20; ++g) {
    const double p = rng.Uniform(0.5, 2.0);
    const double a = rng.Uniform(-1.2, -0.4);
    for (int i = 0; i < 50; ++i) {
      const double x = rng.Uniform(0.1, 0.2);
      const double y =
          p * std::pow(x, a) * std::exp(rng.Normal(0.0, noise_sd));
      EXPECT_TRUE(t.AppendRow({Value::Int64(g), Value::Double(x),
                               Value::Double(y)})
                      .ok());
    }
  }
  f.table = std::move(t);
  f.spec.group_column = "g";
  f.spec.input_columns = {"x"};
  f.spec.output_column = "y";
  auto fits = FitGrouped(f.model, f.table, f.spec);
  EXPECT_TRUE(fits.ok());
  f.fits = std::move(*fits);
  return f;
}

TEST(SemanticCompressTest, LosslessRoundTripIsBitExact) {
  SemanticFixture f = MakeSemanticFixture(0.05);
  auto sc = SemanticCompress(f.table, f.model, f.fits, f.spec);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();
  auto back = SemanticDecompress(*sc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), f.table.num_rows());
  const Column& y0 = *f.table.ColumnByName("y").value();
  const Column& y1 = *back->ColumnByName("y").value();
  for (size_t i = 0; i < y0.size(); ++i) {
    EXPECT_EQ(y1.DoubleAt(i), y0.DoubleAt(i)) << i;  // bit-exact
  }
  const Column& g0 = *f.table.ColumnByName("g").value();
  const Column& g1 = *back->ColumnByName("g").value();
  for (size_t i = 0; i < g0.size(); ++i) {
    EXPECT_EQ(g1.Int64At(i), g0.Int64At(i));
  }
}

TEST(SemanticCompressTest, LossyBoundsAbsoluteError) {
  SemanticFixture f = MakeSemanticFixture(0.05, 13);
  SemanticCompressionOptions opts;
  opts.lossless = false;
  opts.quantization_step = 1e-3;
  auto sc = SemanticCompress(f.table, f.model, f.fits, f.spec, opts);
  ASSERT_TRUE(sc.ok());
  auto back = SemanticDecompress(*sc);
  ASSERT_TRUE(back.ok());
  const Column& y0 = *f.table.ColumnByName("y").value();
  const Column& y1 = *back->ColumnByName("y").value();
  double max_err = 0.0;
  for (size_t i = 0; i < y0.size(); ++i) {
    max_err = std::max(max_err, std::fabs(y1.DoubleAt(i) - y0.DoubleAt(i)));
  }
  EXPECT_LE(max_err, opts.quantization_step / 2 + 1e-12);
}

TEST(SemanticCompressTest, LossyBeatsLosslessOnSize) {
  SemanticFixture f = MakeSemanticFixture(0.05, 17);
  auto lossless = SemanticCompress(f.table, f.model, f.fits, f.spec);
  SemanticCompressionOptions opts;
  opts.lossless = false;
  opts.quantization_step = 1e-2;
  auto lossy = SemanticCompress(f.table, f.model, f.fits, f.spec, opts);
  ASSERT_TRUE(lossless.ok());
  ASSERT_TRUE(lossy.ok());
  EXPECT_LT(lossy->residual_column.compressed_bytes(),
            lossless->residual_column.compressed_bytes());
}

TEST(SemanticCompressTest, GoodModelShrinksResiduals) {
  // With a near-perfect model, quantized residuals are near zero and the
  // output column compresses far below its raw size.
  SemanticFixture f = MakeSemanticFixture(0.001, 19);
  SemanticCompressionOptions opts;
  opts.lossless = false;
  opts.quantization_step = 1e-3;
  auto sc = SemanticCompress(f.table, f.model, f.fits, f.spec, opts);
  ASSERT_TRUE(sc.ok());
  const size_t raw_output_bytes = f.table.num_rows() * sizeof(double);
  EXPECT_LT(sc->residual_column.compressed_bytes(), raw_output_bytes / 4);
}

TEST(SemanticCompressTest, LossyRequiresPositiveStep) {
  SemanticFixture f = MakeSemanticFixture(0.05, 23);
  SemanticCompressionOptions opts;
  opts.lossless = false;
  opts.quantization_step = 0.0;
  EXPECT_FALSE(SemanticCompress(f.table, f.model, f.fits, f.spec, opts).ok());
}

TEST(SemanticCompressTest, UnfittedGroupsStillRoundTrip) {
  SemanticFixture f = MakeSemanticFixture(0.05, 29);
  // Drop half the fitted groups to simulate skipped/failed fits.
  f.fits.groups.resize(f.fits.groups.size() / 2);
  auto sc = SemanticCompress(f.table, f.model, f.fits, f.spec);
  ASSERT_TRUE(sc.ok());
  auto back = SemanticDecompress(*sc);
  ASSERT_TRUE(back.ok());
  const Column& y0 = *f.table.ColumnByName("y").value();
  const Column& y1 = *back->ColumnByName("y").value();
  for (size_t i = 0; i < y0.size(); ++i) {
    EXPECT_EQ(y1.DoubleAt(i), y0.DoubleAt(i));
  }
}

TEST(SemanticCompressTest, RecompressWithBetterModelShrinksBlob) {
  // Compress power-law data against a (wrong) global-linear fit, then
  // recompress against the right power-law fit: the residuals collapse.
  SemanticFixture f = MakeSemanticFixture(0.01, 37);
  LinearModel wrong(1);
  auto wrong_fits = FitGrouped(wrong, f.table, f.spec);
  ASSERT_TRUE(wrong_fits.ok());
  auto blob_wrong = SemanticCompress(f.table, wrong, *wrong_fits, f.spec);
  ASSERT_TRUE(blob_wrong.ok());

  auto blob_right =
      SemanticRecompress(*blob_wrong, f.model, f.fits, f.spec);
  ASSERT_TRUE(blob_right.ok()) << blob_right.status().ToString();
  // Still bit-exact after the round trip through the old blob.
  auto restored = SemanticDecompress(*blob_right);
  ASSERT_TRUE(restored.ok());
  const Column& y0 = *f.table.ColumnByName("y").value();
  const Column& y1 = *restored->ColumnByName("y").value();
  for (size_t i = 0; i < y0.size(); i += 17) {
    EXPECT_EQ(y1.DoubleAt(i), y0.DoubleAt(i));
  }
  // And the better model compresses the residual column harder.
  EXPECT_LT(blob_right->residual_column.compressed_bytes(),
            blob_wrong->residual_column.compressed_bytes());
}

TEST(SemanticCompressTest, RecompressRefusesLossyInput) {
  SemanticFixture f = MakeSemanticFixture(0.05, 41);
  SemanticCompressionOptions lossy;
  lossy.lossless = false;
  lossy.quantization_step = 1e-3;
  auto blob = SemanticCompress(f.table, f.model, f.fits, f.spec, lossy);
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(SemanticRecompress(*blob, f.model, f.fits, f.spec).ok());
}

TEST(SemanticCompressTest, RejectsNonDoubleOutput) {
  SemanticFixture f = MakeSemanticFixture(0.05, 31);
  GroupedFitSpec bad = f.spec;
  bad.output_column = "g";  // INT64
  EXPECT_FALSE(SemanticCompress(f.table, f.model, f.fits, bad).ok());
}

}  // namespace
}  // namespace laws

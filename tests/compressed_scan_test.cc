#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "compress/block_store.h"
#include "query/compressed_scan.h"
#include "query/executor.h"
#include "query/expr_eval.h"
#include "query/parser.h"
#include "storage/catalog.h"

namespace laws {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Pins the scan block size for a test and restores it afterwards, so the
/// fixed small tables here span several blocks.
class BlockRowsGuard {
 public:
  explicit BlockRowsGuard(size_t rows) : prev_(ScanBlockRows()) {
    SetScanBlockRows(rows);
  }
  ~BlockRowsGuard() { SetScanBlockRows(prev_); }

 private:
  size_t prev_;
};

std::unique_ptr<Expr> ParsePred(const std::string& where) {
  auto stmt = ParseSelect("SELECT 1 FROM t WHERE " + where);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return std::move(stmt->where);
}

/// Runs `where` through the compressed tier and asserts the selection is
/// identical to the reference tree-walk FilterRows. Returns the stats for
/// pruning assertions; fails the test if the compressed tier declined.
ScanStats ExpectCompressedMatches(const TablePtr& table,
                                  const std::string& where) {
  EnsureBlockIndex(table);
  auto pred = ParsePred(where);
  ScanStats stats;
  auto compressed = CompressedFilterRows(*pred, *table, &stats);
  EXPECT_TRUE(compressed.has_value()) << where << " declined";
  auto reference = FilterRows(*pred, *table);
  EXPECT_TRUE(reference.ok()) << reference.status().ToString();
  if (compressed.has_value() && reference.ok()) {
    EXPECT_EQ(*compressed, *reference) << where;
  }
  return stats;
}

TablePtr MakeDoubleTable(const std::vector<Value>& values) {
  auto t = std::make_shared<Table>(
      Schema({Field{"da", DataType::kDouble, true}}));
  for (const Value& v : values) {
    EXPECT_TRUE(t->AppendRow({v}).ok());
  }
  return t;
}

TEST(CompressedScanTest, PrunesBlocksOutsideThePredicateRange) {
  BlockRowsGuard guard(4);
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false}}));
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(i)}).ok());
  }
  const ScanStats stats = ExpectCompressedMatches(t, "ia >= 13");
  EXPECT_EQ(stats.blocks_total, 4u);
  // Blocks [0,4), [4,8), [8,12) prune; [12,16) is SOME (13..15 of 12..15).
  EXPECT_EQ(stats.blocks_pruned, 3u);
}

TEST(CompressedScanTest, PredicateExactlyAtBlockMinAndMax) {
  BlockRowsGuard guard(4);
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false}}));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(i)}).ok());
  }
  // Block 0 holds 0..3, block 1 holds 4..7. Each predicate sits exactly
  // on a zone boundary; off-by-one pruning would drop the boundary row.
  ExpectCompressedMatches(t, "ia = 3");   // block-0 max
  ExpectCompressedMatches(t, "ia = 4");   // block-1 min
  ExpectCompressedMatches(t, "ia >= 7");  // global max
  ExpectCompressedMatches(t, "ia <= 0");  // global min
  ExpectCompressedMatches(t, "ia > 3");
  ExpectCompressedMatches(t, "ia < 4");
}

TEST(CompressedScanTest, AllNullBlocksNeverMatchButCountNulls) {
  BlockRowsGuard guard(2);
  auto t = MakeDoubleTable({Value::Null(), Value::Null(), Value::Null(),
                            Value::Null(), Value::Double(1.0),
                            Value::Double(2.0)});
  const ScanStats stats = ExpectCompressedMatches(t, "da >= 0.0");
  // The two all-NULL blocks can only produce NULL: both prune.
  EXPECT_EQ(stats.blocks_total, 3u);
  EXPECT_GE(stats.blocks_pruned, 2u);
  // NOT over NULL stays NULL, so all-NULL blocks prune here too.
  ExpectCompressedMatches(t, "NOT (da >= 0.0)");
}

TEST(CompressedScanTest, AllNaNBlocksFollowComparisonSemantics) {
  BlockRowsGuard guard(2);
  auto t = MakeDoubleTable({Value::Double(kNaN), Value::Double(kNaN),
                            Value::Double(1.0), Value::Double(2.0)});
  // NaN lands in the "greater" slot of the three-way compare: it
  // satisfies != / > / >= and fails = / < / <= (DESIGN.md §11).
  ExpectCompressedMatches(t, "da > 100.0");
  ExpectCompressedMatches(t, "da != 1.0");
  ExpectCompressedMatches(t, "da = 1.0");
  const ScanStats stats = ExpectCompressedMatches(t, "da < 0.5");
  // The all-NaN block can only produce FALSE for `<`: pruned.
  EXPECT_GE(stats.blocks_pruned, 1u);
}

TEST(CompressedScanTest, SignedZeroStraddlingBlockBoundary) {
  BlockRowsGuard guard(2);
  // -0.0 and +0.0 compare equal, so either sign is a valid zone
  // endpoint; block 0 is all -0.0, block 1 mixes signs.
  auto t = MakeDoubleTable({Value::Double(-0.0), Value::Double(-0.0),
                            Value::Double(0.0), Value::Double(-0.0),
                            Value::Double(1.0), Value::Double(2.0)});
  ExpectCompressedMatches(t, "da = 0.0");
  ExpectCompressedMatches(t, "da <= 0.0");
  ExpectCompressedMatches(t, "da < 0.0");   // nothing: -0.0 < 0.0 is false
  ExpectCompressedMatches(t, "da >= 0.0");
  ExpectCompressedMatches(t, "da = -0.0");  // same as = 0.0
}

TEST(CompressedScanTest, EmptyTableYieldsEmptySelection) {
  BlockRowsGuard guard(4);
  auto t = MakeDoubleTable({});
  EnsureBlockIndex(t);
  auto pred = ParsePred("da > 1.0");
  ScanStats stats;
  auto compressed = CompressedFilterRows(*pred, *t, &stats);
  ASSERT_TRUE(compressed.has_value());
  EXPECT_TRUE(compressed->empty());
  EXPECT_EQ(stats.blocks_total, 0u);
}

TEST(CompressedScanTest, ShortTailBlockIsCoveredExactly) {
  BlockRowsGuard guard(4);
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false}}));
  for (int i = 0; i < 10; ++i) {  // 4 + 4 + 2: tail block is short
    ASSERT_TRUE(t->AppendRow({Value::Int64(i % 3)}).ok());
  }
  const ScanStats stats = ExpectCompressedMatches(t, "ia <= 2");
  EXPECT_EQ(stats.blocks_total, 3u);
  // Every value satisfies the predicate: whole-block takes, tail included.
  EXPECT_EQ(stats.blocks_taken, 3u);
}

TEST(CompressedScanTest, RunAwareFilteringMatchesRowEvaluation) {
  BlockRowsGuard guard(8);
  auto t = std::make_shared<Table>(
      Schema({Field{"seg", DataType::kInt64, false},
              Field{"flag", DataType::kBool, true}}));
  for (int i = 0; i < 64; ++i) {
    // seg runs in strides of 4, flag in strides of 6: both columns keep
    // RLE runs inside every 8-row block, but the run boundaries are
    // misaligned, so the merged-run walk has to split segments. Every
    // block mixes values, so blocks are SOME (not constant-take/prune).
    const int g = i / 6;
    ASSERT_TRUE(t->AppendRow({Value::Int64((i / 4) % 3),
                              g % 4 == 0 ? Value::Null()
                                         : Value::Bool(g % 2 == 0)})
                    .ok());
  }
  const ScanStats stats = ExpectCompressedMatches(t, "seg = 2");
  EXPECT_GT(stats.rows_run_skipped, 0u);
  ExpectCompressedMatches(t, "seg >= 1 AND seg < 3");
  ExpectCompressedMatches(t, "seg = 1 OR flag");
  ExpectCompressedMatches(t, "NOT (seg = 1) AND flag");
}

TEST(CompressedScanTest, DeclinesShapesOutsideTheConservativeClass) {
  BlockRowsGuard guard(4);
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false},
              Field{"s", DataType::kString, false}}));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        t->AppendRow({Value::Int64(i), Value::String(i % 2 ? "a" : "b")})
            .ok());
  }
  EnsureBlockIndex(t);
  ScanStats stats;
  // Arithmetic over a column, string comparisons and string columns all
  // decline — the decode path keeps its error/evaluation behavior.
  EXPECT_FALSE(
      CompressedFilterRows(*ParsePred("ia + 1 > 3"), *t, &stats).has_value());
  EXPECT_FALSE(
      CompressedFilterRows(*ParsePred("s = 'a'"), *t, &stats).has_value());
  EXPECT_FALSE(
      CompressedFilterRows(*ParsePred("s = 3"), *t, &stats).has_value());
}

TEST(CompressedScanTest, DeclinesWithoutARegisteredIndex) {
  BlockRowsGuard guard(4);
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false}}));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(i)}).ok());
  }
  ScanStats stats;
  EXPECT_FALSE(
      CompressedFilterRows(*ParsePred("ia > 3"), *t, &stats).has_value());
  // After registration it engages; after mutation the index is stale and
  // it declines again until re-registered.
  EnsureBlockIndex(t);
  EXPECT_TRUE(
      CompressedFilterRows(*ParsePred("ia > 3"), *t, &stats).has_value());
  ASSERT_TRUE(t->AppendRow({Value::Int64(99)}).ok());
  EXPECT_FALSE(
      CompressedFilterRows(*ParsePred("ia > 3"), *t, &stats).has_value());
}

TEST(CompressedScanTest, NullLiteralComparisonSelectsNothing) {
  BlockRowsGuard guard(4);
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false}}));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(i)}).ok());
  }
  const ScanStats stats = ExpectCompressedMatches(t, "ia = NULL");
  // Every block's result set is {NULL}: all pruned.
  EXPECT_EQ(stats.blocks_pruned, stats.blocks_total);
}

// --- Encoded global aggregation --------------------------------------------

std::vector<const Expr*> AggNodes(const SelectStatement& stmt) {
  std::vector<const Expr*> nodes;
  for (const SelectItem& item : stmt.select_list) {
    nodes.push_back(item.expr.get());
  }
  return nodes;
}

TEST(CompressedScanTest, EncodedAggregateMatchesRowSweep) {
  BlockRowsGuard guard(8);
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false},
              Field{"da", DataType::kDouble, true}}));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(i / 10),
                              i % 7 == 0 ? Value::Null()
                                         : Value::Double(i)})
                    .ok());
  }
  cat.RegisterOrReplace("t", t);
  const std::string sql =
      "SELECT COUNT(*), COUNT(da), SUM(ia), AVG(da), MIN(da), MAX(ia) "
      "FROM t";
  SetGlobalScanEngine(ScanEngine::kCompressed);
  auto compressed = ExecuteQuery(cat, sql);
  SetGlobalScanEngine(ScanEngine::kDecode);
  auto decode = ExecuteQuery(cat, sql);
  SetGlobalScanEngine(ScanEngine::kCompressed);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  ASSERT_TRUE(decode.ok()) << decode.status().ToString();
  ASSERT_EQ(compressed->num_rows(), 1u);
  for (size_t c = 0; c < compressed->num_columns(); ++c) {
    EXPECT_EQ(compressed->GetValue(0, c).ToString(),
              decode->GetValue(0, c).ToString())
        << "column " << c;
  }
}

TEST(CompressedScanTest, EncodedAggregateGuardsAndDeclines) {
  BlockRowsGuard guard(8);
  auto fractional = MakeDoubleTable(
      {Value::Double(0.5), Value::Double(1.5), Value::Double(2.0)});
  auto nan_holding = MakeDoubleTable(
      {Value::Double(1.0), Value::Double(kNaN), Value::Double(2.0)});
  auto huge = MakeDoubleTable(
      {Value::Double(9.1e15), Value::Double(9.2e15)});  // > 2^53 magnitude
  EnsureBlockIndex(fractional);
  EnsureBlockIndex(nan_holding);
  EnsureBlockIndex(huge);

  auto stmt = ParseSelect("SELECT SUM(da) FROM t");
  ASSERT_TRUE(stmt.ok());
  const auto nodes = AggNodes(*stmt);
  // Non-integral values, NaN poisoning and magnitudes past 2^53 all fail
  // the exactness proof: SUM declines to the row sweep.
  EXPECT_FALSE(EncodedGlobalAggregate(*fractional, nodes).has_value());
  EXPECT_FALSE(EncodedGlobalAggregate(*nan_holding, nodes).has_value());
  EXPECT_FALSE(EncodedGlobalAggregate(*huge, nodes).has_value());

  // MIN/MAX/COUNT have no exactness requirement: all three tables fold.
  auto minmax = ParseSelect("SELECT MIN(da), MAX(da), COUNT(da) FROM t");
  ASSERT_TRUE(minmax.ok());
  const auto mm_nodes = AggNodes(*minmax);
  EXPECT_TRUE(EncodedGlobalAggregate(*fractional, mm_nodes).has_value());
  EXPECT_TRUE(EncodedGlobalAggregate(*nan_holding, mm_nodes).has_value());
  EXPECT_TRUE(EncodedGlobalAggregate(*huge, mm_nodes).has_value());

  // Order-sensitive Welford recurrences cannot be folded from zones.
  auto var = ParseSelect("SELECT VARIANCE(da) FROM t");
  ASSERT_TRUE(var.ok());
  EXPECT_FALSE(EncodedGlobalAggregate(*huge, AggNodes(*var)).has_value());
}

TEST(CompressedScanTest, EndToEndMatchesDecodeOnMixedQueries) {
  BlockRowsGuard guard(8);
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"ia", DataType::kInt64, false},
              Field{"da", DataType::kDouble, true},
              Field{"ok", DataType::kBool, true}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t->AppendRow(
             {Value::Int64(i / 25),
              i % 11 == 0 ? Value::Null()
                          : Value::Double(i % 13 == 0 ? kNaN : i * 0.25),
              i % 17 == 0 ? Value::Null() : Value::Bool(i % 3 == 0)})
            .ok());
  }
  cat.RegisterOrReplace("t", t);
  const std::vector<std::string> queries = {
      "SELECT ia, da FROM t WHERE ia = 2",
      "SELECT ia FROM t WHERE da > 10.0 AND ia <= 2",
      "SELECT da FROM t WHERE da != 0.0 OR ok",
      "SELECT COUNT(*) FROM t WHERE NOT ok",
      "SELECT ia, COUNT(*) FROM t WHERE da >= 5.0 GROUP BY ia",
      "SELECT COUNT(*), SUM(ia), MIN(ia), MAX(ia) FROM t",
  };
  for (const std::string& sql : queries) {
    SetGlobalScanEngine(ScanEngine::kCompressed);
    auto compressed = ExecuteQuery(cat, sql);
    SetGlobalScanEngine(ScanEngine::kDecode);
    auto decode = ExecuteQuery(cat, sql);
    SetGlobalScanEngine(ScanEngine::kCompressed);
    ASSERT_TRUE(compressed.ok()) << sql << ": " << compressed.status().ToString();
    ASSERT_TRUE(decode.ok()) << sql << ": " << decode.status().ToString();
    ASSERT_EQ(compressed->num_rows(), decode->num_rows()) << sql;
    for (size_t r = 0; r < compressed->num_rows(); ++r) {
      for (size_t c = 0; c < compressed->num_columns(); ++c) {
        EXPECT_EQ(compressed->GetValue(r, c).ToString(),
                  decode->GetValue(r, c).ToString())
            << sql << " row " << r << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace laws

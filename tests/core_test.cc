#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/advisor.h"
#include "core/diagnose.h"
#include "core/model_catalog.h"
#include "core/persistence.h"
#include "core/session.h"
#include "core/strawman.h"
#include "storage/catalog.h"

namespace laws {
namespace {

/// Registers a linear table y = 3 + 2x (+noise) as "lin" and a grouped
/// power-law table as "plaw".
struct Fixture {
  Catalog data;
  ModelCatalog models;
  std::unique_ptr<Session> session;

  Fixture() {
    Rng rng(1);
    auto lin = std::make_shared<Table>(
        Schema({Field{"x", DataType::kDouble, false},
                Field{"y", DataType::kDouble, false}}));
    for (int i = 0; i < 100; ++i) {
      const double x = rng.Uniform(0, 10);
      EXPECT_TRUE(lin->AppendRow({Value::Double(x),
                                  Value::Double(3.0 + 2.0 * x +
                                                rng.Normal(0, 0.05))})
                      .ok());
    }
    data.RegisterOrReplace("lin", lin);

    auto plaw = std::make_shared<Table>(
        Schema({Field{"g", DataType::kInt64, false},
                Field{"x", DataType::kDouble, false},
                Field{"y", DataType::kDouble, false}}));
    for (int g = 1; g <= 8; ++g) {
      for (int i = 0; i < 40; ++i) {
        const double x = rng.Uniform(0.1, 0.2);
        const double y = (0.5 + 0.1 * g) * std::pow(x, -0.5 - 0.05 * g) *
                         std::exp(rng.Normal(0, 0.02));
        EXPECT_TRUE(plaw->AppendRow({Value::Int64(g), Value::Double(x),
                                     Value::Double(y)})
                        .ok());
      }
    }
    data.RegisterOrReplace("plaw", plaw);
    session = std::make_unique<Session>(&data, &models);
  }

  FitRequest LinearRequest() {
    FitRequest r;
    r.table = "lin";
    r.model_source = "linear(1)";
    r.input_columns = {"x"};
    r.output_column = "y";
    return r;
  }

  FitRequest PowerLawRequest() {
    FitRequest r;
    r.table = "plaw";
    r.model_source = "power_law";
    r.input_columns = {"x"};
    r.output_column = "y";
    r.group_column = "g";
    return r;
  }
};

// --- ModelCatalog ----------------------------------------------------------

TEST(ModelCatalogTest, StoreAssignsIncreasingIds) {
  ModelCatalog mc;
  CapturedModel a;
  a.table_name = "t";
  const uint64_t id1 = mc.Store(a);
  const uint64_t id2 = mc.Store(a);
  EXPECT_LT(id1, id2);
  EXPECT_EQ(mc.size(), 2u);
  EXPECT_TRUE(mc.Get(id1).ok());
  EXPECT_FALSE(mc.Get(999).ok());
}

TEST(ModelCatalogTest, RemoveAndList) {
  ModelCatalog mc;
  CapturedModel m;
  const uint64_t id = mc.Store(m);
  EXPECT_EQ(mc.ListIds().size(), 1u);
  EXPECT_TRUE(mc.Remove(id).ok());
  EXPECT_FALSE(mc.Remove(id).ok());
  EXPECT_TRUE(mc.ListIds().empty());
}

TEST(ModelCatalogTest, ModelsForTableAndOutputFiltering) {
  ModelCatalog mc;
  CapturedModel a;
  a.table_name = "t1";
  a.output_column = "y";
  mc.Store(a);
  CapturedModel b;
  b.table_name = "t1";
  b.output_column = "z";
  mc.Store(b);
  CapturedModel c;
  c.table_name = "t2";
  c.output_column = "y";
  mc.Store(c);
  EXPECT_EQ(mc.ModelsForTable("t1").size(), 2u);
  EXPECT_EQ(mc.ModelsFor("t1", "y").size(), 1u);
  EXPECT_EQ(mc.ModelsFor("t2", "y").size(), 1u);
  EXPECT_TRUE(mc.ModelsFor("t3", "y").empty());
}

TEST(ModelCatalogTest, BestModelPrefersFreshThenQuality) {
  ModelCatalog mc;
  CapturedModel stale_good;
  stale_good.table_name = "t";
  stale_good.output_column = "y";
  stale_good.quality.adjusted_r_squared = 0.99;
  stale_good.fitted_data_version = 1;
  mc.Store(stale_good);
  CapturedModel fresh_ok;
  fresh_ok.table_name = "t";
  fresh_ok.output_column = "y";
  fresh_ok.quality.adjusted_r_squared = 0.8;
  fresh_ok.fitted_data_version = 2;
  const uint64_t fresh_id = mc.Store(fresh_ok);
  auto best = mc.BestModelFor("t", "y", /*current_data_version=*/2);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ((*best)->id, fresh_id);
  // When both are stale, quality wins.
  auto best_v3 = mc.BestModelFor("t", "y", 3);
  ASSERT_TRUE(best_v3.ok());
  EXPECT_NEAR((*best_v3)->quality.adjusted_r_squared, 0.99, 1e-12);
  EXPECT_FALSE(mc.BestModelFor("t", "zzz", 1).ok());
}

TEST(ModelCatalogTest, RemoveForTable) {
  ModelCatalog mc;
  CapturedModel a;
  a.table_name = "t1";
  mc.Store(a);
  mc.Store(a);
  CapturedModel b;
  b.table_name = "t2";
  const uint64_t keep = mc.Store(b);
  EXPECT_EQ(mc.RemoveForTable("t1"), 2u);
  EXPECT_EQ(mc.size(), 1u);
  EXPECT_TRUE(mc.Get(keep).ok());
  EXPECT_EQ(mc.RemoveForTable("t1"), 0u);
}

TEST(ModelCatalogTest, StalenessCheck) {
  CapturedModel m;
  m.fitted_data_version = 5;
  EXPECT_FALSE(ModelCatalog::IsStale(m, 5));
  EXPECT_TRUE(ModelCatalog::IsStale(m, 6));
}

TEST(CapturedModelTest, StorageBytesAndSummary) {
  CapturedModel m;
  m.table_name = "t";
  m.model_source = "linear(1)";
  m.output_column = "y";
  m.parameters = {1.0, 2.0};
  EXPECT_GE(m.StorageBytes(), 2 * sizeof(double));
  EXPECT_NE(m.Summary().find("linear(1)"), std::string::npos);
}

// --- Session fitting ------------------------------------------------------

TEST(SessionTest, UngroupedFitCapturesModel) {
  Fixture f;
  auto report = f.session->Fit(f.LinearRequest());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->grouped);
  EXPECT_NEAR(report->parameters[0], 3.0, 0.1);
  EXPECT_NEAR(report->parameters[1], 2.0, 0.05);
  EXPECT_GT(report->quality.r_squared, 0.99);
  // The artifact is in the model catalog with matching metadata.
  auto captured = f.models.Get(report->model_id);
  ASSERT_TRUE(captured.ok());
  EXPECT_EQ((*captured)->table_name, "lin");
  EXPECT_EQ((*captured)->model_source, "linear(1)");
  EXPECT_EQ((*captured)->output_column, "y");
  EXPECT_FALSE((*captured)->grouped);
  const auto table = *f.data.Get("lin");
  EXPECT_EQ((*captured)->fitted_data_version, table->data_version());
}

TEST(SessionTest, GroupedFitCapturesParameterTable) {
  Fixture f;
  auto report = f.session->Fit(f.PowerLawRequest());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->grouped);
  EXPECT_EQ(report->num_groups, 8u);
  EXPECT_GT(report->median_r_squared, 0.9);
  auto captured = f.models.Get(report->model_id);
  ASSERT_TRUE(captured.ok());
  EXPECT_EQ((*captured)->parameter_table.num_rows(), 8u);
  EXPECT_TRUE((*captured)->parameter_table.schema().HasField("alpha"));
  EXPECT_TRUE((*captured)->parameter_table.schema().HasField("residual_se"));
}

TEST(SessionTest, SubsetPredicateRestrictsFit) {
  Fixture f;
  FitRequest r = f.LinearRequest();
  r.where = "x < 5";
  auto report = f.session->Fit(r);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto captured = f.models.Get(report->model_id);
  ASSERT_TRUE(captured.ok());
  EXPECT_EQ((*captured)->subset_predicate, "x < 5");
  EXPECT_LT((*captured)->rows_fitted, 100u);
  EXPECT_GT((*captured)->rows_fitted, 0u);
}

TEST(SessionTest, FitValidatesRequest) {
  Fixture f;
  FitRequest bad = f.LinearRequest();
  bad.table = "missing";
  EXPECT_FALSE(f.session->Fit(bad).ok());
  bad = f.LinearRequest();
  bad.model_source = "nonsense";
  EXPECT_FALSE(f.session->Fit(bad).ok());
  bad = f.LinearRequest();
  bad.input_columns = {"x", "y"};  // arity mismatch
  EXPECT_FALSE(f.session->Fit(bad).ok());
  bad = f.LinearRequest();
  bad.where = "syntax error here (";
  EXPECT_FALSE(f.session->Fit(bad).ok());
}

// --- Lifecycle ----------------------------------------------------------

TEST(SessionTest, RefitStaleDetectsDataChange) {
  Fixture f;
  auto report = f.session->Fit(f.LinearRequest());
  ASSERT_TRUE(report.ok());
  // Nothing stale yet.
  auto sweep1 = f.session->RefitStale();
  ASSERT_TRUE(sweep1.ok());
  EXPECT_EQ(sweep1->checked, 1u);
  EXPECT_EQ(sweep1->stale, 0u);
  // Mutate the table: the model becomes stale and gets refitted.
  auto table = *f.data.Get("lin");
  ASSERT_TRUE(
      table->AppendRow({Value::Double(5.0), Value::Double(13.0)}).ok());
  auto sweep2 = f.session->RefitStale();
  ASSERT_TRUE(sweep2.ok());
  EXPECT_EQ(sweep2->stale, 1u);
  EXPECT_EQ(sweep2->refitted, 1u);
  // The refreshed model matches the new data version.
  const auto ids = f.models.ListIds();
  ASSERT_EQ(ids.size(), 1u);
  auto refreshed = f.models.Get(ids[0]);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ((*refreshed)->fitted_data_version, table->data_version());
}

TEST(SessionTest, RefitStaleFlagsQualityShift) {
  Fixture f;
  auto report = f.session->Fit(f.LinearRequest());
  ASSERT_TRUE(report.ok());
  // Append garbage rows that destroy the linear relationship.
  auto table = *f.data.Get("lin");
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value::Double(rng.Uniform(0, 10)),
                                 Value::Double(rng.Uniform(-100, 100))})
                    .ok());
  }
  auto sweep = f.session->RefitStale();
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->refitted, 1u);
  EXPECT_EQ(sweep->quality_shifted.size(), 1u);
}

TEST(SessionTest, RefitUnknownModelFails) {
  Fixture f;
  EXPECT_FALSE(f.session->Refit(12345).ok());
}

// --- Strawman --------------------------------------------------------------

TEST(StrawmanTest, FitForwardsAndCaptures) {
  Fixture f;
  Strawman df(f.session.get(), "plaw");
  auto report = df.GroupBy("g").Fit("power_law", {"x"}, "y");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->grouped);
  EXPECT_EQ(report->num_groups, 8u);
  // The fit was intercepted into the model catalog.
  auto captured = f.models.Get(report->model_id);
  ASSERT_TRUE(captured.ok());
  EXPECT_EQ((*captured)->group_column, "g");
}

TEST(StrawmanTest, FiltersConjoinAndRestrictTheFit) {
  Fixture f;
  Strawman df(f.session.get(), "lin");
  const Strawman narrow = df.Filter("x > 2").Filter("x < 8");
  auto full_count = df.Count();
  auto narrow_count = narrow.Count();
  ASSERT_TRUE(full_count.ok());
  ASSERT_TRUE(narrow_count.ok());
  EXPECT_LT(*narrow_count, *full_count);
  EXPECT_GT(*narrow_count, 0u);

  auto report = narrow.Fit("linear(1)", {"x"}, "y");
  ASSERT_TRUE(report.ok());
  auto captured = f.models.Get(report->model_id);
  ASSERT_TRUE(captured.ok());
  EXPECT_EQ((*captured)->subset_predicate, "(x > 2) AND (x < 8)");
  EXPECT_EQ((*captured)->rows_fitted, *narrow_count);
}

TEST(StrawmanTest, CollectMaterializesTheView) {
  Fixture f;
  Strawman df(f.session.get(), "lin");
  auto all = df.Collect();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 100u);
  auto subset = df.Filter("x < 5").Collect();
  ASSERT_TRUE(subset.ok());
  EXPECT_LT(subset->num_rows(), 100u);
  const Column& x = *subset->ColumnByName("x").value();
  for (size_t i = 0; i < x.size(); ++i) EXPECT_LT(x.DoubleAt(i), 5.0);
}

TEST(StrawmanTest, HandlesAreForkableValues) {
  Fixture f;
  Strawman base(f.session.get(), "lin");
  Strawman a = base.Filter("x < 5");
  Strawman b = base.Filter("x >= 5");
  // base unchanged; a and b independent.
  EXPECT_TRUE(base.predicate().empty());
  EXPECT_NE(a.predicate(), b.predicate());
  auto ca = a.Count();
  auto cb = b.Count();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(*ca + *cb, 100u);
}

TEST(StrawmanTest, ErrorsSurface) {
  Fixture f;
  Strawman missing(f.session.get(), "no_such_table");
  EXPECT_FALSE(missing.Count().ok());
  Strawman bad_pred =
      Strawman(f.session.get(), "lin").Filter("syntax ( error");
  EXPECT_FALSE(bad_pred.Collect().ok());
}

// --- Advisor ---------------------------------------------------------------

TEST(AdvisorTest, PicksPowerLawForPowerLawData) {
  Rng rng(55);
  Table t(Schema({Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0.1, 2.0);
    ASSERT_TRUE(t.AppendRow({Value::Double(x),
                             Value::Double(1.5 * std::pow(x, -0.8) *
                                           std::exp(rng.Normal(0, 0.02)))})
                    .ok());
  }
  auto candidates = SuggestModels(t, "x", "y");
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  ASSERT_FALSE(candidates->empty());
  EXPECT_EQ(candidates->front().model_source, "power_law");
  EXPECT_GT(candidates->front().r_squared, 0.95);
  // Candidates are ordered by ascending BIC among fitted ones.
  for (size_t i = 1; i < candidates->size(); ++i) {
    if ((*candidates)[i].fitted && (*candidates)[i - 1].fitted) {
      EXPECT_LE((*candidates)[i - 1].bic, (*candidates)[i].bic);
    }
  }
}

TEST(AdvisorTest, PicksLinearForLinearDataDespiteNestedPoly) {
  Rng rng(56);
  Table t(Schema({Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 800; ++i) {
    const double x = rng.Uniform(-5.0, 5.0);
    ASSERT_TRUE(t.AppendRow({Value::Double(x),
                             Value::Double(2.0 + 0.7 * x +
                                           rng.Normal(0, 0.3))})
                    .ok());
  }
  auto candidates = SuggestModels(t, "x", "y");
  ASSERT_TRUE(candidates.ok());
  // BIC's parameter penalty must prefer linear over the nested poly(2)/(3)
  // that fit equally well.
  EXPECT_EQ(candidates->front().model_source, "linear(1)");
}

TEST(AdvisorTest, GroupedAdvicePicksDominantClass) {
  Rng rng(57);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int g = 1; g <= 50; ++g) {
    const double p = rng.Uniform(0.5, 2.0);
    const double a = rng.Uniform(-1.0, -0.5);
    for (int i = 0; i < 40; ++i) {
      const double x = rng.Uniform(0.1, 0.3);
      ASSERT_TRUE(t.AppendRow({Value::Int64(g), Value::Double(x),
                               Value::Double(p * std::pow(x, a) *
                                             std::exp(rng.Normal(0, 0.02)))})
                      .ok());
    }
  }
  AdvisorOptions options;
  options.sample_groups = 16;
  auto candidates = SuggestGroupedModels(t, "g", "x", "y", options);
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  EXPECT_EQ(candidates->front().model_source, "power_law");
  EXPECT_GT(candidates->front().r_squared, 0.9);
}

TEST(AdvisorTest, ValidationErrors) {
  Table t(Schema({Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Double(i), Value::Double(i)}).ok());
  }
  EXPECT_FALSE(SuggestModels(t, "x", "y").ok());  // too few rows
  EXPECT_FALSE(SuggestModels(t, "missing", "y").ok());
  AdvisorOptions custom;
  custom.candidate_sources = {"garbage_model"};
  Table big(Schema({Field{"x", DataType::kDouble, false},
                    Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        big.AppendRow({Value::Double(i), Value::Double(i)}).ok());
  }
  EXPECT_FALSE(SuggestModels(big, "x", "y", custom).ok());
}

// --- Diagnostics -------------------------------------------------------------

TEST(DiagnoseTest, WellSpecifiedModelIsHealthy) {
  Fixture f;  // "lin" has additive Gaussian noise around a true line
  auto report = f.session->Fit(f.LinearRequest());
  ASSERT_TRUE(report.ok());
  auto table = *f.data.Get("lin");
  auto model = f.models.Get(report->model_id);
  ASSERT_TRUE(model.ok());
  auto diag = DiagnoseModel(*table, **model);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_TRUE(diag->residual_normality.normal_at_05);
  EXPECT_NEAR(diag->durbin_watson, 2.0, 0.6);
  EXPECT_TRUE(diag->healthy);
  EXPECT_EQ(diag->residuals_used, 100u);
}

TEST(DiagnoseTest, MisspecifiedModelFlagsAutocorrelation) {
  // Fit a line to a clean parabola: residuals along x are smooth waves.
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  auto t = std::make_shared<Table>(
      Schema({Field{"x", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 200; ++i) {
    const double x = i / 20.0;
    ASSERT_TRUE(
        t->AppendRow({Value::Double(x), Value::Double(x * x)}).ok());
  }
  data.RegisterOrReplace("curve", t);
  FitRequest r;
  r.table = "curve";
  r.model_source = "linear(1)";
  r.input_columns = {"x"};
  r.output_column = "y";
  auto report = session.Fit(r);
  ASSERT_TRUE(report.ok());
  auto model = models.Get(report->model_id);
  auto diag = DiagnoseModel(*t, **model);
  ASSERT_TRUE(diag.ok());
  EXPECT_LT(diag->durbin_watson, 0.5);
  EXPECT_FALSE(diag->healthy);
}

TEST(DiagnoseTest, GroupedModelDiagnosesOneGroup) {
  Fixture f;
  auto report = f.session->Fit(f.PowerLawRequest());
  ASSERT_TRUE(report.ok());
  auto table = *f.data.Get("plaw");
  auto model = f.models.Get(report->model_id);
  ASSERT_TRUE(model.ok());
  auto diag = DiagnoseModel(*table, **model, /*group_key=*/3);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_EQ(diag->residuals_used, 40u);
  EXPECT_FALSE(DiagnoseModel(*table, **model, 99999).ok());
}

// --- Persistence -------------------------------------------------------------

TEST(PersistenceTest, CapturedModelRoundTrip) {
  Fixture f;
  auto grouped = f.session->Fit(f.PowerLawRequest());
  ASSERT_TRUE(grouped.ok());
  const CapturedModel* original =
      *f.models.Get(grouped->model_id);
  ByteWriter w;
  SerializeCapturedModel(*original, &w);
  ByteReader r(w.data());
  auto restored = DeserializeCapturedModel(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->id, original->id);
  EXPECT_EQ(restored->model_source, original->model_source);
  EXPECT_EQ(restored->grouped, original->grouped);
  EXPECT_EQ(restored->num_groups, original->num_groups);
  EXPECT_EQ(restored->parameter_table.num_rows(),
            original->parameter_table.num_rows());
  EXPECT_DOUBLE_EQ(restored->median_r_squared, original->median_r_squared);
  // Parameter values are bit-exact.
  for (size_t rr = 0; rr < original->parameter_table.num_rows(); rr += 3) {
    EXPECT_EQ(restored->parameter_table.GetValue(rr, 1),
              original->parameter_table.GetValue(rr, 1));
  }
}

TEST(PersistenceTest, DatabaseImageRoundTrip) {
  Fixture f;
  auto lin = f.session->Fit(f.LinearRequest());
  auto grouped = f.session->Fit(f.PowerLawRequest());
  ASSERT_TRUE(lin.ok());
  ASSERT_TRUE(grouped.ok());

  auto bytes = SaveDatabaseToBytes(f.data, f.models);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  Catalog data2;
  ModelCatalog models2;
  ASSERT_TRUE(LoadDatabaseFromBytes(*bytes, &data2, &models2).ok());
  EXPECT_EQ(data2.ListTables(), f.data.ListTables());
  EXPECT_EQ(models2.size(), 2u);

  // Table contents round-trip.
  auto t0 = *f.data.Get("lin");
  auto t1 = *data2.Get("lin");
  ASSERT_EQ(t1->num_rows(), t0->num_rows());
  for (size_t rr = 0; rr < t0->num_rows(); rr += 13) {
    EXPECT_EQ(t1->GetValue(rr, 1), t0->GetValue(rr, 1));
  }

  // Freshness survives: the loaded models are not stale wrt loaded tables.
  for (uint64_t id : models2.ListIds()) {
    const CapturedModel* m = *models2.Get(id);
    auto table = *data2.Get(m->table_name);
    EXPECT_FALSE(ModelCatalog::IsStale(*m, table->data_version()))
        << m->Summary();
  }
}

TEST(PersistenceTest, StaleModelsStayStaleAfterReload) {
  Fixture f;
  auto lin = f.session->Fit(f.LinearRequest());
  ASSERT_TRUE(lin.ok());
  // Mutate so the model is stale at save time.
  auto table = *f.data.Get("lin");
  ASSERT_TRUE(
      table->AppendRow({Value::Double(1.0), Value::Double(5.0)}).ok());
  auto bytes = SaveDatabaseToBytes(f.data, f.models);
  ASSERT_TRUE(bytes.ok());
  Catalog data2;
  ModelCatalog models2;
  ASSERT_TRUE(LoadDatabaseFromBytes(*bytes, &data2, &models2).ok());
  const CapturedModel* m = *models2.Get(lin->model_id);
  auto loaded_table = *data2.Get("lin");
  EXPECT_TRUE(ModelCatalog::IsStale(*m, loaded_table->data_version()));
}

TEST(PersistenceTest, FileRoundTripAndGarbageRejection) {
  Fixture f;
  ASSERT_TRUE(f.session->Fit(f.LinearRequest()).ok());
  const std::string path = "/tmp/lawsdb_test_image.bin";
  ASSERT_TRUE(SaveDatabase(f.data, f.models, path).ok());
  Catalog data2;
  ModelCatalog models2;
  ASSERT_TRUE(LoadDatabase(path, &data2, &models2).ok());
  EXPECT_EQ(models2.size(), 1u);
  EXPECT_FALSE(LoadDatabase("/tmp/does_not_exist.bin", &data2, &models2)
                   .ok());
  std::vector<uint8_t> junk = {'n', 'o', 'p', 'e', 1, 2, 3};
  Catalog d3;
  ModelCatalog m3;
  EXPECT_FALSE(LoadDatabaseFromBytes(junk, &d3, &m3).ok());
}

TEST(ModelCatalogTest, RestoreWithIdValidation) {
  ModelCatalog mc;
  CapturedModel m;
  m.id = 7;
  ASSERT_TRUE(mc.RestoreWithId(m).ok());
  EXPECT_FALSE(mc.RestoreWithId(m).ok());  // duplicate
  CapturedModel zero;
  zero.id = 0;
  EXPECT_FALSE(mc.RestoreWithId(zero).ok());
  // New ids continue above restored ones.
  CapturedModel fresh;
  EXPECT_EQ(mc.Store(fresh), 8u);
}

TEST(MedianOfTest, OddEvenEmpty) {
  EXPECT_EQ(MedianOf({}), 0.0);
  EXPECT_EQ(MedianOf({3.0}), 3.0);
  EXPECT_EQ(MedianOf({1.0, 3.0, 2.0}), 2.0);
  EXPECT_EQ(MedianOf({1.0, 2.0, 3.0, 4.0}), 2.5);
}

}  // namespace
}  // namespace laws

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>

#include "query/parser.h"
#include "testing/aqp_audit.h"
#include "testing/differential.h"
#include "testing/learning_diff.h"
#include "testing/query_gen.h"
#include "testing/reference_oracle.h"
#include "testing/shrink.h"

namespace laws {
namespace testing {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

// The tentpole gate: a seeded sweep of generated queries, each executed by
// the vectorized engine (at 1 thread and at the default width) and by the
// row-at-a-time reference oracle, diffed for bit identity. Overridable for
// soaks: LAWS_FUZZ_QUERIES=100000 LAWS_FUZZ_SEED=7 ./differential_test
TEST(DifferentialTest, SweepAgreesWithOracle) {
  DiffOptions opts;
  opts.seed = EnvU64("LAWS_FUZZ_SEED", opts.seed);
  opts.num_queries =
      static_cast<size_t>(EnvU64("LAWS_FUZZ_QUERIES", opts.num_queries));

  const DiffReport report = RunDifferential(opts);
  EXPECT_EQ(report.parse_failures, 0u) << report.Summary();
  EXPECT_TRUE(report.mismatches.empty()) << report.Summary();
  // The generator aims most queries at valid SQL; if almost everything
  // errors out, coverage has silently collapsed.
  EXPECT_GT(report.agree_rows, report.queries * 2 / 5) << report.Summary();
}

// The robustness gate: the same generated queries run under randomly
// drawn governor regimes (cancel, deadline, budget, injected faults) and
// must either finish bit-identical to the ungoverned reference or stop
// with a clean typed governor error — never wrong rows, never a crash.
// Overridable for the 10k acceptance soak (see tools/check_governor.sh):
// LAWS_CHAOS_QUERIES=10000 LAWS_CHAOS_SEED=7 ./differential_test
TEST(DifferentialTest, GovernorChaosSweepHoldsInvariant) {
  ChaosOptions opts;
  opts.seed = EnvU64("LAWS_CHAOS_SEED", opts.seed);
  opts.num_queries =
      static_cast<size_t>(EnvU64("LAWS_CHAOS_QUERIES", opts.num_queries));

  const ChaosReport report = RunGovernorChaos(opts);
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  // All three legitimate outcomes must actually occur, or the regimes
  // have silently stopped biting.
  EXPECT_GT(report.governor_stopped, 0u) << report.Summary();
  EXPECT_GT(report.completed_identical, 0u) << report.Summary();
}

TEST(DifferentialTest, GeneratorIsDeterministic) {
  const GeneratedCase a = GenerateCase(99);
  const GeneratedCase b = GenerateCase(99);
  EXPECT_EQ(a.sql, b.sql);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].ToString(), b.tables[i].ToString());
  }
  EXPECT_NE(a.sql, GenerateCase(100).sql);
}

TEST(DifferentialTest, TablesEquivalentComparesOrderAndMultiset) {
  Table a{Schema({Field{"x", DataType::kInt64, true}})};
  Table b{Schema({Field{"x", DataType::kInt64, true}})};
  ASSERT_TRUE(a.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(a.AppendRow({Value::Int64(2)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(2)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(1)}).ok());
  std::string why;
  EXPECT_TRUE(TablesEquivalent(a, b, /*order_sensitive=*/false, &why));
  EXPECT_FALSE(TablesEquivalent(a, b, /*order_sensitive=*/true, &why));
}

TEST(DifferentialTest, TablesEquivalentNaNClassAndSignedZero) {
  Table a{Schema({Field{"x", DataType::kDouble, true}})};
  Table b{Schema({Field{"x", DataType::kDouble, true}})};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(a.AppendRow({Value::Double(nan)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Double(-nan)}).ok());
  std::string why;
  // Every NaN is one equivalence class...
  EXPECT_TRUE(TablesEquivalent(a, b, /*order_sensitive=*/true, &why));
  // ...but -0.0 and +0.0 are distinct output values.
  ASSERT_TRUE(a.AppendRow({Value::Double(0.0)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Double(-0.0)}).ok());
  EXPECT_FALSE(TablesEquivalent(a, b, /*order_sensitive=*/true, &why));
}

TEST(DifferentialTest, ShrinkerReducesFailingCase) {
  // Shrink against a synthetic predicate ("query still references column
  // ia and table has a row with ia = 3") to exercise the minimizer
  // mechanics deterministically.
  GenTable t;
  t.name = "t0";
  t.columns = {GenColumn{"ia", DataType::kInt64, true},
               GenColumn{"da", DataType::kDouble, true}};
  for (int i = 0; i < 16; ++i) {
    t.rows.push_back({Value::Int64(i % 5), Value::Double(i * 0.5)});
  }
  std::vector<GenTable> tables = {std::move(t)};
  auto stmt = ParseSelect(
      "SELECT ia, da, ia + 1 FROM t0 WHERE da >= 0 ORDER BY da DESC, ia "
      "LIMIT 12");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  auto repro = [](const std::vector<GenTable>& tabs,
                  const SelectStatement& s) {
    bool has_three = false;
    for (const auto& row : tabs[0].rows) {
      has_three |= !row[0].is_null() && row[0].is_int64() &&
                   row[0].int64() == 3;
    }
    return has_three && s.ToString().find("ia") != std::string::npos;
  };
  ShrinkCase(&tables, &*stmt, repro, 400);

  EXPECT_TRUE(repro(tables, *stmt));
  // Rows collapse to a single witness; incidental clauses disappear.
  EXPECT_LE(tables[0].rows.size(), 2u);
  EXPECT_EQ(stmt->limit, -1);
  EXPECT_EQ(stmt->where, nullptr);
  EXPECT_TRUE(stmt->order_by.empty());
}

// The AQP side of the contract: model answers stay inside their reported
// prediction intervals; every fallback is bit-identical to the exact
// engine and explains itself.
TEST(DifferentialTest, AqpErrorBoundAudit) {
  auto report = RunAqpAudit(EnvU64("LAWS_FUZZ_SEED", 0x5EED), 60);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->violations.empty()) << report->Summary();
  EXPECT_GT(report->approximate, 0u) << report->Summary();
  EXPECT_GT(report->exact_fallbacks, 0u) << report->Summary();
}

// The learning leg: the same fuzz generator with harvesting enabled.
// Exact answers must stay bit-identical to the learning-off reference
// (learning is a by-product, never a perturbation), every merged
// sufficient statistic must re-derive by batch OLS over the rows it
// claims, and the repeated-workload phase must promote models whose
// approximate answers pass the interval audit with bounds that only
// tighten. Overridable for the acceptance soak (tools/check_learning.sh):
// LAWS_LEARN_FUZZ_QUERIES=30000 LAWS_LEARN_FUZZ_SEED=7 ./differential_test
TEST(DifferentialTest, LearningSweepMatchesReference) {
  LearnDiffOptions opts;
  opts.seed = EnvU64("LAWS_LEARN_FUZZ_SEED", opts.seed);
  opts.num_queries = static_cast<size_t>(
      EnvU64("LAWS_LEARN_FUZZ_QUERIES", opts.num_queries));

  const LearnDiffReport report = RunLearningDifferential(opts);
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.parse_failures, 0u) << report.Summary();
  // Coverage sanity: the sweep must actually exercise both halves of the
  // contract — bit-identical exact answers and audited model answers.
  EXPECT_GT(report.exact_matches, opts.num_queries * 2 / 5)
      << report.Summary();
  EXPECT_GT(report.audited, 0u) << report.Summary();
  EXPECT_GT(report.model_hits, 0u) << report.Summary();
  EXPECT_GT(report.promotions, 0u) << report.Summary();
  EXPECT_GT(report.self_checks, 0u) << report.Summary();
  EXPECT_GT(report.harvested_rows, 0u) << report.Summary();
}

#ifdef LAWS_TESTING_INJECT_BUG
// Self-test of the harness: with the planted hash-aggregate off-by-one
// (the numeric sweep drops the last input row), this exact case must be
// flagged. If this test FAILS under -DLAWS_TESTING_INJECT_BUG=ON, the
// harness has lost its teeth.
TEST(DifferentialTest, MutationSmokeCatchesInjectedBug) {
  GenTable t;
  t.name = "t0";
  t.columns = {GenColumn{"g", DataType::kInt64, false},
               GenColumn{"v", DataType::kInt64, false}};
  t.rows = {{Value::Int64(1), Value::Int64(1)},
            {Value::Int64(1), Value::Int64(2)},
            {Value::Int64(2), Value::Int64(5)}};
  auto stmt = ParseSelect("SELECT g, SUM(v) FROM t0 GROUP BY g");
  ASSERT_TRUE(stmt.ok());
  const CaseDiff diff = DiffCase({t}, *stmt);
  EXPECT_FALSE(diff.reason.empty())
      << "injected aggregate bug was not detected";
}

// The bytecode tier carries its own planted mutant (the compiled f64
// adder drops the last lane of every batch), which only the tree-walk vs
// bytecode leg of the matrix can see — proving the new tier is actually
// under differential test, not shadowed by the tree-walker.
TEST(DifferentialTest, MutationSmokeCatchesInjectedBytecodeBug) {
  GenTable t;
  t.name = "t0";
  t.columns = {GenColumn{"da", DataType::kDouble, false}};
  t.rows = {{Value::Double(1.5)}, {Value::Double(2.5)}, {Value::Double(4.0)}};
  auto stmt = ParseSelect("SELECT da + 100.25 FROM t0");
  ASSERT_TRUE(stmt.ok());
  const CaseDiff diff = DiffCase({t}, *stmt);
  EXPECT_FALSE(diff.reason.empty())
      << "injected bytecode adder bug was not detected";
}

// The compressed scan tier's planted mutant shrinks every zone-map max by
// one ulp, so a predicate sitting exactly on a block maximum wrongly
// prunes that block. 17 sorted rows span three 8-row blocks under the
// harness block size; `ia >= 17` must keep exactly the last block, which
// the mutant discards — only the compressed-vs-decode legs of the matrix
// can see it.
TEST(DifferentialTest, MutationSmokeCatchesInjectedZoneMapBug) {
  GenTable t;
  t.name = "t0";
  t.columns = {GenColumn{"ia", DataType::kInt64, false}};
  for (int i = 1; i <= 17; ++i) t.rows.push_back({Value::Int64(i)});
  auto stmt = ParseSelect("SELECT ia FROM t0 WHERE ia >= 17");
  ASSERT_TRUE(stmt.ok());
  const CaseDiff diff = DiffCase({t}, *stmt);
  EXPECT_FALSE(diff.reason.empty())
      << "injected zone-map pruning bug was not detected";
}

// The learning loop's planted mutant corrupts one merged sufficient
// statistic in IncrementalOls::Merge — the exact class of bug (a subtly
// wrong harvest accumulator) the learning leg exists to catch. Only the
// merged-vs-batch self-check can see it: query answers never flow through
// the accumulator, so the exact-answer legs stay green.
TEST(DifferentialTest, MutationSmokeCatchesInjectedHarvestBug) {
  const std::string mismatch = HarvestConsistencyProbe();
  EXPECT_FALSE(mismatch.empty())
      << "injected sufficient-statistic merge bug was not detected";
}
#else
// Same case in a healthy build: must agree (guards against the smoke test
// passing for the wrong reason).
TEST(DifferentialTest, MutationSmokeCaseAgreesWhenHealthy) {
  GenTable t;
  t.name = "t0";
  t.columns = {GenColumn{"g", DataType::kInt64, false},
               GenColumn{"v", DataType::kInt64, false}};
  t.rows = {{Value::Int64(1), Value::Int64(1)},
            {Value::Int64(1), Value::Int64(2)},
            {Value::Int64(2), Value::Int64(5)}};
  auto stmt = ParseSelect("SELECT g, SUM(v) FROM t0 GROUP BY g");
  ASSERT_TRUE(stmt.ok());
  const CaseDiff diff = DiffCase({t}, *stmt);
  EXPECT_TRUE(diff.reason.empty()) << diff.reason;
}

TEST(DifferentialTest, BytecodeMutationSmokeCaseAgreesWhenHealthy) {
  GenTable t;
  t.name = "t0";
  t.columns = {GenColumn{"da", DataType::kDouble, false}};
  t.rows = {{Value::Double(1.5)}, {Value::Double(2.5)}, {Value::Double(4.0)}};
  auto stmt = ParseSelect("SELECT da + 100.25 FROM t0");
  ASSERT_TRUE(stmt.ok());
  const CaseDiff diff = DiffCase({t}, *stmt);
  EXPECT_TRUE(diff.reason.empty()) << diff.reason;
}

TEST(DifferentialTest, ZoneMapMutationSmokeCaseAgreesWhenHealthy) {
  GenTable t;
  t.name = "t0";
  t.columns = {GenColumn{"ia", DataType::kInt64, false}};
  for (int i = 1; i <= 17; ++i) t.rows.push_back({Value::Int64(i)});
  auto stmt = ParseSelect("SELECT ia FROM t0 WHERE ia >= 17");
  ASSERT_TRUE(stmt.ok());
  const CaseDiff diff = DiffCase({t}, *stmt);
  EXPECT_TRUE(diff.reason.empty()) << diff.reason;
}

// Healthy build: merged statistics and batch OLS agree on the probe
// (guards against the harvest smoke test passing for the wrong reason).
TEST(DifferentialTest, HarvestProbeAgreesWhenHealthy) {
  EXPECT_EQ(HarvestConsistencyProbe(), "");
}
#endif

}  // namespace
}  // namespace testing
}  // namespace laws

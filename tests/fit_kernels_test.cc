#include "model/fit_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "model/fit.h"
#include "model/model.h"

namespace laws {
namespace {

Matrix ColumnMatrix(const Vector& x) {
  Matrix m(x.size(), 1);
  for (size_t i = 0; i < x.size(); ++i) m(i, 0) = x[i];
  return m;
}

// --- SimpleOlsSolve ------------------------------------------------------

TEST(SimpleOlsSolveTest, RecoversExactLine) {
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const Vector y{5.0, 7.0, 9.0, 11.0};  // y = 3 + 2x
  double b0 = 0.0, b1 = 0.0;
  SimpleRegressionSums sums;
  ASSERT_TRUE(SimpleOlsSolve(x.data(), y.data(), x.size(), &b0, &b1, &sums));
  EXPECT_NEAR(b0, 3.0, 1e-12);
  EXPECT_NEAR(b1, 2.0, 1e-12);
  EXPECT_EQ(sums.n, 4u);
  EXPECT_NEAR(sums.syy - b1 * sums.sxy, 0.0, 1e-12);  // zero residual
}

TEST(SimpleOlsSolveTest, RejectsDegenerateInputs) {
  double b0 = 0.0, b1 = 0.0;
  const Vector one_x{1.0};
  const Vector one_y{2.0};
  EXPECT_FALSE(SimpleOlsSolve(one_x.data(), one_y.data(), 1, &b0, &b1,
                              nullptr));
  // Constant x: Sxx = 0.
  const Vector const_x{2.0, 2.0, 2.0};
  const Vector some_y{1.0, 2.0, 3.0};
  EXPECT_FALSE(SimpleOlsSolve(const_x.data(), some_y.data(), 3, &b0, &b1,
                              nullptr));
  // -inf from log(0) poisons the sums.
  const Vector inf_x{1.0, -std::numeric_limits<double>::infinity(), 3.0};
  EXPECT_FALSE(SimpleOlsSolve(inf_x.data(), some_y.data(), 3, &b0, &b1,
                              nullptr));
  // NaN likewise.
  const Vector nan_y{1.0, std::nan(""), 3.0};
  const Vector ok_x{1.0, 2.0, 3.0};
  EXPECT_FALSE(SimpleOlsSolve(ok_x.data(), nan_y.data(), 3, &b0, &b1,
                              nullptr));
}

// --- Closed form vs iterative: property-style agreement ------------------

/// The central property of the fast path: on random power-law groups the
/// closed-form log-log kernel and the iterative fit agree tightly (both
/// minimize least squares; the objectives differ only by the log transform
/// of the noise, which is small at these noise levels).
TEST(ClosedFormAgreementTest, PowerLawMatchesGaussNewtonOnRandomGroups) {
  Rng rng(42);
  PowerLawModel model;
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(8, 200));
    const double p_true = rng.Uniform(0.5, 5.0);
    const double alpha_true = rng.Uniform(-2.0, -0.1);
    Vector x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(1.0, 12.0);
      y[i] = p_true * std::pow(x[i], alpha_true) *
             rng.LogNormal(0.0, 0.02);
    }
    const Matrix inputs = ColumnMatrix(x);

    FitOptions closed;  // kAuto with the fast path on (default)
    const auto fast = FitModel(model, inputs, y, closed);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(fast->algorithm_used, FitAlgorithm::kLogLinear);

    FitOptions iterative;
    iterative.algorithm = FitAlgorithm::kGaussNewton;
    const auto slow = FitModel(model, inputs, y, iterative);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();

    ASSERT_EQ(fast->parameters.size(), 2u);
    ASSERT_EQ(slow->parameters.size(), 2u);
    for (size_t k = 0; k < 2; ++k) {
      const double scale = std::max(1.0, std::fabs(slow->parameters[k]));
      EXPECT_NEAR(fast->parameters[k], slow->parameters[k], 5e-2 * scale)
          << "trial " << trial << " param " << k;
    }
    EXPECT_NEAR(fast->quality.r_squared, slow->quality.r_squared, 1e-3);
  }
}

TEST(ClosedFormAgreementTest, LinearModelMatchesExactOls) {
  Rng rng(7);
  LinearModel model(1);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(4, 100));
    const double a = rng.Uniform(-5.0, 5.0);
    const double b = rng.Uniform(-3.0, 3.0);
    Vector x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-10.0, 10.0);
      y[i] = a + b * x[i] + rng.Normal(0.0, 0.1);
    }
    const Matrix inputs = ColumnMatrix(x);

    const auto fast = FitModel(model, inputs, y, FitOptions{});
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(fast->algorithm_used, FitAlgorithm::kLogLinear);

    FitOptions qr;
    qr.algorithm = FitAlgorithm::kOls;
    const auto exact = FitModel(model, inputs, y, qr);
    ASSERT_TRUE(exact.ok());

    // Identity transforms: the closed form IS the OLS solution, so both
    // parameters and standard errors must agree to rounding.
    for (size_t k = 0; k < 2; ++k) {
      const double scale = std::max(1.0, std::fabs(exact->parameters[k]));
      EXPECT_NEAR(fast->parameters[k], exact->parameters[k], 1e-9 * scale);
    }
    ASSERT_EQ(fast->standard_errors.size(), 2u);
    ASSERT_EQ(exact->standard_errors.size(), 2u);
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(fast->standard_errors[k], exact->standard_errors[k],
                  1e-8 * std::max(1.0, exact->standard_errors[k]));
    }
  }
}

TEST(ClosedFormAgreementTest, ExponentialAndLogLawAgreeWithLm) {
  Rng rng(99);
  ExponentialModel expo;
  LogLawModel loglaw;
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(10, 80));
    Vector x(n), ye(n), yl(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(0.5, 4.0);
      ye[i] = 2.0 * std::exp(0.6 * x[i]) * rng.LogNormal(0.0, 0.02);
      yl[i] = 1.5 + 0.8 * std::log(x[i]) + rng.Normal(0.0, 0.01);
    }
    const Matrix inputs = ColumnMatrix(x);
    FitOptions lm;
    lm.algorithm = FitAlgorithm::kLevenbergMarquardt;

    const auto fast_e = FitModel(expo, inputs, ye, FitOptions{});
    const auto slow_e = FitModel(expo, inputs, ye, lm);
    ASSERT_TRUE(fast_e.ok());
    ASSERT_TRUE(slow_e.ok());
    EXPECT_EQ(fast_e->algorithm_used, FitAlgorithm::kLogLinear);
    for (size_t k = 0; k < 2; ++k) {
      const double scale = std::max(1.0, std::fabs(slow_e->parameters[k]));
      EXPECT_NEAR(fast_e->parameters[k], slow_e->parameters[k],
                  5e-2 * scale);
    }

    const auto fast_l = FitModel(loglaw, inputs, yl, FitOptions{});
    const auto slow_l = FitModel(loglaw, inputs, yl, lm);
    ASSERT_TRUE(fast_l.ok());
    ASSERT_TRUE(slow_l.ok());
    EXPECT_EQ(fast_l->algorithm_used, FitAlgorithm::kLogLinear);
    for (size_t k = 0; k < 2; ++k) {
      const double scale = std::max(1.0, std::fabs(slow_l->parameters[k]));
      EXPECT_NEAR(fast_l->parameters[k], slow_l->parameters[k],
                  5e-2 * scale);
    }
  }
}

// --- Degenerate groups ---------------------------------------------------

TEST(ClosedFormDegenerateTest, ConstantXFallsBackAndStillErrorsLikeOls) {
  // Constant wavelength: Sxx = 0, closed form refuses; the kAuto fallback
  // (LM for the power law) must still produce some outcome rather than
  // crash, and explicit kLogLinear must error.
  PowerLawModel model;
  const Vector x{2.0, 2.0, 2.0, 2.0};
  const Vector y{3.0, 3.1, 2.9, 3.0};
  const Matrix inputs = ColumnMatrix(x);
  FitOptions loglinear;
  loglinear.algorithm = FitAlgorithm::kLogLinear;
  EXPECT_FALSE(FitModel(model, inputs, y, loglinear).ok());
  // kAuto: falls through to iterative; whatever it returns must not be
  // the closed form (which cannot apply here).
  const auto out = FitModel(model, inputs, y, FitOptions{});
  if (out.ok()) {
    EXPECT_NE(out->algorithm_used, FitAlgorithm::kLogLinear);
  }
}

TEST(ClosedFormDegenerateTest, NonPositiveIntensityRoutesToIterative) {
  // log(y) undefined at y <= 0: the fast path must detect the domain
  // violation and hand the group to warm-started LM, which fits in
  // original space and handles the zero fine.
  Rng rng(5);
  PowerLawModel model;
  const size_t n = 40;
  Vector x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(1.0, 10.0);
    y[i] = 2.0 * std::pow(x[i], -0.7) + rng.Normal(0.0, 0.01);
  }
  y[7] = 0.0;    // domain violation for log
  y[23] = -0.05; // and a negative
  const Matrix inputs = ColumnMatrix(x);
  const auto out = FitModel(model, inputs, y, FitOptions{});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->algorithm_used, FitAlgorithm::kLevenbergMarquardt);
  EXPECT_NEAR(out->parameters[0], 2.0, 0.2);
  EXPECT_NEAR(out->parameters[1], -0.7, 0.1);
}

TEST(ClosedFormDegenerateTest, TinyGroupN2IsStillExact) {
  // n = 2 with 2 parameters is rejected by FitModel's n > p guard, so
  // drive the kernel directly: two points determine the line exactly.
  const Vector tx{std::log(2.0), std::log(8.0)};
  const Vector ty{std::log(3.0), std::log(12.0)};
  double b0 = 0.0, b1 = 0.0;
  SimpleRegressionSums sums;
  ASSERT_TRUE(SimpleOlsSolve(tx.data(), ty.data(), 2, &b0, &b1, &sums));
  EXPECT_NEAR(b1, 1.0, 1e-12);  // slope log(12/3)/log(8/2) = 1
  EXPECT_NEAR(std::exp(b0), 1.5, 1e-12);
}

// --- Scratch reuse -------------------------------------------------------

TEST(FitScratchTest, RepeatedFitsThroughOneScratchMatchFreshScratch) {
  Rng rng(17);
  PowerLawModel model;
  FitScratch reused;
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(5, 60));
    Vector x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(1.0, 9.0);
      y[i] = 1.2 * std::pow(x[i], -0.5) * rng.LogNormal(0.0, 0.05);
    }
    const Matrix inputs = ColumnMatrix(x);
    const auto with_reuse =
        FitModel(model, inputs, y, FitOptions{}, &reused);
    const auto fresh = FitModel(model, inputs, y, FitOptions{});
    ASSERT_TRUE(with_reuse.ok());
    ASSERT_TRUE(fresh.ok());
    // Bitwise identical: scratch reuse must not leak state between fits.
    EXPECT_EQ(with_reuse->parameters, fresh->parameters);
    EXPECT_EQ(with_reuse->standard_errors, fresh->standard_errors);
    EXPECT_EQ(with_reuse->quality.r_squared, fresh->quality.r_squared);
  }
}

TEST(FitScratchTest, IterativeFitsThroughOneScratchMatchFreshScratch) {
  Rng rng(23);
  PowerLawModel model;
  FitScratch reused;
  FitOptions lm;
  lm.algorithm = FitAlgorithm::kLevenbergMarquardt;
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(6, 50));
    Vector x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(1.0, 9.0);
      y[i] = 2.5 * std::pow(x[i], -1.1) * rng.LogNormal(0.0, 0.05);
    }
    const Matrix inputs = ColumnMatrix(x);
    const auto with_reuse = FitModel(model, inputs, y, lm, &reused);
    const auto fresh = FitModel(model, inputs, y, lm);
    ASSERT_TRUE(with_reuse.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(with_reuse->parameters, fresh->parameters);
    EXPECT_EQ(with_reuse->iterations, fresh->iterations);
  }
}

// --- Warm start ----------------------------------------------------------

TEST(ClosedFormWarmStartTest, ProvidesNearOptimalStartForLm) {
  Rng rng(31);
  PowerLawModel model;
  const size_t n = 60;
  Vector x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(1.0, 10.0);
    y[i] = 3.0 * std::pow(x[i], -0.8) * rng.LogNormal(0.0, 0.02);
  }
  const Matrix inputs = ColumnMatrix(x);
  FitScratch scratch;
  Vector warm;
  ASSERT_TRUE(ClosedFormWarmStart(model, inputs, y, &scratch, &warm));
  ASSERT_EQ(warm.size(), 2u);
  EXPECT_NEAR(warm[0], 3.0, 0.2);
  EXPECT_NEAR(warm[1], -0.8, 0.05);
  // LM from this start converges in very few iterations.
  FitOptions lm;
  lm.algorithm = FitAlgorithm::kLevenbergMarquardt;
  const auto out = FitModel(model, inputs, y, lm);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->converged);
  EXPECT_LE(out->iterations, 10u);
}

TEST(ClosedFormWarmStartTest, DeclinesModelsWithoutLinearization) {
  LogisticModel logistic;
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const Vector y{0.1, 0.3, 0.7, 0.9};
  FitScratch scratch;
  Vector warm;
  EXPECT_FALSE(
      ClosedFormWarmStart(logistic, ColumnMatrix(x), y, &scratch, &warm));
}

// --- Fast-path toggle ----------------------------------------------------

TEST(ClosedFormToggleTest, DisablingFastPathRestoresIterativeDispatch) {
  Rng rng(13);
  PowerLawModel model;
  const size_t n = 30;
  Vector x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(1.0, 8.0);
    y[i] = 1.8 * std::pow(x[i], -0.6) * rng.LogNormal(0.0, 0.03);
  }
  const Matrix inputs = ColumnMatrix(x);
  FitOptions off;
  off.closed_form_fast_path = false;
  const auto iter = FitModel(model, inputs, y, off);
  ASSERT_TRUE(iter.ok());
  EXPECT_EQ(iter->algorithm_used, FitAlgorithm::kLevenbergMarquardt);
  const auto fast = FitModel(model, inputs, y, FitOptions{});
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->algorithm_used, FitAlgorithm::kLogLinear);
  // Same minimizer either way (up to LM tolerance).
  for (size_t k = 0; k < 2; ++k) {
    const double scale = std::max(1.0, std::fabs(iter->parameters[k]));
    EXPECT_NEAR(fast->parameters[k], iter->parameters[k], 5e-2 * scale);
  }
}

}  // namespace
}  // namespace laws

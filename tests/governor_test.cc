#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>

#include "aqp/hybrid.h"
#include "aqp/model_aqp.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/governor.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "query/executor.h"
#include "query/query_context.h"
#include "storage/catalog.h"

namespace laws {
namespace {

// --- Env knob parsing ---------------------------------------------------

TEST(EnvTest, ParseInt64StrictAcceptsOnlyCleanIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64Strict("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64Strict("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64Strict("+5", &v));
  EXPECT_EQ(v, 5);

  v = 99;
  EXPECT_FALSE(ParseInt64Strict(nullptr, &v));
  EXPECT_FALSE(ParseInt64Strict("", &v));
  EXPECT_FALSE(ParseInt64Strict(" 42", &v));   // leading whitespace
  EXPECT_FALSE(ParseInt64Strict("42 ", &v));   // trailing whitespace
  EXPECT_FALSE(ParseInt64Strict("4096abc", &v));  // the old atol trap
  EXPECT_FALSE(ParseInt64Strict("0x10", &v));
  EXPECT_FALSE(ParseInt64Strict("1e3", &v));
  EXPECT_FALSE(ParseInt64Strict("99999999999999999999", &v));  // overflow
  EXPECT_EQ(v, 99) << "failed parse must not write the output";
}

TEST(EnvTest, ParseFlagValueSemantics) {
  EXPECT_FALSE(ParseFlagValue("0", true));
  EXPECT_FALSE(ParseFlagValue("false", true));
  EXPECT_FALSE(ParseFlagValue("FALSE", true));
  EXPECT_FALSE(ParseFlagValue("off", true));
  EXPECT_FALSE(ParseFlagValue("Off", true));
  EXPECT_TRUE(ParseFlagValue("1", false));
  EXPECT_TRUE(ParseFlagValue("yes", false));
  EXPECT_TRUE(ParseFlagValue("on", false));
  // Unset / empty keep the default.
  EXPECT_TRUE(ParseFlagValue(nullptr, true));
  EXPECT_FALSE(ParseFlagValue(nullptr, false));
  EXPECT_TRUE(ParseFlagValue("", true));
}

/// Every integer LAWS_* knob must survive a malformed value by falling
/// back to its default instead of silently misreading it.
TEST(EnvTest, MalformedIntegerKnobsFallBackToDefault) {
  const char* knobs[] = {"LAWS_THREADS", "LAWS_SCAN_BLOCK_ROWS",
                         "LAWS_QUERY_TIMEOUT_MS", "LAWS_QUERY_MEMBUDGET_MB"};
  const char* malformed[] = {"junk", "4096abc", " 8", "1e3", "0x10",
                             "99999999999999999999"};
  for (const char* knob : knobs) {
    for (const char* value : malformed) {
      ASSERT_EQ(setenv(knob, value, 1), 0);
      ResetEnvWarningsForTest();
      EXPECT_EQ(EnvInt64(knob, 1234, 0, int64_t{1} << 40), 1234)
          << knob << "=" << value;
    }
    ASSERT_EQ(setenv(knob, "8", 1), 0);
    EXPECT_EQ(EnvInt64(knob, 1234, 0, int64_t{1} << 40), 8) << knob;
    // Out of the caller's declared range is treated as malformed too.
    ASSERT_EQ(setenv(knob, "-3", 1), 0);
    ResetEnvWarningsForTest();
    EXPECT_EQ(EnvInt64(knob, 1234, 0, int64_t{1} << 40), 1234) << knob;
    ASSERT_EQ(unsetenv(knob), 0);
    EXPECT_EQ(EnvInt64(knob, 1234, 0, int64_t{1} << 40), 1234) << knob;
  }
}

/// Flag knobs: "0"/"false"/"off" disable, anything else non-empty
/// enables, unset keeps the default.
TEST(EnvTest, FlagKnobSemanticsPerKnob) {
  const char* knobs[] = {"LAWS_EXPR_TREEWALK", "LAWS_SCAN_DECODE",
                         "LAWS_TRACE"};
  for (const char* knob : knobs) {
    ASSERT_EQ(setenv(knob, "0", 1), 0);
    EXPECT_FALSE(EnvFlag(knob, true)) << knob;
    ASSERT_EQ(setenv(knob, "off", 1), 0);
    EXPECT_FALSE(EnvFlag(knob, true)) << knob;
    ASSERT_EQ(setenv(knob, "1", 1), 0);
    EXPECT_TRUE(EnvFlag(knob, false)) << knob;
    ASSERT_EQ(unsetenv(knob), 0);
    EXPECT_TRUE(EnvFlag(knob, true)) << knob;
    EXPECT_FALSE(EnvFlag(knob, false)) << knob;
  }
}

TEST(EnvTest, LimitsFromEnvConvertsUnitsAndSurvivesGarbage) {
  ASSERT_EQ(setenv("LAWS_QUERY_TIMEOUT_MS", "250", 1), 0);
  ASSERT_EQ(setenv("LAWS_QUERY_MEMBUDGET_MB", "2", 1), 0);
  ResourceLimits limits = QueryContext::LimitsFromEnv();
  EXPECT_EQ(limits.timeout_micros, 250000);
  EXPECT_EQ(limits.memory_budget_bytes, 2ull * 1024 * 1024);

  ASSERT_EQ(setenv("LAWS_QUERY_TIMEOUT_MS", "250ms", 1), 0);
  ASSERT_EQ(setenv("LAWS_QUERY_MEMBUDGET_MB", "-1", 1), 0);
  ResetEnvWarningsForTest();
  limits = QueryContext::LimitsFromEnv();
  EXPECT_EQ(limits.timeout_micros, 0);
  EXPECT_EQ(limits.memory_budget_bytes, 0u);

  ASSERT_EQ(unsetenv("LAWS_QUERY_TIMEOUT_MS"), 0);
  ASSERT_EQ(unsetenv("LAWS_QUERY_MEMBUDGET_MB"), 0);
  limits = QueryContext::LimitsFromEnv();
  EXPECT_EQ(limits.timeout_micros, 0);
  EXPECT_EQ(limits.memory_budget_bytes, 0u);
}

// --- Governor core ------------------------------------------------------

TEST(GovernorTest, UnlimitedGovernorPollsOkAndCounts) {
  QueryGovernor gov;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(gov.Poll().ok());
  EXPECT_EQ(gov.polls(), 5u);
  EXPECT_FALSE(gov.canceled());
}

TEST(GovernorTest, CancelIsStickyIdempotentAndCounted) {
  Counter* canceled = MetricsRegistry::Global().GetCounter("governor.canceled");
  const uint64_t before = canceled->value();

  QueryGovernor gov;
  gov.Cancel();
  gov.Cancel();  // idempotent
  EXPECT_TRUE(gov.canceled());
  Status s = gov.Poll();
  EXPECT_EQ(s.code(), StatusCode::kCanceled);
  // Sticky: polls keep failing, but the observation is recorded once.
  EXPECT_EQ(gov.Poll().code(), StatusCode::kCanceled);
  EXPECT_EQ(canceled->value(), before + 1);
}

TEST(GovernorTest, DeadlineTripsAndIsSticky) {
  ResourceLimits limits;
  limits.timeout_micros = 1;
  QueryGovernor gov(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(gov.Poll().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(gov.Poll().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(gov.canceled());
}

TEST(GovernorTest, GenerousDeadlinePollsOk) {
  ResourceLimits limits;
  limits.timeout_micros = 60 * 1000 * 1000;
  QueryGovernor gov(limits);
  EXPECT_TRUE(gov.Poll().ok());
}

TEST(GovernorTest, ChargeTracksPeakAndRollsBackOnOverflow) {
  ResourceLimits limits;
  limits.memory_budget_bytes = 1000;
  QueryGovernor gov(limits);

  EXPECT_TRUE(gov.Charge(600, "a").ok());
  EXPECT_EQ(gov.bytes_in_use(), 600u);
  Status s = gov.Charge(600, "b");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.ToString().find("query memory budget exceeded"),
            std::string::npos)
      << s.ToString();
  // The failed charge rolled back: accounting stays symmetric.
  EXPECT_EQ(gov.bytes_in_use(), 600u);
  EXPECT_TRUE(gov.Charge(400, "c").ok());
  EXPECT_EQ(gov.bytes_in_use(), 1000u);
  gov.Release(400);
  gov.Release(600);
  EXPECT_EQ(gov.bytes_in_use(), 0u);
  EXPECT_GE(gov.peak_bytes(), 1000u);
}

TEST(GovernorTest, ScopedChargeAccumulatesAndReleasesOnDestruction) {
  QueryGovernor gov;
  ScopedGovernor install(&gov);
  {
    ScopedCharge charge;
    EXPECT_TRUE(charge.Acquire(100, "x").ok());
    EXPECT_TRUE(charge.Acquire(50, "y").ok());
    EXPECT_EQ(charge.held_bytes(), 150u);
    EXPECT_EQ(gov.bytes_in_use(), 150u);
  }
  EXPECT_EQ(gov.bytes_in_use(), 0u);
  EXPECT_EQ(gov.peak_bytes(), 150u);
}

TEST(GovernorTest, ScopedChargeWithoutGovernorIsNoop) {
  ASSERT_EQ(QueryGovernor::Current(), nullptr);
  ScopedCharge charge;
  EXPECT_TRUE(charge.Acquire(1 << 20, "nothing").ok());
  EXPECT_EQ(charge.held_bytes(), 0u);
}

TEST(GovernorTest, ScopedGovernorNestsAndRestores) {
  EXPECT_EQ(QueryGovernor::Current(), nullptr);
  QueryGovernor outer, inner;
  {
    ScopedGovernor a(&outer);
    EXPECT_EQ(QueryGovernor::Current(), &outer);
    {
      ScopedGovernor b(&inner);
      EXPECT_EQ(QueryGovernor::Current(), &inner);
      {
        // nullptr is a shield: uninstalls for the scope.
        ScopedGovernor c(nullptr);
        EXPECT_EQ(QueryGovernor::Current(), nullptr);
      }
      EXPECT_EQ(QueryGovernor::Current(), &inner);
    }
    EXPECT_EQ(QueryGovernor::Current(), &outer);
  }
  EXPECT_EQ(QueryGovernor::Current(), nullptr);
}

Status PollThroughMacro() {
  LAWS_GOVERNOR_POLL();
  return Status::OK();
}

TEST(GovernorTest, PollMacroReturnsTypedErrorFromEnclosingFunction) {
  EXPECT_TRUE(PollThroughMacro().ok());  // no governor installed
  QueryGovernor gov;
  ScopedGovernor install(&gov);
  EXPECT_TRUE(PollThroughMacro().ok());
  gov.Cancel();
  EXPECT_EQ(PollThroughMacro().code(), StatusCode::kCanceled);
}

TEST(GovernorTest, DescribeLineRendersLimitsAndTrip) {
  ResourceLimits limits;
  limits.timeout_micros = 1500;
  limits.memory_budget_bytes = 4096;
  QueryGovernor gov(limits);
  std::string line = gov.DescribeLine();
  EXPECT_NE(line.find("governor: deadline=1.500ms budget=4096B"),
            std::string::npos)
      << line;
  gov.Cancel();
  (void)gov.Poll();
  EXPECT_NE(gov.DescribeLine().find("tripped=canceled"), std::string::npos);
}

// --- Governor across the thread pool ------------------------------------

TEST(GovernorParallelTest, WorkersSeeTheInstalledGovernor) {
  QueryGovernor gov;
  ScopedGovernor install(&gov);
  std::atomic<bool> all_saw{true};
  std::atomic<size_t> visited{0};
  ParallelForChunks(0, 100000, [&](size_t lo, size_t hi) {
    if (QueryGovernor::Current() != &gov) all_saw.store(false);
    visited.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_TRUE(all_saw.load());
  EXPECT_EQ(visited.load(), 100000u);
}

TEST(GovernorParallelTest, CanceledGovernorSkipsEveryChunk) {
  QueryGovernor gov;
  ScopedGovernor install(&gov);
  gov.Cancel();
  std::atomic<size_t> visited{0};
  ParallelForChunks(0, 100000, [&](size_t lo, size_t hi) {
    visited.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), 0u)
      << "chunks of a canceled query must not run";
  // The caller's re-poll after the barrier surfaces the sticky error.
  EXPECT_EQ(gov.Poll().code(), StatusCode::kCanceled);
}

TEST(GovernorParallelTest, NestedParallelForSkipsUnderCancellation) {
  QueryGovernor gov;
  ScopedGovernor install(&gov);
  gov.Cancel();
  std::atomic<size_t> inner_visited{0};
  ParallelForChunks(0, 1000, [&](size_t, size_t) {
    // Inner region runs inline on the worker; it must also be skipped.
    ParallelForChunks(0, 1000, [&](size_t lo, size_t hi) {
      inner_visited.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_visited.load(), 0u);
}

TEST(GovernorParallelTest, MidFlightCancelStopsRemainingWork) {
  QueryGovernor gov;
  ScopedGovernor install(&gov);
  std::atomic<size_t> polls_failed{0};
  std::thread canceler([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    gov.Cancel();
  });
  // Long cooperative loop: every chunk re-polls; once the cancel lands,
  // remaining iterations observe it.
  ParallelForChunks(0, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      if (QueryGovernor* g = QueryGovernor::Current()) {
        if (!g->Poll().ok()) {
          polls_failed.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  canceler.join();
  EXPECT_EQ(gov.Poll().code(), StatusCode::kCanceled);
  EXPECT_TRUE(gov.canceled());
}

// --- Governed query execution -------------------------------------------

Catalog MakeQueryCatalog(size_t rows = 512) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"id", DataType::kInt64, false},
              Field{"v", DataType::kDouble, false},
              Field{"tag", DataType::kString, false}}));
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                              Value::Double(static_cast<double>(i) * 0.5),
                              Value::String(i % 2 == 0 ? "even" : "odd")})
                    .ok());
  }
  cat.RegisterOrReplace("t", t);
  return cat;
}

const char kGovernedSql[] =
    "SELECT tag, COUNT(v), SUM(v) FROM t WHERE id >= 10 GROUP BY tag "
    "ORDER BY tag";

TEST(GovernedQueryTest, UnlimitedGovernorMatchesUngovernedRun) {
  Catalog cat = MakeQueryCatalog();
  auto plain = ExecuteQuery(cat, kGovernedSql);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto governed = ExecuteQueryGoverned(cat, kGovernedSql, ResourceLimits{});
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ(plain->ToString(64), governed->ToString(64));
}

TEST(GovernedQueryTest, PreCanceledContextReturnsCanceled) {
  Catalog cat = MakeQueryCatalog();
  QueryContext ctx{ResourceLimits{}};
  ctx.Cancel();
  auto result = ctx.Run([&] { return ExecuteQuery(cat, kGovernedSql); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCanceled);
}

TEST(GovernedQueryTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Catalog cat = MakeQueryCatalog();
  ResourceLimits limits;
  limits.timeout_micros = 1;
  QueryContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto result = ctx.Run([&] { return ExecuteQuery(cat, kGovernedSql); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernedQueryTest, TinyBudgetReturnsResourceExhausted) {
  Catalog cat = MakeQueryCatalog();
  ResourceLimits limits;
  limits.memory_budget_bytes = 1;
  auto result = ExecuteQueryGoverned(cat, kGovernedSql, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernedQueryTest, GovernorErrorLeavesCatalogUsable) {
  Catalog cat = MakeQueryCatalog();
  ResourceLimits limits;
  limits.memory_budget_bytes = 1;
  ASSERT_FALSE(ExecuteQueryGoverned(cat, kGovernedSql, limits).ok());
  // The failed query left nothing torn: the same catalog answers the
  // same query correctly without a governor.
  auto plain = ExecuteQuery(cat, kGovernedSql);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->num_rows(), 2u);
}

TEST(GovernedQueryTest, SortAndDistinctHonorCancellation) {
  Catalog cat = MakeQueryCatalog(2048);
  QueryContext ctx{ResourceLimits{}};
  ctx.Cancel();
  auto sorted = ctx.Run([&] {
    return ExecuteQuery(cat, "SELECT id FROM t ORDER BY v DESC");
  });
  EXPECT_EQ(sorted.status().code(), StatusCode::kCanceled);
  auto distinct = ctx.Run([&] {
    return ExecuteQuery(cat, "SELECT DISTINCT tag FROM t");
  });
  EXPECT_EQ(distinct.status().code(), StatusCode::kCanceled);
}

TEST(GovernedQueryTest, ExplainAnalyzeRendersGovernorLineAndStopLine) {
  Catalog cat = MakeQueryCatalog();
  QueryContext ok_ctx{ResourceLimits{}};
  auto analyzed =
      ok_ctx.Run([&] { return ExplainAnalyzeQuery(cat, kGovernedSql); });
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("governor: deadline=none budget=none"),
            std::string::npos)
      << *analyzed;

  QueryContext canceled_ctx{ResourceLimits{}};
  canceled_ctx.Cancel();
  auto stopped = canceled_ctx.Run(
      [&] { return ExplainAnalyzeQuery(cat, kGovernedSql); });
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_NE(stopped->find("query stopped:"), std::string::npos) << *stopped;
  EXPECT_NE(stopped->find("tripped=canceled"), std::string::npos) << *stopped;
}

// --- Fault-injection sites ----------------------------------------------

class GovernorFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }
};

TEST_F(GovernorFaultTest, PollFaultForcesCancellation) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kError;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("governor/poll", spec);
  Catalog cat = MakeQueryCatalog();
  auto result = ExecuteQueryGoverned(cat, kGovernedSql, ResourceLimits{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCanceled);
  EXPECT_GT(FaultInjector::Instance().HitCount("governor/poll"), 0u);
}

TEST_F(GovernorFaultTest, AllocFaultForcesBudgetExhaustion) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kError;
  spec.max_triggers = 1;
  FaultInjector::Instance().Arm("governor/alloc", spec);
  Catalog cat = MakeQueryCatalog();
  auto result = ExecuteQueryGoverned(cat, kGovernedSql, ResourceLimits{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("[injected]"), std::string::npos)
      << result.status().ToString();
}

// --- Fits under the governor --------------------------------------------

TEST(GovernedFitTest, CanceledFitRegistersNoModel) {
  Catalog data;
  ModelCatalog models;
  Rng rng(11);
  auto t = std::make_shared<Table>(
      Schema({Field{"g", DataType::kInt64, false},
              Field{"x", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
  for (int g = 1; g <= 8; ++g) {
    for (int i = 0; i < 32; ++i) {
      const double x = 0.1 + 0.05 * i;
      ASSERT_TRUE(t->AppendRow({Value::Int64(g), Value::Double(x),
                                Value::Double((0.5 + 0.1 * g) *
                                              std::pow(x, -0.7))})
                      .ok());
    }
  }
  data.RegisterOrReplace("obs", t);
  Session session(&data, &models);
  FitRequest request;
  request.table = "obs";
  request.model_source = "power_law";
  request.input_columns = {"x"};
  request.output_column = "y";
  request.group_column = "g";

  QueryContext ctx{ResourceLimits{}};
  ctx.Cancel();
  auto report = ctx.Run([&] { return session.Fit(request); });
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCanceled);
  EXPECT_EQ(models.size(), 0u) << "a canceled fit must not register a model";

  // Same session, no governor: the fit succeeds — nothing was torn.
  auto retry = session.Fit(request);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(models.size(), 1u);
}

// --- Overload-graceful degradation --------------------------------------

/// Grouped power-law fixture with a captured model and domains, mirroring
/// the AQP tests, so the hybrid engine has a model answer to degrade to.
struct DegradeFixture {
  Catalog data;
  ModelCatalog models;
  DomainRegistry domains;
  std::unique_ptr<Session> session;
  std::unique_ptr<ModelQueryEngine> engine;
  std::vector<double> bands = {0.12, 0.15, 0.16, 0.18};

  DegradeFixture() {
    Rng rng(5);
    auto t = std::make_shared<Table>(
        Schema({Field{"source", DataType::kInt64, false},
                Field{"wavelength", DataType::kDouble, false},
                Field{"intensity", DataType::kDouble, false}}));
    // Big enough that the exact path's filtered materialization dwarfs
    // the model path's ~20-row reconstructed grid, so a budget can sit
    // between them with a wide margin on both sides.
    for (int s = 1; s <= 20; ++s) {
      const double p = 0.5 + 0.05 * s;
      for (int i = 0; i < 400; ++i) {
        const double nu = bands[static_cast<size_t>(rng.UniformInt(0, 3))];
        EXPECT_TRUE(t->AppendRow({Value::Int64(s), Value::Double(nu),
                                  Value::Double(p * std::pow(nu, -0.7) *
                                                std::exp(rng.Normal(0, 0.01)))})
                        .ok());
      }
    }
    data.RegisterOrReplace("measurements", t);
    session = std::make_unique<Session>(&data, &models);
    FitRequest r;
    r.table = "measurements";
    r.model_source = "power_law";
    r.input_columns = {"wavelength"};
    r.output_column = "intensity";
    r.group_column = "source";
    EXPECT_TRUE(session->Fit(r).ok());
    domains.Register("measurements", "wavelength",
                     ColumnDomain::Explicit(bands));
    engine = std::make_unique<ModelQueryEngine>(&data, &models, &domains);
  }
};

/// Enumerates all 20 groups at a pinned wavelength: the model path
/// reconstructs ~20 tuples while the exact path materializes a ~2000-row
/// filtered table, so kDegradeBudget (16 KiB) lets the model answer
/// through and stops the exact scan.
const char kEnumSql[] =
    "SELECT AVG(intensity) FROM measurements WHERE wavelength = 0.12";
constexpr uint64_t kDegradeBudget = 16 * 1024;

TEST(DegradationTest, BudgetOverloadDegradesToModelAnswer) {
  DegradeFixture f;
  // An impossible quality bar forces the exact fallback; the budget then
  // stops the exact path, and the engine serves the (rejected) model
  // answer instead of failing.
  HybridOptions opts;
  opts.min_quality = 1.01;
  HybridQueryEngine hybrid(&f.data, f.engine.get(), opts);
  Counter* degraded =
      MetricsRegistry::Global().GetCounter("governor.degraded_to_aqp");
  const uint64_t before = degraded->value();

  ResourceLimits limits;
  limits.memory_budget_bytes = kDegradeBudget;
  QueryContext ctx(limits);
  auto answer = ctx.Run([&] { return hybrid.Execute(kEnumSql); });
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->degraded);
  EXPECT_TRUE(answer->approximate);
  EXPECT_EQ(answer->fallback_reason, "memory budget");
  EXPECT_EQ(answer->method.rfind("model", 0), 0u)
      << "degraded answer must come from the model path, got "
      << answer->method;
  EXPECT_EQ(answer->table.num_rows(), 1u);
  EXPECT_EQ(degraded->value(), before + 1);
}

TEST(DegradationTest, CancellationNeverDegrades) {
  DegradeFixture f;
  HybridOptions opts;
  opts.min_quality = 1.01;
  HybridQueryEngine hybrid(&f.data, f.engine.get(), opts);

  QueryContext ctx{ResourceLimits{}};
  ctx.Cancel();
  auto answer = ctx.Run([&] { return hybrid.Execute(kEnumSql); });
  ASSERT_FALSE(answer.ok())
      << "a canceled query must not return an answer at all";
  EXPECT_EQ(answer.status().code(), StatusCode::kCanceled);
}

TEST(DegradationTest, NoModelAnswerMeansNoDegradation) {
  DegradeFixture f;
  // No domains and an unpinned wavelength: the model path cannot answer,
  // so overload propagates as the typed governor error instead of
  // degrading.
  DomainRegistry empty;
  ModelQueryEngine no_domains(&f.data, &f.models, &empty);
  HybridQueryEngine hybrid(&f.data, &no_domains);

  ResourceLimits limits;
  limits.memory_budget_bytes = kDegradeBudget;
  QueryContext ctx(limits);
  auto answer = ctx.Run(
      [&] { return hybrid.Execute("SELECT AVG(intensity) FROM measurements"); });
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace laws

#include <gtest/gtest.h>

#include <cmath>

#include "anomaly/anomaly.h"
#include "aqp/domain.h"
#include "aqp/hybrid.h"
#include "aqp/model_aqp.h"
#include "compress/semantic.h"
#include "core/persistence.h"
#include "core/session.h"
#include "core/strawman.h"
#include "lofar/generator.h"
#include "lofar/pipeline.h"
#include "model/grouped_fit.h"
#include "model/model.h"
#include "query/executor.h"
#include "workload/retail.h"

namespace laws {
namespace {

/// End-to-end Figure 2 walk on a small LOFAR-like dataset:
///  (1) user issues a fit against the strawman table,
///  (2) the engine executes it,
///  (3) model + parameters + quality land in the model catalog,
///  (4) an approximate query is answered from the model alone,
///  (5) the answer carries error bounds and is close to the exact one.
TEST(IntegrationTest, Figure2InterceptionLoop) {
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);

  LofarConfig cfg;
  cfg.num_sources = 100;
  cfg.num_rows = 4000;
  cfg.anomalous_fraction = 0.0;
  cfg.band_jitter = 0.0;  // exact band frequencies -> enumerable domain
  auto pipeline = RunLofarPipeline(cfg, &data, &session, "measurements");
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // (3) captured.
  EXPECT_EQ(models.size(), 1u);
  auto captured = models.Get(pipeline->model_id);
  ASSERT_TRUE(captured.ok());
  EXPECT_GT((*captured)->median_r_squared, 0.9);

  // (4) approximate query from the model only.
  DomainRegistry domains;
  domains.Register("measurements", "wavelength",
                   ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine aqp(&data, &models, &domains);
  const std::string q =
      "SELECT intensity FROM measurements WHERE source = 42 AND wavelength "
      "= 0.15";
  auto approx = aqp.Execute(q);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_EQ(approx->raw_rows_accessed, 0u);
  ASSERT_EQ(approx->table.num_rows(), 1u);

  // (5) compare against ground truth; the model answer must sit within a
  // few error bounds.
  const auto& truth = pipeline->dataset.truth[41];  // source 42
  ASSERT_EQ(truth.source, 42);
  const double expected = truth.p * std::pow(0.15, truth.alpha);
  const double got = approx->table.GetValue(0, 0).dbl();
  EXPECT_GT(approx->max_error_bound, 0.0);
  EXPECT_NEAR(got, expected, expected * 0.1);
}

TEST(IntegrationTest, ApproximateAggregatesTrackExactOnes) {
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  LofarConfig cfg;
  cfg.num_sources = 150;
  cfg.num_rows = 9000;
  cfg.anomalous_fraction = 0.0;
  cfg.band_jitter = 0.0;
  cfg.noise_sd = 0.02;
  auto pipeline = RunLofarPipeline(cfg, &data, &session, "m");
  ASSERT_TRUE(pipeline.ok());

  DomainRegistry domains;
  domains.Register("m", "wavelength", ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine aqp(&data, &models, &domains);

  const std::string q =
      "SELECT AVG(intensity) FROM m WHERE wavelength = 0.12";
  auto exact = ExecuteQuery(data, q);
  auto approx = aqp.Execute(q);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  // The grid answer weights every source equally while the exact answer
  // weights sources by their (random) observation counts at the band, so a
  // few percent of drift is inherent to grid semantics (paper §4.2).
  const double exact_avg = exact->GetValue(0, 0).dbl();
  const double approx_avg = approx->table.GetValue(0, 0).dbl();
  EXPECT_NEAR(approx_avg, exact_avg, std::fabs(exact_avg) * 0.1);
}

TEST(IntegrationTest, SemanticCompressionOfCapturedModelRoundTrips) {
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  LofarConfig cfg;
  cfg.num_sources = 80;
  cfg.num_rows = 3200;
  auto pipeline = RunLofarPipeline(cfg, &data, &session, "m");
  ASSERT_TRUE(pipeline.ok());

  auto table = *data.Get("m");
  PowerLawModel model;
  GroupedFitSpec spec;
  spec.group_column = "source";
  spec.input_columns = {"wavelength"};
  spec.output_column = "intensity";
  auto fits = FitGrouped(model, *table, spec);
  ASSERT_TRUE(fits.ok());
  auto compressed = SemanticCompress(*table, model, *fits, spec);
  ASSERT_TRUE(compressed.ok());
  auto back = SemanticDecompress(*compressed);
  ASSERT_TRUE(back.ok());
  const Column& y0 = *table->ColumnByName("intensity").value();
  const Column& y1 = *back->ColumnByName("intensity").value();
  for (size_t i = 0; i < y0.size(); i += 101) {
    EXPECT_EQ(y1.DoubleAt(i), y0.DoubleAt(i));
  }
  // A well-fitting model should beat a flat double dump for the output
  // column path (residuals + params vs raw 8B/row).
  EXPECT_LT(compressed->OutputColumnBytes(),
            table->num_rows() * sizeof(double));
}

TEST(IntegrationTest, DataChangeInvalidatesThenRefreshesAqp) {
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  LofarConfig cfg;
  cfg.num_sources = 50;
  cfg.num_rows = 2000;
  cfg.band_jitter = 0.0;
  auto pipeline = RunLofarPipeline(cfg, &data, &session, "m");
  ASSERT_TRUE(pipeline.ok());

  DomainRegistry domains;
  domains.Register("m", "wavelength", ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine aqp(&data, &models, &domains);
  const std::string q =
      "SELECT intensity FROM m WHERE source = 5 AND wavelength = 0.15";
  ASSERT_TRUE(aqp.Execute(q).ok());

  // Append data: the captured model is stale, AQP refuses.
  auto table = *data.Get("m");
  ASSERT_TRUE(table
                  ->AppendRow({Value::Int64(5), Value::Double(0.15),
                               Value::Double(3.0)})
                  .ok());
  EXPECT_FALSE(aqp.Execute(q).ok());

  // The lifecycle sweep refits; AQP works again.
  auto sweep = session.RefitStale();
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->refitted, 1u);
  EXPECT_TRUE(aqp.Execute(q).ok());
}

TEST(IntegrationTest, CompetingModelsArbitratedByQuality) {
  // Fit both a power law (right) and a global linear model (wrong) to the
  // same output; the catalog must prefer the power law.
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  LofarConfig cfg;
  cfg.num_sources = 40;
  cfg.num_rows = 1600;
  cfg.anomalous_fraction = 0.0;
  auto pipeline = RunLofarPipeline(cfg, &data, &session, "m");
  ASSERT_TRUE(pipeline.ok());

  FitRequest linear;
  linear.table = "m";
  linear.model_source = "linear(1)";
  linear.input_columns = {"wavelength"};
  linear.output_column = "intensity";
  auto linear_report = session.Fit(linear);
  ASSERT_TRUE(linear_report.ok());

  auto table = *data.Get("m");
  auto best = models.BestModelFor("m", "intensity", table->data_version());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ((*best)->model_source, "power_law");
}

TEST(IntegrationTest, RetailSeasonalModelEndToEnd) {
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  RetailConfig cfg;
  cfg.num_skus = 30;
  cfg.num_days = 84;
  auto retail = GenerateRetail(cfg);
  ASSERT_TRUE(retail.ok());
  data.RegisterOrReplace("sales",
                         std::make_shared<Table>(std::move(retail->sales)));

  FitRequest r;
  r.table = "sales";
  r.model_source = "seasonal(7)";
  r.input_columns = {"day"};
  r.output_column = "units";
  r.group_column = "sku";
  auto report = session.Fit(r);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_groups, 30u);
  EXPECT_GT(report->median_r_squared, 0.8);

  // Days form an enumerable integer domain — infer it from the column.
  auto table = *data.Get("sales");
  auto day_domain =
      DomainRegistry::InferFromColumn(*table->ColumnByName("day").value());
  ASSERT_TRUE(day_domain.ok());
  EXPECT_EQ(day_domain->kind, ColumnDomain::Kind::kIntegerRange);
  DomainRegistry domains;
  domains.Register("sales", "day", std::move(*day_domain));
  ModelQueryEngine aqp(&data, &models, &domains);

  const std::string q =
      "SELECT SUM(units) FROM sales WHERE sku = 3 AND day >= 10 AND day <= "
      "20";
  auto exact = ExecuteQuery(data, q);
  auto approx = aqp.Execute(q);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_NEAR(approx->table.GetValue(0, 0).dbl(),
              exact->GetValue(0, 0).dbl(),
              std::fabs(exact->GetValue(0, 0).dbl()) * 0.1);
}

TEST(IntegrationTest, CapturedModelsSurvivePersistenceAndStillAnswer) {
  // Fit, save, reload into a fresh engine, and answer approximately from
  // the reloaded model catalog — the "retain models forever" loop.
  LofarConfig cfg;
  cfg.num_sources = 60;
  cfg.num_rows = 2400;
  cfg.band_jitter = 0.0;
  std::vector<uint8_t> image;
  double original_answer = 0.0;
  const std::string q =
      "SELECT intensity FROM m WHERE source = 9 AND wavelength = 0.16";
  {
    Catalog data;
    ModelCatalog models;
    Session session(&data, &models);
    auto pipeline = RunLofarPipeline(cfg, &data, &session, "m");
    ASSERT_TRUE(pipeline.ok());
    DomainRegistry domains;
    domains.Register("m", "wavelength", ColumnDomain::Explicit(cfg.bands));
    ModelQueryEngine aqp(&data, &models, &domains);
    auto before = aqp.Execute(q);
    ASSERT_TRUE(before.ok());
    original_answer = before->table.GetValue(0, 0).dbl();
    auto bytes = SaveDatabaseToBytes(data, models);
    ASSERT_TRUE(bytes.ok());
    image = std::move(*bytes);
  }
  Catalog data2;
  ModelCatalog models2;
  ASSERT_TRUE(LoadDatabaseFromBytes(image, &data2, &models2).ok());
  DomainRegistry domains2;
  domains2.Register("m", "wavelength", ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine aqp2(&data2, &models2, &domains2);
  auto after = aqp2.Execute(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->raw_rows_accessed, 0u);
  // Identical parameters -> identical reconstruction.
  EXPECT_DOUBLE_EQ(after->table.GetValue(0, 0).dbl(), original_answer);
}

TEST(IntegrationTest, StrawmanToHybridRoundTrip) {
  // The full user story: strawman fit -> transparent hybrid querying.
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  LofarConfig cfg;
  cfg.num_sources = 50;
  cfg.num_rows = 2000;
  cfg.band_jitter = 0.0;
  auto gen = GenerateLofar(cfg);
  ASSERT_TRUE(gen.ok());
  data.RegisterOrReplace("m",
                         std::make_shared<Table>(std::move(gen->observations)));

  Strawman df(&session, "m");
  auto report = df.GroupBy("source").Fit("power_law", {"wavelength"},
                                         "intensity");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->median_r_squared, 0.85);

  DomainRegistry domains;
  domains.Register("m", "wavelength", ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine model_engine(&data, &models, &domains);
  HybridQueryEngine hybrid(&data, &model_engine);
  auto fast = hybrid.Execute(
      "SELECT intensity FROM m WHERE source = 3 AND wavelength = 0.12");
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(fast->approximate);
  // A query outside the model's columns transparently runs exact.
  auto exact = hybrid.Execute("SELECT COUNT(*) FROM m");
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(exact->approximate);
  EXPECT_EQ(exact->table.GetValue(0, 0).int64(),
            static_cast<int64_t>(cfg.num_rows));
}

TEST(IntegrationTest, ParameterTableJoinsBackToObservations) {
  // Register the captured parameter table and JOIN it against raw
  // observations — the parameter table is a first-class table.
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  LofarConfig cfg;
  cfg.num_sources = 30;
  cfg.num_rows = 1200;
  auto pipeline = RunLofarPipeline(cfg, &data, &session, "m");
  ASSERT_TRUE(pipeline.ok());
  auto captured = models.Get(pipeline->model_id);
  ASSERT_TRUE(captured.ok());
  data.RegisterOrReplace(
      "params", std::make_shared<Table>((*captured)->parameter_table));

  auto joined = ExecuteQuery(
      data,
      "SELECT source, COUNT(*) AS n, MAX(r_squared) AS r2 FROM m JOIN "
      "params ON source = source GROUP BY source ORDER BY source LIMIT 5");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ASSERT_EQ(joined->num_rows(), 5u);
  // Every joined row carries the fit quality; counts match raw multiplicity.
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    EXPECT_GT(joined->GetValue(r, 1).int64(), 0);
    EXPECT_GT(joined->GetValue(r, 2).dbl(), 0.0);
  }
}

TEST(IntegrationTest, AnomalyScreeningAfterCapture) {
  Catalog data;
  ModelCatalog models;
  Session session(&data, &models);
  LofarConfig cfg;
  cfg.num_sources = 300;
  cfg.num_rows = 12000;
  cfg.anomalous_fraction = 0.05;
  auto pipeline = RunLofarPipeline(cfg, &data, &session, "m");
  ASSERT_TRUE(pipeline.ok());
  auto captured = models.Get(pipeline->model_id);
  ASSERT_TRUE(captured.ok());
  // Source brightness spans decades, so absolute residual SE is
  // heteroscedastic across groups; screen on the scale-free R² criterion.
  AnomalyOptions options;
  options.r_squared_threshold = 0.5;
  options.rse_factor = 1e18;
  auto report = ScoreGroups(**captured, options);
  ASSERT_TRUE(report.ok());

  // Recall: most planted anomalies are flagged. Precision: most flagged
  // are planted.
  std::set<int64_t> planted;
  for (const auto& t : pipeline->dataset.truth) {
    if (t.anomalous) planted.insert(t.source);
  }
  ASSERT_GT(planted.size(), 0u);
  size_t tp = 0, fp = 0;
  for (const auto& s : report->ranked) {
    if (!s.flagged) continue;
    (planted.count(s.group_key) > 0 ? tp : fp) += 1;
  }
  EXPECT_GT(static_cast<double>(tp) / static_cast<double>(planted.size()),
            0.9);
  if (tp + fp > 0) {
    EXPECT_GT(static_cast<double>(tp) / static_cast<double>(tp + fp), 0.8);
  }
}

}  // namespace
}  // namespace laws

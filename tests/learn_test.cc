#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aqp/domain.h"
#include "aqp/hybrid.h"
#include "aqp/model_aqp.h"
#include "common/governor.h"
#include "common/metrics.h"
#include "learn/learner.h"
#include "learn/loop.h"
#include "query/parser.h"
#include "serve/server.h"
#include "storage/catalog.h"

namespace laws {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

/// Deterministic jitter (no RNG): bounded, mean-free, varied.
double Jitter(size_t i, double amplitude) {
  return amplitude * std::sin(static_cast<double>(i) * 1.7 + 0.3);
}

TablePtr MakeXY() {
  return std::make_shared<Table>(
      Schema({Field{"x", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
}

Status AppendLinear(const TablePtr& t, size_t first, size_t count,
                    double intercept, double slope, double noise) {
  for (size_t i = first; i < first + count; ++i) {
    const double x = static_cast<double>(i + 1);
    const double y = intercept + slope * x + Jitter(i, noise);
    LAWS_RETURN_IF_ERROR(t->AppendRow({Value::Double(x), Value::Double(y)}));
  }
  return Status::OK();
}

/// Runs one harvesting scan: the statement references both columns, so
/// the learner tracks both (x, y) orderings across all three families.
void Scan(Learner* learner, const Catalog& data, const ModelCatalog& models) {
  auto stmt = ParseSelect("SELECT x, y FROM t WHERE x >= 0");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  learner->OnExactScan(*stmt, data, models);
}

LearnerOptions EnabledOptions() {
  LearnerOptions o;
  o.enabled = true;
  return o;
}

TEST(LearnerOptionsTest, FromEnvParsesKnobs) {
  ::setenv("LAWS_LEARNING", "1", 1);
  ::setenv("LAWS_LEARN_SCAN_ROWS", "1024", 1);
  ::setenv("LAWS_LEARN_SCAN_PAIRS", "2", 1);
  ::setenv("LAWS_LEARN_MAX_CANDIDATES", "16", 1);
  ::setenv("LAWS_LEARN_MIN_OBS", "32", 1);
  ::setenv("LAWS_LEARN_DRIFT_Z", "8", 1);
  ::setenv("LAWS_LEARN_MAX_MODELS", "12", 1);
  const LearnerOptions o = LearnerOptions::FromEnv();
  EXPECT_TRUE(o.enabled);
  EXPECT_EQ(o.max_rows_per_scan, 1024u);
  EXPECT_EQ(o.max_pairs_per_scan, 2u);
  EXPECT_EQ(o.max_candidates, 16u);
  EXPECT_EQ(o.min_observations, 32u);
  EXPECT_DOUBLE_EQ(o.drift_z, 8.0);
  EXPECT_EQ(o.max_models, 12u);
  ::unsetenv("LAWS_LEARNING");
  ::unsetenv("LAWS_LEARN_SCAN_ROWS");
  ::unsetenv("LAWS_LEARN_SCAN_PAIRS");
  ::unsetenv("LAWS_LEARN_MAX_CANDIDATES");
  ::unsetenv("LAWS_LEARN_MIN_OBS");
  ::unsetenv("LAWS_LEARN_DRIFT_Z");
  ::unsetenv("LAWS_LEARN_MAX_MODELS");

  const LearnerOptions d = LearnerOptions::FromEnv();
  EXPECT_FALSE(d.enabled);
  EXPECT_EQ(d.max_rows_per_scan, 4096u);
}

TEST(LearnerTest, DisabledLearnerIsInert) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.0).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  LearnerOptions off;
  off.enabled = false;
  Learner learner(off);
  Scan(&learner, data, models);
  EXPECT_EQ(learner.num_candidates(), 0u);
  EXPECT_FALSE(learner.HasPendingWork());
  EXPECT_FALSE(learner.RejectModel(1, nullptr));
  EXPECT_NE(learner.StatusString().find("learning: off"), std::string::npos);
}

TEST(LearnerTest, RepeatedScansHarvestNothingTwice) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.0).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);
  // Two numeric columns -> both orderings x three candidate families.
  EXPECT_EQ(learner.num_candidates(), 6u);
  EXPECT_EQ(learner.VerifyCandidatesAgainstBatch(data, 1e-6), "");

  // The same scan again over unchanged data: the row-range reservation
  // makes it a no-op, so repeated queries cannot double-count rows.
  const uint64_t rows_before = CounterValue("learn.harvest.rows");
  Scan(&learner, data, models);
  EXPECT_EQ(CounterValue("learn.harvest.rows"), rows_before);
  EXPECT_EQ(learner.VerifyCandidatesAgainstBatch(data, 1e-6), "");
}

TEST(LearnerTest, IngestedRowsHarvestIncrementally) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.0).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);

  ASSERT_TRUE(AppendLinear(t, 64, 32, 3.0, 2.0, 0.0).ok());
  const uint64_t rows_before = CounterValue("learn.harvest.rows");
  Scan(&learner, data, models);
  // Only the 32 fresh rows fold in, once per candidate accumulator.
  EXPECT_EQ(CounterValue("learn.harvest.rows") - rows_before,
            32u * learner.num_candidates());
  EXPECT_EQ(learner.VerifyCandidatesAgainstBatch(data, 1e-6), "");
}

TEST(LearnerTest, TableReplacementResetsCandidates) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.0).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);

  // Replace the table wholesale with a shorter one: version/size go
  // backwards, so accumulators restart instead of blending populations.
  TablePtr fresh = MakeXY();
  ASSERT_TRUE(AppendLinear(fresh, 0, 16, -1.0, 0.5, 0.0).ok());
  data.RegisterOrReplace("t", fresh);
  const uint64_t resets_before = CounterValue("learn.candidates.reset");
  Scan(&learner, data, models);
  EXPECT_GT(CounterValue("learn.candidates.reset"), resets_before);
  EXPECT_EQ(learner.VerifyCandidatesAgainstBatch(data, 1e-6), "");
}

TEST(LearnerTest, ApplyPromotesBestFamilyPerPair) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.05).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);
  ASSERT_TRUE(learner.HasPendingWork());

  const LearnTickReport report = learner.Apply(data, &models);
  EXPECT_GE(report.promoted, 1u);
  EXPECT_TRUE(report.did_work());

  bool found = false;
  for (const CapturedModel* m : models.ModelsForTable("t")) {
    if (m->input_columns.size() == 1 && m->input_columns[0] == "x" &&
        m->output_column == "y") {
      found = true;
      EXPECT_GT(m->quality.adjusted_r_squared, 0.99);
      EXPECT_EQ(m->rows_fitted, 64u);
      EXPECT_FALSE(ModelCatalog::IsStale(*m, t->data_version()));
    }
  }
  EXPECT_TRUE(found) << "no harvested model covers (t, x -> y)";

  // Nothing new: a second pass must be a no-op (no epoch churn upstream).
  EXPECT_FALSE(learner.HasPendingWork());
  EXPECT_FALSE(learner.Apply(data, &models).did_work());
}

TEST(LearnerTest, RefineTightensIntervalAndKeepsId) {
  Catalog data;
  TablePtr t = MakeXY();
  // Noisy first batch, clean ingest: the pooled interval strictly
  // tightens, so the refine gate must accept deterministically.
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.1).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);
  ASSERT_GE(learner.Apply(data, &models).promoted, 1u);

  uint64_t id = 0;
  std::string source;
  double old_rse = 0.0;
  size_t old_n = 0;
  for (const CapturedModel* m : models.ModelsForTable("t")) {
    if (m->input_columns[0] == "x" && m->output_column == "y") {
      id = m->id;
      source = m->model_source;
      old_rse = m->quality.residual_standard_error;
      old_n = m->quality.n_observations;
    }
  }
  ASSERT_NE(id, 0u);
  ASSERT_GT(old_rse, 0.0);

  ASSERT_TRUE(AppendLinear(t, 64, 96, 3.0, 2.0, 0.0).ok());
  Scan(&learner, data, models);
  const LearnTickReport report = learner.Apply(data, &models);
  EXPECT_GE(report.refined, 1u);

  auto refreshed = models.Get(id);
  ASSERT_TRUE(refreshed.ok()) << "refinement must keep the id stable";
  EXPECT_EQ((*refreshed)->model_source, source);
  EXPECT_LT((*refreshed)->quality.residual_standard_error, old_rse);
  EXPECT_GT((*refreshed)->quality.n_observations, old_n);
  EXPECT_EQ((*refreshed)->rows_fitted, t->num_rows());
  EXPECT_FALSE(ModelCatalog::IsStale(**refreshed, t->data_version()))
      << "refinement must re-freshen the model";
}

TEST(LearnerTest, RefineRejectedWhenIntervalWouldWiden) {
  Catalog data;
  TablePtr t = MakeXY();
  // Clean first batch, noisy ingest: re-solving would widen the served
  // interval, so the published fit must stay exactly as it was.
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.0).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);
  ASSERT_GE(learner.Apply(data, &models).promoted, 1u);

  uint64_t id = 0;
  Vector before_params;
  for (const CapturedModel* m : models.ModelsForTable("t")) {
    if (m->input_columns[0] == "x" && m->output_column == "y") {
      id = m->id;
      before_params = m->parameters;
    }
  }
  ASSERT_NE(id, 0u);
  ASSERT_FALSE(before_params.empty());

  ASSERT_TRUE(AppendLinear(t, 64, 96, 3.0, 2.0, 0.5).ok());
  Scan(&learner, data, models);
  const LearnTickReport report = learner.Apply(data, &models);
  EXPECT_GE(report.refine_rejected, 1u);

  auto kept = models.Get(id);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ((*kept)->parameters, before_params)
      << "a rejected refine must not touch the published fit";
}

TEST(LearnerTest, DriftFlagsRejectsAndRefits) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.05).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);
  ASSERT_GE(learner.Apply(data, &models).promoted, 1u);

  uint64_t model_id = 0;
  for (const CapturedModel* m : models.ModelsForTable("t")) {
    if (m->input_columns[0] == "x" && m->output_column == "y") {
      model_id = m->id;
    }
  }
  ASSERT_NE(model_id, 0u);
  EXPECT_FALSE(learner.RejectModel(model_id, nullptr));

  // The law changes: fresh rows sit 5 units above the fitted line. The
  // next scan's residual tests must flag the model.
  ASSERT_TRUE(AppendLinear(t, 64, 40, 8.0, 2.0, 0.01).ok());
  const uint64_t detected_before = CounterValue("learn.drift.detected");
  Scan(&learner, data, models);
  EXPECT_GT(CounterValue("learn.drift.detected"), detected_before);
  EXPECT_GE(learner.num_drifted(), 1u);

  std::string why;
  EXPECT_TRUE(learner.RejectModel(model_id, &why));
  EXPECT_NE(why.find("drift-flagged"), std::string::npos) << why;

  // One maintenance pass refits the model from the current table — same
  // id, fresh version, flag cleared.
  const LearnTickReport report = learner.Apply(data, &models);
  EXPECT_GE(report.refits, 1u);
  EXPECT_EQ(learner.num_drifted(), 0u);
  EXPECT_FALSE(learner.RejectModel(model_id, nullptr));
  auto refreshed = models.Get(model_id);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_FALSE(ModelCatalog::IsStale(**refreshed, t->data_version()));
}

TEST(LearnerTest, HybridArbitrationRejectsDriftFlaggedModel) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.05).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;
  DomainRegistry domains;

  Learner learner(EnabledOptions());
  Scan(&learner, data, models);
  ASSERT_GE(learner.Apply(data, &models).promoted, 1u);
  uint64_t model_id = 0;
  for (const CapturedModel* m : models.ModelsForTable("t")) {
    if (m->input_columns[0] == "x" && m->output_column == "y") {
      model_id = m->id;
    }
  }
  ASSERT_NE(model_id, 0u);

  // Drift: the law shifts, the next scan flags the model.
  ASSERT_TRUE(AppendLinear(t, 64, 40, 8.0, 2.0, 0.01).ok());
  Scan(&learner, data, models);
  ASSERT_GE(learner.num_drifted(), 1u);

  // An external refresh (Session::Refit / RefitStale) re-freshens the
  // model without consulting the learner. The drift flag must still
  // reject it at arbitration — a freshened version stamp is not evidence
  // that the law holds again.
  auto current = models.Get(model_id);
  ASSERT_TRUE(current.ok());
  CapturedModel freshened = **current;
  freshened.fitted_data_version = t->data_version();
  ASSERT_TRUE(models.Remove(model_id).ok());
  ASSERT_TRUE(models.RestoreWithId(std::move(freshened)).ok());

  ModelQueryEngine aqp(&data, &models, &domains);
  HybridOptions hopts;
  hopts.learner = &learner;
  const HybridQueryEngine hybrid(&data, &aqp, hopts);

  const uint64_t rejects_before = CounterValue("aqp.hybrid.fallback.drift");
  auto answer = hybrid.Execute("SELECT AVG(y) FROM t WHERE x = 10");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->method, "exact");
  EXPECT_FALSE(answer->approximate);
  EXPECT_NE(answer->fallback_reason.find("drift-flagged"), std::string::npos)
      << answer->fallback_reason;
  EXPECT_EQ(CounterValue("aqp.hybrid.fallback.drift"), rejects_before + 1);

  // After the refit tick, the model serves again.
  ASSERT_GE(learner.Apply(data, &models).refits, 1u);
  answer = hybrid.Execute("SELECT AVG(y) FROM t WHERE x = 10");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->approximate) << answer->fallback_reason;
}

TEST(LearnerTest, EvictionKeepsHotModelUnderCap) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.05).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  LearnerOptions o = EnabledOptions();
  o.max_models = 1;
  o.evict_min_opportunities = 2;
  Learner learner(o);
  Scan(&learner, data, models);
  learner.Apply(data, &models);
  // Both column orderings promoted: over the cap, but eviction respects
  // the grace period until somebody has enough opportunities.
  ASSERT_EQ(models.size(), 2u);

  uint64_t hot = 0, cold = 0;
  for (const CapturedModel* m : models.ModelsForTable("t")) {
    if (m->input_columns[0] == "x") {
      hot = m->id;
    } else {
      cold = m->id;
    }
  }
  ASSERT_NE(hot, 0u);
  ASSERT_NE(cold, 0u);

  learner.OnDecision("t", hot, models);
  learner.OnDecision("t", hot, models);
  const LearnTickReport report = learner.Apply(data, &models);
  EXPECT_EQ(report.evicted, 1u);
  EXPECT_EQ(models.size(), 1u);
  EXPECT_TRUE(models.Get(hot).ok()) << "the hit model must survive";
  EXPECT_FALSE(models.Get(cold).ok());
}

TEST(LearnerTest, GovernorAbortTaintsInsteadOfLying) {
  Catalog data;
  TablePtr t = MakeXY();
  ASSERT_TRUE(AppendLinear(t, 0, 64, 3.0, 2.0, 0.0).ok());
  data.RegisterOrReplace("t", t);
  ModelCatalog models;

  Learner learner(EnabledOptions());
  const uint64_t aborted_before = CounterValue("learn.harvest.aborted");
  {
    QueryGovernor gov;
    gov.Cancel();
    ScopedGovernor install(&gov);
    Scan(&learner, data, models);
  }
  // The canceled governor stopped the harvest mid-scan; whatever was
  // reserved but not folded is tainted, never silently wrong.
  EXPECT_GT(CounterValue("learn.harvest.aborted"), aborted_before);
  EXPECT_EQ(learner.VerifyCandidatesAgainstBatch(data, 1e-6), "");

  // Ungoverned scans keep working afterwards.
  Scan(&learner, data, models);
  EXPECT_EQ(learner.num_candidates(), 6u);
  EXPECT_EQ(learner.VerifyCandidatesAgainstBatch(data, 1e-6), "");
}

TEST(LearningLoopTest, PublishesThroughSnapshotCommits) {
  LearnerOptions o = EnabledOptions();
  Learner learner(o);
  ServerOptions sopts;
  sopts.hybrid.learner = &learner;
  Server server(sopts);
  auto session = server.Connect("learn");
  ASSERT_TRUE(session.ok());

  Table t(Schema({Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (size_t i = 0; i < 64; ++i) {
    const double x = static_cast<double>(i + 1);
    ASSERT_TRUE(
        t.AppendRow({Value::Double(x),
                     Value::Double(3.0 + 2.0 * x + Jitter(i, 0.05))})
            .ok());
  }
  ASSERT_TRUE((*session)->CreateTable("signals", std::move(t)).ok());

  // Exact traffic harvests as a by-product.
  auto first = (*session)->ExecuteHybrid(
      "SELECT AVG(y) FROM signals WHERE x = 8");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->method, "exact");
  auto scan = (*session)->ExecuteHybrid(
      "SELECT x, y FROM signals WHERE x >= 1");
  ASSERT_TRUE(scan.ok());

  // A reader pinned before the tick keeps its epoch's model catalog.
  const SnapshotPtr pinned = (*session)->PinSnapshot();
  const uint64_t epoch_before = pinned->epoch;
  EXPECT_EQ(pinned->models.size(), 0u);

  LearningLoop loop(&server.snapshots(), &learner);
  auto tick = loop.TickNow();
  ASSERT_TRUE(tick.ok()) << tick.status().ToString();
  EXPECT_GE(tick->promoted, 1u);
  EXPECT_EQ(server.snapshots().epoch(), epoch_before + 1);
  EXPECT_EQ(pinned->models.size(), 0u)
      << "a pinned snapshot must never see the tick";

  // The published model now serves the same query approximately.
  auto second = (*session)->ExecuteHybrid(
      "SELECT AVG(y) FROM signals WHERE x = 8");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->approximate) << second->fallback_reason;

  // A no-work tick publishes nothing: no epoch churn.
  const uint64_t epoch_after = server.snapshots().epoch();
  auto idle = loop.TickNow();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->did_work());
  EXPECT_EQ(server.snapshots().epoch(), epoch_after);

  // EXPLAIN ANALYZE reports the learning stage.
  auto plan = (*session)->ExplainAnalyze(
      "SELECT AVG(y) FROM signals WHERE x = 8");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("learning: state=on"), std::string::npos) << *plan;
}

// The concurrency soak (run under TSan by tools/check_learning.sh):
// background refit ticks race N querying sessions and ingest commits.
// Invariants: epochs only move forward, pinned snapshots are immutable,
// and every model observed by any reader is a complete published fit
// (finite parameters, positive observation count).
TEST(LearningLoopTest, ConcurrentHarvestIngestAndTicksStaySane) {
  Learner learner(EnabledOptions());
  ServerOptions sopts;
  sopts.hybrid.learner = &learner;
  Server server(sopts);

  auto writer = server.Connect("writer");
  ASSERT_TRUE(writer.ok());
  Table t(Schema({Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (size_t i = 0; i < 96; ++i) {
    const double x = static_cast<double>(i + 1);
    ASSERT_TRUE(
        t.AppendRow({Value::Double(x),
                     Value::Double(3.0 + 2.0 * x + Jitter(i, 0.05))})
            .ok());
  }
  ASSERT_TRUE((*writer)->CreateTable("signals", std::move(t)).ok());

  LearningLoop loop(&server.snapshots(), &learner);
  loop.Start();

  std::atomic<bool> failed{false};
  constexpr size_t kReaders = 4;
  constexpr size_t kQueriesPerReader = 120;

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 2);
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&server, &failed, r] {
      auto session = server.Connect("reader" + std::to_string(r));
      if (!session.ok()) {
        failed.store(true);
        return;
      }
      const char* queries[] = {
          "SELECT AVG(y) FROM signals WHERE x = 8",
          "SELECT MIN(y) FROM signals WHERE x = 16",
          "SELECT COUNT(*) FROM signals WHERE x >= 1",
          "SELECT x, y FROM signals WHERE x >= 1",
      };
      for (size_t q = 0; q < kQueriesPerReader; ++q) {
        auto answer = (*session)->ExecuteHybrid(queries[q % 4]);
        if (!answer.ok()) failed.store(true);
      }
    });
  }
  threads.emplace_back([&writer, &failed] {
    for (size_t batch = 0; batch < 24; ++batch) {
      Table rows(Schema({Field{"x", DataType::kDouble, false},
                         Field{"y", DataType::kDouble, false}}));
      for (size_t i = 0; i < 8; ++i) {
        const size_t n = 96 + batch * 8 + i;
        const double x = static_cast<double>(n + 1);
        if (!rows.AppendRow({Value::Double(x),
                             Value::Double(3.0 + 2.0 * x + Jitter(n, 0.05))})
                 .ok()) {
          failed.store(true);
        }
      }
      if (!(*writer)->Ingest("signals", rows).ok()) failed.store(true);
    }
  });
  threads.emplace_back([&server, &failed] {
    uint64_t last_epoch = 0;
    for (size_t i = 0; i < 400; ++i) {
      const SnapshotPtr snap = server.snapshots().Pin();
      if (snap->epoch < last_epoch) failed.store(true);
      last_epoch = snap->epoch;
      for (uint64_t id : snap->models.ListIds()) {
        auto m = snap->models.Get(id);
        if (!m.ok()) {
          failed.store(true);
          continue;
        }
        if ((*m)->quality.n_observations == 0) failed.store(true);
        for (double p : (*m)->parameters) {
          if (!std::isfinite(p)) failed.store(true);
        }
      }
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  loop.Stop();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(learner.VerifyCandidatesAgainstBatch(
                server.snapshots().Pin()->tables, 1e-6),
            "");
}

}  // namespace
}  // namespace laws

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"

namespace laws {
namespace {

Matrix RandomMatrix(Rng* rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng->Normal();
  }
  return m;
}

/// A^T A + eps*I is symmetric positive definite for full-rank-ish A.
Matrix RandomSpd(Rng* rng, size_t n) {
  Matrix a = RandomMatrix(rng, n + 3, n);
  Matrix g = a.Gram();
  for (size_t i = 0; i < n; ++i) g(i, i) += 0.5;
  return g;
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, IdentityMultiplication) {
  Rng rng(1);
  Matrix a = RandomMatrix(&rng, 4, 4);
  const Matrix i4 = Matrix::Identity(4);
  EXPECT_EQ(a.Multiply(i4), a);
  EXPECT_EQ(i4.Multiply(a), a);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(2);
  Matrix a = RandomMatrix(&rng, 3, 5);
  EXPECT_EQ(a.Transposed().Transposed(), a);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(MatrixTest, GramMatchesExplicitProduct) {
  Rng rng(3);
  Matrix a = RandomMatrix(&rng, 7, 3);
  Matrix g = a.Gram();
  Matrix expected = a.Transposed().Multiply(a);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, TransposeMultiplyVecMatchesExplicit) {
  Rng rng(4);
  Matrix a = RandomMatrix(&rng, 6, 4);
  Vector b = {1, -2, 3, -4, 5, -6};
  Vector got = a.TransposeMultiplyVec(b);
  Vector expected = a.Transposed().MultiplyVec(b);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(got[i], expected[i], 1e-12);
}

TEST(VectorOpsTest, Basics) {
  Vector a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  Vector b = Subtract(a, {1.0, 1.0});
  EXPECT_EQ(b, (Vector{2.0, 3.0}));
  EXPECT_EQ(Add(b, {1.0, 1.0}), a);
  EXPECT_EQ(Scale(a, 2.0), (Vector{6.0, 8.0}));
}

TEST(CholeskyTest, KnownFactorization) {
  // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2, {4, 2, 2, 3});
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR((*l)(0, 1), 0.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(a).ok());
  EXPECT_EQ(CholeskyFactor(a).status().code(), StatusCode::kNumericError);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(CholeskyFactor(a).status().code(), StatusCode::kInvalidArgument);
}

class SpdSolveProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SpdSolveProperty, CholeskySolveResidualSmall) {
  Rng rng(100 + GetParam());
  const size_t n = GetParam();
  Matrix a = RandomSpd(&rng, n);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.Normal();
  Vector b = a.MultiplyVec(x_true);
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-7);
}

TEST_P(SpdSolveProperty, GaussianEliminationMatchesCholesky) {
  Rng rng(200 + GetParam());
  const size_t n = GetParam();
  Matrix a = RandomSpd(&rng, n);
  Vector b(n);
  for (auto& v : b) v = rng.Normal();
  auto x1 = CholeskySolve(a, b);
  auto x2 = SolveLinearSystem(a, b);
  ASSERT_TRUE(x1.ok());
  ASSERT_TRUE(x2.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x1)[i], (*x2)[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(QrTest, ReconstructsUpperTriangularR) {
  Rng rng(7);
  Matrix a = RandomMatrix(&rng, 10, 4);
  auto f = QrFactorize(a);
  ASSERT_TRUE(f.ok());
  // R^T R should equal A^T A (Q orthonormal).
  Matrix r(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i; j < 4; ++j) r(i, j) = f->qr(i, j);
  }
  Matrix rtr = r.Transposed().Multiply(r);
  Matrix ata = a.Gram();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(rtr(i, j), ata(i, j), 1e-9);
  }
}

TEST(QrTest, RejectsWideMatrix) {
  Matrix a(2, 5);
  EXPECT_EQ(QrFactorize(a).status().code(), StatusCode::kInvalidArgument);
}

TEST(QrTest, RejectsRankDeficient) {
  Matrix a(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // dependent column
  }
  EXPECT_FALSE(LeastSquaresQr(a, {1, 2, 3, 4}).ok());
}

class LeastSquaresProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(LeastSquaresProperty, RecoversExactSolutionOnConsistentSystem) {
  Rng rng(300 + GetParam());
  const size_t p = GetParam();
  const size_t n = p * 5 + 10;
  Matrix a = RandomMatrix(&rng, n, p);
  Vector beta_true(p);
  for (auto& v : beta_true) v = rng.Uniform(-2.0, 2.0);
  Vector y = a.MultiplyVec(beta_true);
  auto qr = LeastSquaresQr(a, y);
  auto normal = LeastSquaresNormal(a, y);
  ASSERT_TRUE(qr.ok());
  ASSERT_TRUE(normal.ok());
  for (size_t i = 0; i < p; ++i) {
    EXPECT_NEAR((*qr)[i], beta_true[i], 1e-8);
    EXPECT_NEAR((*normal)[i], beta_true[i], 1e-6);
  }
}

TEST_P(LeastSquaresProperty, ResidualOrthogonalToColumns) {
  Rng rng(400 + GetParam());
  const size_t p = GetParam();
  const size_t n = p * 4 + 8;
  Matrix a = RandomMatrix(&rng, n, p);
  Vector y(n);
  for (auto& v : y) v = rng.Normal();
  auto beta = LeastSquaresQr(a, y);
  ASSERT_TRUE(beta.ok());
  const Vector residual = Subtract(y, a.MultiplyVec(*beta));
  const Vector atr = a.TransposeMultiplyVec(residual);
  for (size_t j = 0; j < p; ++j) EXPECT_NEAR(atr[j], 0.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Widths, LeastSquaresProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 9));

TEST(InvertTest, InverseTimesSelfIsIdentity) {
  Rng rng(8);
  Matrix a = RandomSpd(&rng, 5);
  auto inv = Invert(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a.Multiply(*inv);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(InvertTest, SingularRejected) {
  Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_EQ(Invert(a).status().code(), StatusCode::kNumericError);
}

TEST(ConditionTest, IdentityIsPerfectlyConditioned) {
  auto c = ConditionEstimate(Matrix::Identity(6));
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(*c, 1.0, 1e-12);
}

TEST(ConditionTest, IllConditionedDetected) {
  Matrix a(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 1.0 + 1e-9 * static_cast<double>(i);
  }
  auto c = ConditionEstimate(a);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, 1e6);
}

TEST(SolveTest, DimensionMismatchErrors) {
  Matrix a(3, 3);
  EXPECT_FALSE(CholeskySolve(a, {1, 2}).ok());
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
  EXPECT_FALSE(LeastSquaresQr(Matrix(4, 2), {1, 2}).ok());
}

}  // namespace
}  // namespace laws

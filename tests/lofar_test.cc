#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/session.h"
#include "lofar/generator.h"
#include "lofar/pipeline.h"

namespace laws {
namespace {

/// Small config for fast tests; the full paper-scale run lives in the
/// bench harness.
LofarConfig SmallConfig() {
  LofarConfig cfg;
  cfg.num_sources = 200;
  cfg.num_rows = 8000;
  cfg.anomalous_fraction = 0.05;
  return cfg;
}

TEST(LofarGeneratorTest, ShapeMatchesConfig) {
  const LofarConfig cfg = SmallConfig();
  auto data = GenerateLofar(cfg);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->observations.num_rows(), cfg.num_rows);
  EXPECT_EQ(data->truth.size(), cfg.num_sources);
  EXPECT_EQ(data->observations.num_columns(), 3u);
  EXPECT_TRUE(data->observations.schema().HasField("source"));
  EXPECT_TRUE(data->observations.schema().HasField("wavelength"));
  EXPECT_TRUE(data->observations.schema().HasField("intensity"));
}

TEST(LofarGeneratorTest, EverySourceHasMinimumObservations) {
  auto data = GenerateLofar(SmallConfig());
  ASSERT_TRUE(data.ok());
  std::map<int64_t, size_t> counts;
  const Column& src = *data->observations.ColumnByName("source").value();
  for (size_t i = 0; i < src.size(); ++i) ++counts[src.Int64At(i)];
  EXPECT_EQ(counts.size(), 200u);
  for (const auto& [key, n] : counts) EXPECT_GE(n, 8u);
}

TEST(LofarGeneratorTest, FrequenciesClusterAroundBands) {
  const LofarConfig cfg = SmallConfig();
  auto data = GenerateLofar(cfg);
  ASSERT_TRUE(data.ok());
  const Column& nu = *data->observations.ColumnByName("wavelength").value();
  for (size_t i = 0; i < std::min<size_t>(nu.size(), 2000); ++i) {
    const double v = nu.DoubleAt(i);
    bool near_band = false;
    for (double band : cfg.bands) {
      if (std::fabs(v - band) <= band * cfg.band_jitter) near_band = true;
    }
    EXPECT_TRUE(near_band) << "frequency " << v << " not near any band";
  }
}

TEST(LofarGeneratorTest, DeterministicForSeed) {
  auto a = GenerateLofar(SmallConfig());
  auto b = GenerateLofar(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a->observations.GetValue(i, 2), b->observations.GetValue(i, 2));
  }
  LofarConfig other = SmallConfig();
  other.seed = 1;
  auto c = GenerateLofar(other);
  ASSERT_TRUE(c.ok());
  bool differs = false;
  for (size_t i = 0; i < 100 && !differs; ++i) {
    differs = !(a->observations.GetValue(i, 2) == c->observations.GetValue(i, 2));
  }
  EXPECT_TRUE(differs);
}

TEST(LofarGeneratorTest, AnomalousFractionRoughlyRespected) {
  LofarConfig cfg = SmallConfig();
  cfg.num_sources = 2000;
  cfg.num_rows = 40000;
  cfg.anomalous_fraction = 0.1;
  auto data = GenerateLofar(cfg);
  ASSERT_TRUE(data.ok());
  size_t anomalous = 0;
  for (const auto& t : data->truth) anomalous += t.anomalous ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(anomalous) / 2000.0, 0.1, 0.03);
}

TEST(LofarGeneratorTest, RejectsUnderprovisionedConfig) {
  LofarConfig cfg;
  cfg.num_sources = 100;
  cfg.num_rows = 100;  // < 8 per source
  EXPECT_FALSE(GenerateLofar(cfg).ok());
  LofarConfig no_bands = SmallConfig();
  no_bands.bands.clear();
  EXPECT_FALSE(GenerateLofar(no_bands).ok());
}

TEST(LofarPipelineTest, RecoversSpectralIndices) {
  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  LofarConfig cfg = SmallConfig();
  cfg.anomalous_fraction = 0.0;  // clean recovery check
  auto result = RunLofarPipeline(cfg, &catalog, &session, "measurements");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.num_groups, cfg.num_sources);
  EXPECT_GT(result->report.median_r_squared, 0.9);

  // Compare fitted alpha against ground truth per source.
  auto captured = models.Get(result->model_id);
  ASSERT_TRUE(captured.ok());
  const Table& pt = (*captured)->parameter_table;
  ASSERT_TRUE(pt.schema().HasField("alpha"));
  const size_t alpha_idx = *pt.schema().FieldIndex("alpha");
  std::map<int64_t, double> fitted;
  for (size_t r = 0; r < pt.num_rows(); ++r) {
    fitted[pt.column(0).Int64At(r)] = pt.column(alpha_idx).DoubleAt(r);
  }
  size_t close = 0;
  for (const auto& truth : result->dataset.truth) {
    auto it = fitted.find(truth.source);
    if (it == fitted.end()) continue;
    if (std::fabs(it->second - truth.alpha) < 0.15) ++close;
  }
  EXPECT_GT(close, cfg.num_sources * 9 / 10);
}

TEST(LofarPipelineTest, ParameterRatioIsSmall) {
  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  auto result =
      RunLofarPipeline(SmallConfig(), &catalog, &session, "measurements");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->raw_bytes, 0u);
  EXPECT_GT(result->parameter_bytes, 0u);
  // The paper's headline: parameters are a small fraction of raw data.
  // At 40 obs/source the ratio lands near 5%; allow generous slack here.
  EXPECT_LT(result->parameter_ratio, 0.25);
  // And the table is registered for querying.
  EXPECT_TRUE(catalog.Contains("measurements"));
}

}  // namespace
}  // namespace laws

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/thread_pool.h"
#include "model/fit.h"
#include "model/grouped_fit.h"
#include "model/incremental.h"
#include "model/model.h"
#include "model/robust.h"

namespace laws {
namespace {

/// Checks analytic parameter gradients against central differences.
void CheckParameterGradient(const Model& model, const Vector& x,
                            const Vector& params, double tol = 1e-5) {
  Vector analytic;
  model.ParameterGradient(x, params, &analytic);
  ASSERT_EQ(analytic.size(), model.num_parameters());
  Vector p = params;
  for (size_t j = 0; j < params.size(); ++j) {
    const double h = 1e-6 * std::max(1.0, std::fabs(params[j]));
    p[j] = params[j] + h;
    const double fp = model.Evaluate(x, p);
    p[j] = params[j] - h;
    const double fm = model.Evaluate(x, p);
    p[j] = params[j];
    EXPECT_NEAR(analytic[j], (fp - fm) / (2 * h),
                tol * std::max(1.0, std::fabs(analytic[j])))
        << model.name() << " d/dp" << j;
  }
}

// --- Individual models ---------------------------------------------------

TEST(LinearModelTest, EvaluateAndBasis) {
  LinearModel m(2);
  EXPECT_EQ(m.num_parameters(), 3u);
  const Vector params = {1.0, 2.0, -3.0};
  EXPECT_DOUBLE_EQ(m.Evaluate({10.0, 1.0}, params), 1 + 20 - 3);
  Vector phi;
  ASSERT_TRUE(m.BasisFunctions({10.0, 1.0}, &phi).ok());
  EXPECT_EQ(phi, (Vector{1.0, 10.0, 1.0}));
  EXPECT_TRUE(m.IsLinearInParameters());
  CheckParameterGradient(m, {0.5, -2.0}, params);
}

TEST(LinearModelTest, InputGradientIsSlope) {
  LinearModel m(2);
  Vector grad;
  m.InputGradient({5.0, 5.0}, {0.0, 2.0, -1.0}, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 2.0);
  EXPECT_DOUBLE_EQ(grad[1], -1.0);
}

TEST(PolynomialModelTest, HornerEvaluation) {
  PolynomialModel m(3);
  // 1 + 2x + 3x^2 + 4x^3 at x=2: 1+4+12+32 = 49.
  EXPECT_DOUBLE_EQ(m.Evaluate({2.0}, {1, 2, 3, 4}), 49.0);
  CheckParameterGradient(m, {1.7}, {1, 2, 3, 4});
  Vector grad;
  m.InputGradient({2.0}, {1, 2, 3, 4}, &grad);
  // d/dx = 2 + 6x + 12x^2 at x=2: 2+12+48 = 62.
  EXPECT_DOUBLE_EQ(grad[0], 62.0);
}

TEST(PowerLawModelTest, EvaluateAndGradients) {
  PowerLawModel m;
  const Vector params = {2.0, -0.7};
  EXPECT_NEAR(m.Evaluate({0.15}, params), 2.0 * std::pow(0.15, -0.7), 1e-12);
  CheckParameterGradient(m, {0.15}, params);
  Vector grad;
  m.InputGradient({0.15}, params, &grad);
  EXPECT_NEAR(grad[0], 2.0 * -0.7 * std::pow(0.15, -1.7), 1e-6);
}

TEST(PowerLawModelTest, LogLinearEstimateRecoversParams) {
  Rng rng(1);
  const double p_true = 1.5, a_true = -0.8;
  Matrix x(100, 1);
  Vector y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Uniform(0.1, 0.2);
    y[i] = p_true * std::pow(x(i, 0), a_true);
  }
  PowerLawModel m;
  Vector params;
  ASSERT_TRUE(m.LogLinearEstimate(x, y, &params));
  EXPECT_NEAR(params[0], p_true, 1e-9);
  EXPECT_NEAR(params[1], a_true, 1e-9);
}

TEST(PowerLawModelTest, LogLinearRejectsNonPositive) {
  Matrix x(3, 1);
  x(0, 0) = 0.1;
  x(1, 0) = 0.2;
  x(2, 0) = 0.3;
  PowerLawModel m;
  Vector params;
  EXPECT_FALSE(m.LogLinearEstimate(x, {1.0, -1.0, 2.0}, &params));
}

TEST(ExponentialModelTest, EvaluateGradientsAndLogLinear) {
  ExponentialModel m;
  const Vector params = {3.0, -0.5};
  EXPECT_NEAR(m.Evaluate({2.0}, params), 3.0 * std::exp(-1.0), 1e-12);
  CheckParameterGradient(m, {2.0}, params);
  Rng rng(2);
  Matrix x(50, 1);
  Vector y(50);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform(0.0, 5.0);
    y[i] = 3.0 * std::exp(-0.5 * x(i, 0));
  }
  Vector est;
  ASSERT_TRUE(m.LogLinearEstimate(x, y, &est));
  EXPECT_NEAR(est[0], 3.0, 1e-9);
  EXPECT_NEAR(est[1], -0.5, 1e-9);
}

TEST(LogisticModelTest, EvaluateAndGradient) {
  LogisticModel m;
  const Vector params = {4.0, 2.0, 1.0};  // L, k, x0
  EXPECT_NEAR(m.Evaluate({1.0}, params), 2.0, 1e-12);  // midpoint = L/2
  CheckParameterGradient(m, {0.3}, params);
  CheckParameterGradient(m, {2.5}, params);
}

TEST(SeasonalModelTest, BasisAndEvaluate) {
  SeasonalModel m(7.0);
  EXPECT_EQ(m.num_parameters(), 4u);
  const Vector params = {10.0, 2.0, -1.0, 0.1};
  const double x = 3.0;
  const double w = 2.0 * M_PI * x / 7.0;
  EXPECT_NEAR(m.Evaluate({x}, params),
              10.0 + 2.0 * std::sin(w) - std::cos(w) + 0.3, 1e-12);
  EXPECT_TRUE(m.IsLinearInParameters());
  SeasonalModel no_trend(7.0, false);
  EXPECT_EQ(no_trend.num_parameters(), 3u);
}

TEST(PiecewisePolyModelTest, SegmentsAndEvaluate) {
  PiecewisePolynomialModel m({10.0, 20.0}, 1);
  EXPECT_EQ(m.num_segments(), 3u);
  EXPECT_EQ(m.num_parameters(), 6u);
  EXPECT_EQ(m.SegmentOf(5.0), 0u);
  EXPECT_EQ(m.SegmentOf(10.0), 1u);  // breakpoint belongs to the right
  EXPECT_EQ(m.SegmentOf(15.0), 1u);
  EXPECT_EQ(m.SegmentOf(25.0), 2u);
  // Params: seg0 = 1 + 2x, seg1 = 3 + 4x, seg2 = 5 + 6x.
  const Vector params = {1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(m.Evaluate({5.0}, params), 11.0);
  EXPECT_DOUBLE_EQ(m.Evaluate({15.0}, params), 63.0);
  EXPECT_DOUBLE_EQ(m.Evaluate({25.0}, params), 155.0);
  Vector phi;
  ASSERT_TRUE(m.BasisFunctions({15.0}, &phi).ok());
  EXPECT_EQ(phi, (Vector{0, 0, 1, 15, 0, 0}));
}

// --- Source round trips ----------------------------------------------------

class SourceRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SourceRoundTrip, ParsesAndReserializes) {
  auto m = ModelFromSource(GetParam());
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ((*m)->ToSource(), GetParam());
  auto again = ModelFromSource((*m)->ToSource());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->num_parameters(), (*m)->num_parameters());
  EXPECT_EQ((*again)->name(), (*m)->name());
}

INSTANTIATE_TEST_SUITE_P(Sources, SourceRoundTrip,
                         ::testing::Values("power_law", "exponential",
                                           "logistic", "linear(1)",
                                           "linear(3)", "poly(2)", "poly(0)",
                                           "piecewise_poly(1;10,20)"));

TEST(SourceTest, SeasonalRoundTrip) {
  auto m = ModelFromSource("seasonal(7)");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->num_parameters(), 4u);
  auto back = ModelFromSource((*m)->ToSource());
  ASSERT_TRUE(back.ok());
  auto no_trend = ModelFromSource("seasonal(7,notrend)");
  ASSERT_TRUE(no_trend.ok());
  EXPECT_EQ((*no_trend)->num_parameters(), 3u);
}

TEST(SourceTest, RejectsMalformed) {
  EXPECT_FALSE(ModelFromSource("frobnicator").ok());
  EXPECT_FALSE(ModelFromSource("linear(0)").ok());
  EXPECT_FALSE(ModelFromSource("linear(").ok());
  EXPECT_FALSE(ModelFromSource("seasonal(-1)").ok());
  EXPECT_FALSE(ModelFromSource("piecewise_poly(1;20,10)").ok());  // not inc
  EXPECT_FALSE(ModelFromSource("piecewise_poly(1)").ok());
}

// --- Fitting -----------------------------------------------------------------

TEST(FitTest, OlsRecoversLinearParametersExactly) {
  Rng rng(3);
  LinearModel model(2);
  const Vector beta_true = {1.5, -2.0, 0.5};
  Matrix x(60, 2);
  Vector y(60);
  for (size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = model.Evaluate({x(i, 0), x(i, 1)}, beta_true);
  }
  auto fit = FitModel(model, x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->algorithm_used, FitAlgorithm::kOls);
  EXPECT_TRUE(fit->converged);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(fit->parameters[j], beta_true[j], 1e-9);
  }
  EXPECT_NEAR(fit->quality.r_squared, 1.0, 1e-12);
}

TEST(FitTest, OlsNormalEquationsMatchesQrOnWellConditioned) {
  Rng rng(4);
  PolynomialModel model(2);
  Matrix x(50, 1);
  Vector y(50);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform(-2.0, 2.0);
    y[i] = 1.0 + 0.5 * x(i, 0) - 0.3 * x(i, 0) * x(i, 0) + rng.Normal(0, 0.01);
  }
  FitOptions qr_opts;
  qr_opts.algorithm = FitAlgorithm::kOls;
  FitOptions ne_opts;
  ne_opts.algorithm = FitAlgorithm::kOlsNormalEquations;
  auto a = FitModel(model, x, y, qr_opts);
  auto b = FitModel(model, x, y, ne_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(a->parameters[j], b->parameters[j], 1e-8);
  }
}

TEST(FitTest, StandardErrorsShrinkWithMoreData) {
  Rng rng(5);
  LinearModel model(1);
  auto fit_n = [&](size_t n) {
    Matrix x(n, 1);
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
      x(i, 0) = rng.Uniform(0.0, 10.0);
      y[i] = 2.0 + 3.0 * x(i, 0) + rng.Normal(0.0, 1.0);
    }
    auto fit = FitModel(model, x, y);
    EXPECT_TRUE(fit.ok());
    return fit->standard_errors[1];
  };
  const double se_small = fit_n(50);
  const double se_large = fit_n(5000);
  EXPECT_LT(se_large, se_small);
  EXPECT_GT(se_small, 0.0);
}

class NonlinearFitAlgorithms
    : public ::testing::TestWithParam<FitAlgorithm> {};

TEST_P(NonlinearFitAlgorithms, PowerLawRecovery) {
  Rng rng(6);
  PowerLawModel model;
  const double p_true = 0.8, a_true = -0.7;
  Matrix x(200, 1);
  Vector y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform(0.1, 0.2);
    y[i] = p_true * std::pow(x(i, 0), a_true) *
           std::exp(rng.Normal(0.0, 0.02));
  }
  FitOptions opts;
  opts.algorithm = GetParam();
  auto fit = FitModel(model, x, y, opts);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_TRUE(fit->converged);
  EXPECT_NEAR(fit->parameters[0], p_true, 0.05);
  EXPECT_NEAR(fit->parameters[1], a_true, 0.05);
  EXPECT_GT(fit->quality.r_squared, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, NonlinearFitAlgorithms,
                         ::testing::Values(FitAlgorithm::kAuto,
                                           FitAlgorithm::kGaussNewton,
                                           FitAlgorithm::kLevenbergMarquardt,
                                           FitAlgorithm::kLogLinear));

TEST(FitTest, LevenbergMarquardtSurvivesBadStart) {
  Rng rng(7);
  PowerLawModel model;
  Matrix x(100, 1);
  Vector y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Uniform(0.5, 2.0);
    y[i] = 2.0 * std::pow(x(i, 0), -1.5);
  }
  FitOptions opts;
  opts.algorithm = FitAlgorithm::kLevenbergMarquardt;
  opts.initial_parameters = {50.0, 3.0};  // far from truth
  opts.max_iterations = 500;
  auto fit = FitModel(model, x, y, opts);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 2.0, 0.05);
  EXPECT_NEAR(fit->parameters[1], -1.5, 0.05);
}

TEST(FitTest, LogisticFitViaLm) {
  Rng rng(8);
  LogisticModel model;
  const Vector truth = {5.0, 1.5, 2.0};
  Matrix x(300, 1);
  Vector y(300);
  for (size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.Uniform(-2.0, 6.0);
    y[i] = model.Evaluate({x(i, 0)}, truth) + rng.Normal(0.0, 0.02);
  }
  FitOptions opts;
  opts.algorithm = FitAlgorithm::kLevenbergMarquardt;
  opts.initial_parameters = {4.0, 1.0, 1.0};
  opts.max_iterations = 300;
  auto fit = FitModel(model, x, y, opts);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], truth[0], 0.1);
  EXPECT_NEAR(fit->parameters[1], truth[1], 0.1);
  EXPECT_NEAR(fit->parameters[2], truth[2], 0.1);
}

TEST(FitTest, DimensionValidation) {
  LinearModel model(1);
  Matrix x(5, 2);  // arity mismatch
  EXPECT_FALSE(FitModel(model, x, Vector(5, 0.0)).ok());
  Matrix x2(5, 1);
  EXPECT_FALSE(FitModel(model, x2, Vector(4, 0.0)).ok());  // row mismatch
  Matrix x3(2, 1);
  EXPECT_FALSE(FitModel(model, x3, Vector(2, 0.0)).ok());  // n <= p
}

TEST(FitTest, LogLinearOnlyFailsWhereInapplicable) {
  LogisticModel model;
  Matrix x(10, 1);
  Vector y(10, 1.0);
  FitOptions opts;
  opts.algorithm = FitAlgorithm::kLogLinear;
  EXPECT_FALSE(FitModel(model, x, y, opts).ok());
}

TEST(FitTest, SeasonalModelRecoversPlantedCoefficients) {
  Rng rng(9);
  SeasonalModel model(7.0);
  const Vector truth = {100.0, 20.0, -5.0, 0.1};
  Matrix x(365, 1);
  Vector y(365);
  for (size_t i = 0; i < 365; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = model.Evaluate({x(i, 0)}, truth) + rng.Normal(0.0, 1.0);
  }
  auto fit = FitModel(model, x, y);
  ASSERT_TRUE(fit.ok());
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(fit->parameters[j], truth[j], 0.5) << "param " << j;
  }
  EXPECT_GT(fit->quality.r_squared, 0.99);
}

TEST(FitTest, PiecewisePolyFitsRegimes) {
  Rng rng(10);
  PiecewisePolynomialModel model({50.0}, 1);
  Matrix x(200, 1);
  Vector y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = static_cast<double>(i) / 2.0;  // 0..99.5
    const double truth =
        x(i, 0) < 50.0 ? 1.0 + 0.2 * x(i, 0) : 31.0 - 0.4 * x(i, 0);
    y[i] = truth + rng.Normal(0.0, 0.05);
  }
  auto fit = FitModel(model, x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 1.0, 0.1);
  EXPECT_NEAR(fit->parameters[1], 0.2, 0.01);
  EXPECT_NEAR(fit->parameters[2], 31.0, 0.5);
  EXPECT_NEAR(fit->parameters[3], -0.4, 0.01);
}

// --- Grouped fitting ---------------------------------------------------------

TEST(GroupedFitTest, RecoversPerGroupParameters) {
  Rng rng(11);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  std::vector<std::pair<double, double>> truth;  // (intercept, slope)
  for (int g = 1; g <= 10; ++g) {
    const double a = rng.Uniform(-5, 5);
    const double b = rng.Uniform(-2, 2);
    truth.emplace_back(a, b);
    for (int i = 0; i < 30; ++i) {
      const double x = rng.Uniform(0, 10);
      ASSERT_TRUE(t.AppendRow({Value::Int64(g), Value::Double(x),
                               Value::Double(a + b * x)})
                      .ok());
    }
  }
  LinearModel model(1);
  GroupedFitSpec spec;
  spec.group_column = "g";
  spec.input_columns = {"x"};
  spec.output_column = "y";
  auto fits = FitGrouped(model, t, spec);
  ASSERT_TRUE(fits.ok());
  ASSERT_EQ(fits->groups.size(), 10u);
  EXPECT_EQ(fits->skipped_too_few, 0u);
  EXPECT_EQ(fits->failed, 0u);
  for (size_t g = 0; g < 10; ++g) {
    EXPECT_EQ(fits->groups[g].group_key, static_cast<int64_t>(g + 1));
    EXPECT_NEAR(fits->groups[g].fit.parameters[0], truth[g].first, 1e-8);
    EXPECT_NEAR(fits->groups[g].fit.parameters[1], truth[g].second, 1e-8);
  }
}

TEST(GroupedFitTest, SkipsTinyGroupsAndNulls) {
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, true},
                  Field{"y", DataType::kDouble, false}}));
  // Group 1: plenty of data. Group 2: only 2 rows (p+1 = 3 needed).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Double(i),
                             Value::Double(2.0 * i)})
                    .ok());
  }
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(2), Value::Double(1), Value::Double(2)}).ok());
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(2), Value::Double(2), Value::Double(4)}).ok());
  // NULL input rows are ignored entirely.
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(1), Value::Null(), Value::Double(9)}).ok());
  LinearModel model(1);
  GroupedFitSpec spec;
  spec.group_column = "g";
  spec.input_columns = {"x"};
  spec.output_column = "y";
  auto fits = FitGrouped(model, t, spec);
  ASSERT_TRUE(fits.ok());
  EXPECT_EQ(fits->groups.size(), 1u);
  EXPECT_EQ(fits->skipped_too_few, 1u);
}

TEST(GroupedFitTest, MinObservationsOverride) {
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Double(i),
                             Value::Double(i * 2.0)})
                    .ok());
  }
  LinearModel model(1);
  GroupedFitSpec spec;
  spec.group_column = "g";
  spec.input_columns = {"x"};
  spec.output_column = "y";
  spec.min_observations = 10;
  auto fits = FitGrouped(model, t, spec);
  ASSERT_TRUE(fits.ok());
  EXPECT_TRUE(fits->groups.empty());
  EXPECT_EQ(fits->skipped_too_few, 1u);
}

TEST(GroupedFitTest, RejectsBadSpecs) {
  Table t(Schema({Field{"g", DataType::kDouble, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  LinearModel model(1);
  GroupedFitSpec spec;
  spec.group_column = "g";  // not INT64
  spec.input_columns = {"x"};
  spec.output_column = "y";
  EXPECT_FALSE(FitGrouped(model, t, spec).ok());
  spec.group_column = "missing";
  EXPECT_FALSE(FitGrouped(model, t, spec).ok());
}

TEST(GroupedFitTest, ParameterTableLayout) {
  Rng rng(12);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int g = 1; g <= 3; ++g) {
    for (int i = 0; i < 20; ++i) {
      const double x = rng.Uniform(0, 1);
      ASSERT_TRUE(t.AppendRow({Value::Int64(g), Value::Double(x),
                               Value::Double(g + x + rng.Normal(0, 0.01))})
                      .ok());
    }
  }
  LinearModel model(1);
  GroupedFitSpec spec;
  spec.group_column = "g";
  spec.input_columns = {"x"};
  spec.output_column = "y";
  auto fits = FitGrouped(model, t, spec);
  ASSERT_TRUE(fits.ok());
  auto pt = GroupedFitToTable(model, *fits, "g");
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt->num_rows(), 3u);
  // Schema: g, intercept, b1, residual_se, r_squared, n_obs.
  EXPECT_EQ(pt->schema().num_fields(), 6u);
  EXPECT_TRUE(pt->schema().HasField("residual_se"));
  EXPECT_TRUE(pt->schema().HasField("r_squared"));
  EXPECT_TRUE(pt->schema().HasField("intercept"));
  EXPECT_EQ(pt->GetValue(0, 0).int64(), 1);
  EXPECT_EQ(pt->GetValue(2, 5).int64(), 20);
}

// --- New model classes --------------------------------------------------

TEST(GaussianPeakModelTest, EvaluateAndGradients) {
  GaussianPeakModel m;
  const Vector params = {4.0, 2.0, 0.5};  // amp, mu, sigma
  EXPECT_DOUBLE_EQ(m.Evaluate({2.0}, params), 4.0);  // peak value at mu
  EXPECT_NEAR(m.Evaluate({2.5}, params), 4.0 * std::exp(-0.5), 1e-12);
  CheckParameterGradient(m, {1.7}, params);
  CheckParameterGradient(m, {2.0}, params);
  Vector grad;
  m.InputGradient({2.0}, params, &grad);
  EXPECT_NEAR(grad[0], 0.0, 1e-12);  // flat at the peak
}

TEST(GaussianPeakModelTest, FitsPlantedPeak) {
  Rng rng(31);
  GaussianPeakModel model;
  const Vector truth = {5.0, 3.0, 0.8};
  Matrix x(300, 1);
  Vector y(300);
  for (size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.Uniform(0.0, 6.0);
    y[i] = model.Evaluate({x(i, 0)}, truth) + rng.Normal(0.0, 0.05);
  }
  auto fit = FitModel(model, x, y);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->parameters[0], truth[0], 0.1);
  EXPECT_NEAR(fit->parameters[1], truth[1], 0.05);
  EXPECT_NEAR(std::fabs(fit->parameters[2]), truth[2], 0.1);
  EXPECT_GT(fit->quality.r_squared, 0.97);
}

TEST(LogLawModelTest, EvaluateBasisAndFit) {
  LogLawModel m;
  EXPECT_TRUE(m.IsLinearInParameters());
  EXPECT_NEAR(m.Evaluate({std::exp(1.0)}, {2.0, 3.0}), 5.0, 1e-12);
  Vector phi;
  ASSERT_TRUE(m.BasisFunctions({std::exp(2.0)}, &phi).ok());
  EXPECT_NEAR(phi[1], 2.0, 1e-12);
  EXPECT_FALSE(m.BasisFunctions({-1.0}, &phi).ok());
  CheckParameterGradient(m, {3.0}, {2.0, 3.0});

  Rng rng(32);
  Matrix x(200, 1);
  Vector y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform(0.5, 50.0);
    y[i] = 1.5 + 0.8 * std::log(x(i, 0)) + rng.Normal(0.0, 0.02);
  }
  auto fit = FitModel(m, x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 1.5, 0.02);
  EXPECT_NEAR(fit->parameters[1], 0.8, 0.02);
}

TEST(SourceTest, NewModelsRoundTrip) {
  for (const char* src : {"gaussian_peak", "log_law"}) {
    auto m = ModelFromSource(src);
    ASSERT_TRUE(m.ok()) << src;
    EXPECT_EQ((*m)->ToSource(), src);
  }
}

// --- Incremental OLS ------------------------------------------------------

TEST(IncrementalOlsTest, MatchesBatchFit) {
  Rng rng(33);
  LinearModel model(2);
  Matrix x(500, 2);
  Vector y(500);
  for (size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Uniform(-3, 3);
    y[i] = 1.0 - 2.0 * x(i, 0) + 0.5 * x(i, 1) + rng.Normal(0.0, 0.1);
  }
  auto inc = IncrementalOls::Create(model);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->AddBatch(x, y).ok());
  auto inc_fit = inc->Solve();
  auto batch_fit = FitModel(model, x, y);
  ASSERT_TRUE(inc_fit.ok()) << inc_fit.status().ToString();
  ASSERT_TRUE(batch_fit.ok());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(inc_fit->parameters[j], batch_fit->parameters[j], 1e-8);
    EXPECT_NEAR(inc_fit->standard_errors[j], batch_fit->standard_errors[j],
                1e-8);
  }
  EXPECT_NEAR(inc_fit->quality.r_squared, batch_fit->quality.r_squared,
              1e-10);
  EXPECT_NEAR(inc_fit->quality.residual_standard_error,
              batch_fit->quality.residual_standard_error, 1e-8);
}

TEST(IncrementalOlsTest, AppendOnlyUpdateSharpensFit) {
  Rng rng(34);
  PolynomialModel model(1);
  auto inc = IncrementalOls::Create(model);
  ASSERT_TRUE(inc.ok());
  auto feed = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const double x = rng.Uniform(0, 10);
      ASSERT_TRUE(inc->Add({x}, 2.0 + 3.0 * x + rng.Normal(0, 1.0)).ok());
    }
  };
  feed(50);
  auto early = inc->Solve();
  ASSERT_TRUE(early.ok());
  feed(5000);
  auto late = inc->Solve();
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(inc->count(), 5050u);
  // More data, tighter slope standard error — no old rows revisited.
  EXPECT_LT(late->standard_errors[1], early->standard_errors[1]);
  EXPECT_NEAR(late->parameters[1], 3.0, 0.05);
}

TEST(IncrementalOlsTest, MergeEqualsUnion) {
  Rng rng(35);
  LinearModel model(1);
  auto a = IncrementalOls::Create(model);
  auto b = IncrementalOls::Create(model);
  auto whole = IncrementalOls::Create(model);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(whole.ok());
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(0, 5);
    const double y = -1.0 + 0.5 * x + rng.Normal(0, 0.2);
    ASSERT_TRUE(whole->Add({x}, y).ok());
    ASSERT_TRUE((i % 2 == 0 ? *a : *b).Add({x}, y).ok());
  }
  ASSERT_TRUE(a->Merge(*b).ok());
  auto merged = a->Solve();
  auto direct = whole->Solve();
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(merged->parameters[0], direct->parameters[0], 1e-10);
  EXPECT_NEAR(merged->parameters[1], direct->parameters[1], 1e-10);
}

TEST(IncrementalOlsTest, Validation) {
  PowerLawModel nonlinear;
  EXPECT_FALSE(IncrementalOls::Create(nonlinear).ok());
  LinearModel model(1);
  auto inc = IncrementalOls::Create(model);
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE(inc->Add({1.0, 2.0}, 3.0).ok());  // arity
  ASSERT_TRUE(inc->Add({1.0}, 1.0).ok());
  EXPECT_FALSE(inc->Solve().ok());  // n <= p
  auto other = IncrementalOls::Create(LinearModel(2));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(inc->Merge(*other).ok());  // different model class
}

// --- Robust (Huber) fitting -----------------------------------------------

TEST(RobustFitTest, MatchesOlsOnCleanData) {
  Rng rng(41);
  LinearModel model(1);
  Matrix x(200, 1);
  Vector y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform(0, 10);
    y[i] = 1.0 + 2.0 * x(i, 0) + rng.Normal(0, 0.3);
  }
  auto robust = FitRobustLinear(model, x, y);
  auto ols = FitModel(model, x, y);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  ASSERT_TRUE(ols.ok());
  EXPECT_NEAR(robust->parameters[0], ols->parameters[0], 0.05);
  EXPECT_NEAR(robust->parameters[1], ols->parameters[1], 0.02);
  EXPECT_TRUE(robust->converged);
}

TEST(RobustFitTest, SurvivesHeavyContaminationWhereOlsBreaks) {
  Rng rng(43);
  LinearModel model(1);
  const size_t n = 300;
  Matrix x(n, 1);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(0, 10);
    y[i] = 1.0 + 2.0 * x(i, 0) + rng.Normal(0, 0.2);
    // 15% gross outliers, biased upward.
    if (rng.Bernoulli(0.15)) y[i] += rng.Uniform(50, 100);
  }
  auto robust = FitRobustLinear(model, x, y);
  auto ols = FitModel(model, x, y);
  ASSERT_TRUE(robust.ok());
  ASSERT_TRUE(ols.ok());
  const double robust_err = std::fabs(robust->parameters[1] - 2.0);
  const double ols_err = std::fabs(ols->parameters[1] - 2.0);
  EXPECT_LT(robust_err, 0.1);
  // The OLS intercept is dragged far upward by the biased outliers.
  EXPECT_GT(std::fabs(ols->parameters[0] - 1.0), 2.0);
  EXPECT_LT(std::fabs(robust->parameters[0] - 1.0), 0.3);
  EXPECT_LT(robust_err, ols_err);
}

TEST(RobustFitTest, Validation) {
  PowerLawModel nonlinear;
  Matrix x(10, 1);
  Vector y(10, 1.0);
  EXPECT_FALSE(FitRobustLinear(nonlinear, x, y).ok());
  LinearModel model(1);
  Matrix x2(2, 1);
  EXPECT_FALSE(FitRobustLinear(model, x2, Vector(2, 0.0)).ok());  // n <= p
}

TEST(RobustFitTest, MadScale) {
  EXPECT_EQ(MadScale({}), 0.0);
  EXPECT_EQ(MadScale({1.0}), 0.0);
  // Standard normal sample: MAD*1.4826 ~ sigma.
  Rng rng(47);
  Vector r(5000);
  for (auto& v : r) v = rng.Normal(0, 3.0);
  EXPECT_NEAR(MadScale(r), 3.0, 0.15);
  // Robust to outliers: one huge value barely moves it.
  r[0] = 1e9;
  EXPECT_NEAR(MadScale(r), 3.0, 0.15);
}

TEST(PredictAllTest, MatchesPointEvaluation) {
  PowerLawModel m;
  Matrix x(3, 1);
  x(0, 0) = 0.12;
  x(1, 0) = 0.15;
  x(2, 0) = 0.18;
  const Vector params = {1.0, -0.7};
  const Vector pred = PredictAll(m, x, params);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(pred[i], m.Evaluate({x(i, 0)}, params));
  }
}

TEST(BuildDesignMatrixTest, RejectsNonlinearModels) {
  PowerLawModel m;
  Matrix x(3, 1);
  EXPECT_FALSE(BuildDesignMatrix(m, x).ok());
}

TEST(GroupedFitTest, OutputIdenticalAcrossThreadCounts) {
  // The paper's hot path must be bit-identical whether it runs serially
  // or fanned out over the ThreadPool: same parameters, same group order,
  // same skipped/failed tallies. The table plants healthy groups, a
  // too-small group, and a rank-deficient group (identical x values) so
  // all three outcome kinds are exercised.
  Rng rng(42);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, false}}));
  for (int g = 1; g <= 120; ++g) {
    const double a = rng.Uniform(-5, 5);
    const double b = rng.Uniform(-2, 2);
    for (int i = 0; i < 12; ++i) {
      const double x = rng.Uniform(0, 10);
      ASSERT_TRUE(t.AppendRow({Value::Int64(g), Value::Double(x),
                               Value::Double(a + b * x + rng.Normal(0, 0.1))})
                      .ok());
    }
  }
  // Group 200: too few observations -> skipped.
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(200), Value::Double(1), Value::Double(2)})
          .ok());
  // Group 300: constant x -> singular design -> failed.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(300), Value::Double(3.0),
                             Value::Double(rng.Uniform(0, 1))})
                    .ok());
  }
  LinearModel model(1);
  GroupedFitSpec spec;
  spec.group_column = "g";
  spec.input_columns = {"x"};
  spec.output_column = "y";

  ThreadPool::SetGlobalThreadCount(1);
  auto serial = FitGrouped(model, t, spec);
  ASSERT_TRUE(serial.ok());
  ThreadPool::SetGlobalThreadCount(8);
  auto parallel = FitGrouped(model, t, spec);
  ThreadPool::SetGlobalThreadCount(0);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(serial->skipped_too_few, 1u);
  EXPECT_EQ(serial->failed, 1u);
  EXPECT_EQ(parallel->skipped_too_few, serial->skipped_too_few);
  EXPECT_EQ(parallel->failed, serial->failed);
  EXPECT_EQ(parallel->rows_processed, serial->rows_processed);
  ASSERT_EQ(parallel->groups.size(), serial->groups.size());
  for (size_t i = 0; i < serial->groups.size(); ++i) {
    EXPECT_EQ(parallel->groups[i].group_key, serial->groups[i].group_key);
    // Bitwise equality, not EXPECT_NEAR: the parallel merge guarantees
    // the exact same FitModel invocations in the exact same per-group
    // row order.
    EXPECT_EQ(parallel->groups[i].fit.parameters,
              serial->groups[i].fit.parameters);
    EXPECT_EQ(parallel->groups[i].fit.standard_errors,
              serial->groups[i].fit.standard_errors);
    EXPECT_EQ(parallel->groups[i].fit.quality.r_squared,
              serial->groups[i].fit.quality.r_squared);
  }
  // Keys ascend (the output contract).
  for (size_t i = 1; i < serial->groups.size(); ++i) {
    EXPECT_LT(serial->groups[i - 1].group_key, serial->groups[i].group_key);
  }
}

}  // namespace
}  // namespace laws

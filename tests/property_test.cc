// Cross-module property tests: seeded randomized sweeps over the
// invariants that hold the system together. Each TEST_P instance runs the
// property at a different seed, so regressions that only bite on unusual
// data shapes still surface.

#include <gtest/gtest.h>

#include <cmath>

#include "aqp/bloom.h"
#include "common/random.h"
#include "compress/column_compressor.h"
#include "compress/semantic.h"
#include "core/persistence.h"
#include "core/session.h"
#include "linalg/solve.h"
#include "model/fit.h"
#include "model/grouped_fit.h"
#include "model/incremental.h"
#include "model/model.h"
#include "query/executor.h"
#include "storage/serialize.h"

namespace laws {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

/// Random table with all four column types and nulls.
Table RandomTable(Rng* rng, size_t rows) {
  Table t(Schema({Field{"k", DataType::kInt64, true},
                  Field{"x", DataType::kDouble, true},
                  Field{"s", DataType::kString, true},
                  Field{"b", DataType::kBool, true}}));
  const char* words[] = {"alpha", "beta", "gamma", "", "delta"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.push_back(rng->Bernoulli(0.05)
                      ? Value::Null()
                      : Value::Int64(rng->UniformInt(-1000, 1000)));
    row.push_back(rng->Bernoulli(0.05)
                      ? Value::Null()
                      : Value::Double(rng->Normal(0, 100)));
    row.push_back(rng->Bernoulli(0.05)
                      ? Value::Null()
                      : Value::String(words[rng->UniformInt(0, 4)]));
    row.push_back(rng->Bernoulli(0.05) ? Value::Null()
                                       : Value::Bool(rng->Bernoulli(0.5)));
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

bool TablesEqual(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!(a.GetValue(r, c) == b.GetValue(r, c))) return false;
    }
  }
  return true;
}

TEST_P(SeededProperty, SerializationIsIdentity) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 50 + GetParam() % 500);
  auto back = DeserializeTableFromBytes(SerializeTableToBytes(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(TablesEqual(t, *back));
}

TEST_P(SeededProperty, GenericCompressionIsIdentity) {
  Rng rng(GetParam() * 31 + 7);
  Table t = RandomTable(&rng, 50 + GetParam() % 700);
  auto ct = CompressTable(t);
  ASSERT_TRUE(ct.ok());
  auto back = DecompressTable(*ct);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(TablesEqual(t, *back));
}

TEST_P(SeededProperty, SemanticLosslessIsIdentity) {
  Rng rng(GetParam() * 17 + 3);
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false},
                  Field{"y", DataType::kDouble, true}}));
  const size_t groups = 3 + GetParam() % 8;
  for (size_t g = 1; g <= groups; ++g) {
    const double a = rng.Uniform(-3, 3);
    const double b = rng.Uniform(-2, 2);
    for (int i = 0; i < 30; ++i) {
      const double x = rng.Uniform(-5, 5);
      std::vector<Value> row = {Value::Int64(static_cast<int64_t>(g)),
                                Value::Double(x),
                                rng.Bernoulli(0.03)
                                    ? Value::Null()
                                    : Value::Double(a + b * x +
                                                    rng.Normal(0, 0.5))};
      ASSERT_TRUE(t.AppendRow(row).ok());
    }
  }
  LinearModel model(1);
  GroupedFitSpec spec;
  spec.group_column = "g";
  spec.input_columns = {"x"};
  spec.output_column = "y";
  auto fits = FitGrouped(model, t, spec);
  ASSERT_TRUE(fits.ok());
  auto sc = SemanticCompress(t, model, *fits, spec);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();
  auto back = SemanticDecompress(*sc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(TablesEqual(t, *back));
}

TEST_P(SeededProperty, OlsResidualsOrthogonalToDesign) {
  Rng rng(GetParam() * 13 + 1);
  const size_t p_inputs = 1 + GetParam() % 3;
  LinearModel model(p_inputs);
  const size_t n = 40 + GetParam() % 200;
  Matrix x(n, p_inputs);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p_inputs; ++j) x(i, j) = rng.Normal();
    y[i] = rng.Normal(0, 10);
  }
  auto fit = FitModel(model, x, y);
  ASSERT_TRUE(fit.ok());
  const Vector pred = PredictAll(model, x, fit->parameters);
  // Residuals orthogonal to every basis function (OLS normal equations).
  auto design = BuildDesignMatrix(model, x);
  ASSERT_TRUE(design.ok());
  const Vector resid = Subtract(y, pred);
  const Vector atr = design->TransposeMultiplyVec(resid);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-6 * n);
}

TEST_P(SeededProperty, IncrementalOlsMatchesBatchOls) {
  Rng rng(GetParam() * 41 + 11);
  PolynomialModel model(2);
  const size_t n = 30 + GetParam() % 300;
  Matrix x(n, 1);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-2, 2);
    y[i] = rng.Normal(0, 5);
  }
  auto inc = IncrementalOls::Create(model);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->AddBatch(x, y).ok());
  auto inc_fit = inc->Solve();
  auto batch = FitModel(model, x, y);
  ASSERT_TRUE(inc_fit.ok());
  ASSERT_TRUE(batch.ok());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(inc_fit->parameters[j], batch->parameters[j],
                1e-6 * std::max(1.0, std::fabs(batch->parameters[j])));
  }
}

TEST_P(SeededProperty, BloomNeverForgets) {
  Rng rng(GetParam() * 97);
  const size_t n = 100 + GetParam() % 5000;
  BloomFilter bloom(n, 0.02);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    k = rng.NextU64();
    bloom.Insert(k);
  }
  for (uint64_t k : keys) EXPECT_TRUE(bloom.MayContain(k));
}

TEST_P(SeededProperty, QueryFilterPartitionsRows) {
  // WHERE p and WHERE NOT p partition the non-null rows of p.
  Rng rng(GetParam() * 7 + 5);
  Catalog cat;
  auto t = std::make_shared<Table>(RandomTable(&rng, 200));
  cat.RegisterOrReplace("t", t);
  auto pos = ExecuteQuery(cat, "SELECT COUNT(*) FROM t WHERE x > 0");
  auto neg = ExecuteQuery(cat, "SELECT COUNT(*) FROM t WHERE NOT x > 0");
  auto nonnull = ExecuteQuery(cat, "SELECT COUNT(x) FROM t");
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(neg.ok());
  ASSERT_TRUE(nonnull.ok());
  EXPECT_EQ(pos->GetValue(0, 0).int64() + neg->GetValue(0, 0).int64(),
            nonnull->GetValue(0, 0).int64());
}

TEST_P(SeededProperty, AggregatesConsistentAcrossGrouping) {
  // SUM over groups == global SUM; COUNT likewise.
  Rng rng(GetParam() * 3 + 2);
  Catalog cat;
  auto t = std::make_shared<Table>(RandomTable(&rng, 300));
  cat.RegisterOrReplace("t", t);
  auto grouped = ExecuteQuery(
      cat, "SELECT b, SUM(x) AS s, COUNT(x) AS c FROM t GROUP BY b");
  auto global = ExecuteQuery(cat, "SELECT SUM(x), COUNT(x) FROM t");
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(global.ok());
  double sum = 0.0;
  int64_t count = 0;
  for (size_t r = 0; r < grouped->num_rows(); ++r) {
    if (!grouped->GetValue(r, 1).is_null()) {
      sum += grouped->GetValue(r, 1).dbl();
    }
    count += grouped->GetValue(r, 2).int64();
  }
  if (!global->GetValue(0, 0).is_null()) {
    EXPECT_NEAR(sum, global->GetValue(0, 0).dbl(),
                1e-9 * std::max(1.0, std::fabs(sum)));
  }
  EXPECT_EQ(count, global->GetValue(0, 1).int64());
}

TEST_P(SeededProperty, DatabaseImageRoundTripsRandomTables) {
  Rng rng(GetParam() * 19 + 23);
  Catalog data;
  ModelCatalog models;
  data.RegisterOrReplace("a",
                         std::make_shared<Table>(RandomTable(&rng, 120)));
  data.RegisterOrReplace("b",
                         std::make_shared<Table>(RandomTable(&rng, 60)));
  auto bytes = SaveDatabaseToBytes(data, models);
  ASSERT_TRUE(bytes.ok());
  Catalog data2;
  ModelCatalog models2;
  ASSERT_TRUE(LoadDatabaseFromBytes(*bytes, &data2, &models2).ok());
  EXPECT_TRUE(TablesEqual(**data.Get("a"), **data2.Get("a")));
  EXPECT_TRUE(TablesEqual(**data.Get("b"), **data2.Get("b")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace laws

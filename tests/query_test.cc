#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "query/executor.h"
#include "query/expr_eval.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "storage/catalog.h"

namespace laws {
namespace {

/// A small fixed table:
///  id | score | tag  | ok
///   1 |  10.0 | red  | true
///   2 |  20.0 | blue | false
///   3 |  NULL | red  | true
///   4 |  40.0 | blue | true
///   5 |  50.0 | red  | false
Catalog MakeCatalog() {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"id", DataType::kInt64, false},
              Field{"score", DataType::kDouble, true},
              Field{"tag", DataType::kString, false},
              Field{"ok", DataType::kBool, false}}));
  auto add = [&](int64_t id, Value score, const char* tag, bool ok) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(id), std::move(score),
                              Value::String(tag), Value::Bool(ok)})
                    .ok());
  };
  add(1, Value::Double(10.0), "red", true);
  add(2, Value::Double(20.0), "blue", false);
  add(3, Value::Null(), "red", true);
  add(4, Value::Double(40.0), "blue", true);
  add(5, Value::Double(50.0), "red", false);
  cat.RegisterOrReplace("t", t);
  return cat;
}

// --- Lexer --------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a, 1, 2.5, 'it''s' FROM t WHERE x <> 3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_EQ((*tokens)[3].type, TokenType::kIntegerLit);
  EXPECT_EQ((*tokens)[5].type, TokenType::kDoubleLit);
  EXPECT_EQ((*tokens)[7].type, TokenType::kStringLit);
  EXPECT_EQ((*tokens)[7].text, "it's");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, ScientificNotationAndComments) {
  auto tokens = Tokenize("1e3 2.5E-2 -- trailing comment\n7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kDoubleLit);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDoubleLit);
  EXPECT_EQ((*tokens)[2].text, "7");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

// --- Parser -----------------------------------------------------------

TEST(ParserTest, FullStatementRoundTrip) {
  auto stmt = ParseSelect(
      "SELECT tag, COUNT(*) AS n, AVG(score) FROM t WHERE score > 5 "
      "GROUP BY tag HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select_list.size(), 3u);
  EXPECT_EQ(stmt->select_list[1].alias, "n");
  EXPECT_EQ(stmt->from_table, "t");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_EQ(stmt->order_by.size(), 1u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("SELECT 1 + 2 * 3 FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select_list[0].expr->ToString(), "(1 + (2 * 3))");
  auto stmt2 = ParseSelect("SELECT (1 + 2) * 3 FROM t");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2->select_list[0].expr->ToString(), "((1 + 2) * 3)");
}

TEST(ParserTest, AndOrPrecedence) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  // AND binds tighter than OR.
  EXPECT_EQ(stmt->where->ToString(), "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE x BETWEEN 1 AND 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->ToString(), "((x >= 1) AND (x <= 5))");
}

TEST(ParserTest, InDesugarsToDisjunction) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE x IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->ToString(),
            "(((x = 1) OR (x = 2)) OR (x = 3))");
}

TEST(ParserTest, ImplicitAlias) {
  auto stmt = ParseSelect("SELECT score total FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select_list[0].alias, "total");
}

TEST(ParserTest, CountStarOnlyForCount) {
  EXPECT_TRUE(ParseSelect("SELECT COUNT(*) FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());                 // no FROM
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());    // no predicate
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());  // bad limit
  EXPECT_FALSE(ParseSelect("SELECT a FROM t garbage").ok());  // trailing
  EXPECT_FALSE(ParseSelect("UPDATE t SET a = 1").ok());
}

TEST(ParserTest, GarbageNeverCrashesOnlyErrors) {
  // Fuzz-ish sweep: deterministic pseudo-random token soup must always
  // come back as a ParseError (or parse), never crash or hang.
  const char* fragments[] = {"SELECT", "FROM",  "WHERE", "(",    ")",
                             ",",      "*",     "+",     "-",    "'x'",
                             "1",      "2.5",   "t",     "a",    "=",
                             "<",      "AND",   "OR",    "NOT",  "JOIN",
                             "ON",     "GROUP", "BY",    "LIMIT"};
  uint64_t state = 12345;
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(state % 12);
    for (int i = 0; i < len; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      sql += fragments[(state >> 33) % (sizeof(fragments) /
                                        sizeof(fragments[0]))];
      sql += ' ';
    }
    auto result = ParseSelect(sql);  // must not crash
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << sql;
    }
  }
}

TEST(ParserTest, StandaloneExpression) {
  auto e = ParseExpression("wavelength < 0.15 AND source = 42");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->ToString().find("wavelength") != std::string::npos);
  EXPECT_FALSE(ParseExpression("1 +").ok());
}

// --- Expression evaluation --------------------------------------------------

TEST(ExprEvalTest, ArithmeticTyping) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  auto e = ParseExpression("id * 2 + 1");
  ASSERT_TRUE(e.ok());
  auto col = EvaluateExpr(**e, *t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->type(), DataType::kInt64);  // int ops stay int
  EXPECT_EQ(col->Int64At(0), 3);
  EXPECT_EQ(col->Int64At(4), 11);
  // Division promotes to double.
  auto d = EvaluateExpr(**ParseExpression("id / 2"), *t);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(d->DoubleAt(0), 0.5);
}

TEST(ExprEvalTest, NullPropagationInArithmetic) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  auto col = EvaluateExpr(**ParseExpression("score + 1"), *t);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE(col->IsNull(0));
  EXPECT_TRUE(col->IsNull(2));  // row 3 has NULL score
}

TEST(ExprEvalTest, ComparisonAndThreeValuedLogic) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  // score > 15 is NULL for row 3; NULL OR true = true; NULL AND true = NULL.
  auto or_col = EvaluateExpr(**ParseExpression("score > 15 OR ok"), *t);
  ASSERT_TRUE(or_col.ok());
  EXPECT_TRUE(or_col->BoolAt(2));  // ok=true dominates NULL
  auto and_col = EvaluateExpr(**ParseExpression("score > 15 AND ok"), *t);
  ASSERT_TRUE(and_col.ok());
  EXPECT_TRUE(and_col->IsNull(2));
  auto and_false =
      EvaluateExpr(**ParseExpression("score > 15 AND NOT ok"), *t);
  ASSERT_TRUE(and_false.ok());
  EXPECT_FALSE(and_false->IsNull(4));  // row5: 50>15 && !false = true
  EXPECT_TRUE(and_false->BoolAt(4));
}

TEST(ExprEvalTest, StringComparison) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  auto col = EvaluateExpr(**ParseExpression("tag = 'red'"), *t);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE(col->BoolAt(0));
  EXPECT_FALSE(col->BoolAt(1));
  // Cross-type comparison errors.
  EXPECT_FALSE(EvaluateExpr(**ParseExpression("tag = 1"), *t).ok());
}

TEST(ExprEvalTest, Functions) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  auto abs_col = EvaluateExpr(**ParseExpression("abs(0 - id)"), *t);
  ASSERT_TRUE(abs_col.ok());
  EXPECT_EQ(abs_col->Int64At(4), 5);
  auto pow_col = EvaluateExpr(**ParseExpression("pow(id, 2)"), *t);
  ASSERT_TRUE(pow_col.ok());
  EXPECT_DOUBLE_EQ(pow_col->DoubleAt(2), 9.0);
  auto log_col = EvaluateExpr(**ParseExpression("ln(exp(1))"), *t);
  ASSERT_TRUE(log_col.ok());
  EXPECT_NEAR(log_col->DoubleAt(0), 1.0, 1e-12);
  EXPECT_FALSE(EvaluateExpr(**ParseExpression("nosuchfn(1)"), *t).ok());
  EXPECT_FALSE(EvaluateExpr(**ParseExpression("sqrt(1, 2)"), *t).ok());
}

TEST(ExprEvalTest, CoalesceAndNullif) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  // Row 3 has NULL score; coalesce falls back to -1.
  auto c = EvaluateExpr(**ParseExpression("coalesce(score, -1.0)"), *t);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_DOUBLE_EQ(c->DoubleAt(0), 10.0);
  EXPECT_DOUBLE_EQ(c->DoubleAt(2), -1.0);
  // Chained fallbacks.
  auto c2 = EvaluateExpr(
      **ParseExpression("coalesce(nullif(score, 10.0), 0.0)"), *t);
  ASSERT_TRUE(c2.ok());
  EXPECT_DOUBLE_EQ(c2->DoubleAt(0), 0.0);  // 10 nulled out, coalesced to 0
  EXPECT_DOUBLE_EQ(c2->DoubleAt(1), 20.0);
  // nullif yields NULL where equal.
  auto n = EvaluateExpr(**ParseExpression("nullif(tag, 'red')"), *t);
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(n->IsNull(0));
  EXPECT_EQ(n->StringAt(1), "blue");
  // Type mixing rejected.
  EXPECT_FALSE(EvaluateExpr(**ParseExpression("coalesce(tag, 1)"), *t).ok());
  EXPECT_FALSE(EvaluateExpr(**ParseExpression("coalesce()"), *t).ok());
}

TEST(ExprEvalTest, DivisionByZeroIsError) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  EXPECT_EQ(EvaluateExpr(**ParseExpression("1 / (id - id)"), *t)
                .status()
                .code(),
            StatusCode::kNumericError);
  EXPECT_EQ(EvaluateExpr(**ParseExpression("id % (id - id)"), *t)
                .status()
                .code(),
            StatusCode::kNumericError);
}

TEST(ExprEvalTest, EvaluateConstantFoldsComposites) {
  auto v = EvaluateConstant(**ParseExpression("-(1 + 2) * 4"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int64(), -12);
  EXPECT_FALSE(EvaluateConstant(**ParseExpression("id + 1")).ok());
}

TEST(ExprEvalTest, FilterRowsExcludesNullAndFalse) {
  Catalog cat = MakeCatalog();
  auto t = *cat.Get("t");
  auto rows = FilterRows(**ParseExpression("score > 15"), *t);
  ASSERT_TRUE(rows.ok());
  // Rows 2 (20), 4 (40), 5 (50); row 3 (NULL) excluded.
  EXPECT_EQ(*rows, (std::vector<uint32_t>{1, 3, 4}));
  EXPECT_FALSE(FilterRows(**ParseExpression("id + 1"), *t).ok());
}

// --- Executor ---------------------------------------------------------------

TEST(ExecutorTest, SelectStarPreservesEverything) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(cat, "SELECT * FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 5u);
  EXPECT_EQ(result->num_columns(), 4u);
  EXPECT_EQ(result->schema().field(0).name, "id");
}

TEST(ExecutorTest, ProjectionWithExpressionsAndAliases) {
  Catalog cat = MakeCatalog();
  auto result =
      ExecuteQuery(cat, "SELECT id, score * 2 AS doubled FROM t WHERE id = 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->schema().field(1).name, "doubled");
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 40.0);
}

TEST(ExecutorTest, WhereFiltersAndNullsDrop) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(cat, "SELECT id FROM t WHERE score >= 20");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);  // NULL row excluded
}

TEST(ExecutorTest, GlobalAggregates) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT COUNT(*), COUNT(score), SUM(score), AVG(score), "
           "MIN(score), MAX(score) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->GetValue(0, 0).int64(), 5);   // COUNT(*)
  EXPECT_EQ(result->GetValue(0, 1).int64(), 4);   // COUNT skips NULL
  EXPECT_DOUBLE_EQ(result->GetValue(0, 2).dbl(), 120.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 3).dbl(), 30.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 4).dbl(), 10.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 5).dbl(), 50.0);
}

TEST(ExecutorTest, EmptyInputAggregates) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT COUNT(*), SUM(score) FROM t WHERE id > 100");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->GetValue(0, 0).int64(), 0);
  EXPECT_TRUE(result->GetValue(0, 1).is_null());  // SUM of nothing is NULL
}

TEST(ExecutorTest, GroupByWithHaving) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat,
      "SELECT tag, COUNT(*) AS n, AVG(score) AS mean FROM t "
      "GROUP BY tag HAVING COUNT(*) >= 2 ORDER BY tag");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->GetValue(0, 0).str(), "blue");
  EXPECT_EQ(result->GetValue(0, 1).int64(), 2);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 2).dbl(), 30.0);
  EXPECT_EQ(result->GetValue(1, 0).str(), "red");
  EXPECT_EQ(result->GetValue(1, 1).int64(), 3);
  EXPECT_DOUBLE_EQ(result->GetValue(1, 2).dbl(), 30.0);  // (10+50)/2
}

TEST(ExecutorTest, ExpressionsOverAggregates) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT SUM(score) / COUNT(score) AS manual_avg FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->GetValue(0, 0).dbl(), 30.0);
}

TEST(ExecutorTest, GroupByExpressionKey) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT id % 2 AS parity, COUNT(*) FROM t GROUP BY id % 2 "
           "ORDER BY parity");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->GetValue(0, 1).int64(), 2);  // ids 2, 4
  EXPECT_EQ(result->GetValue(1, 1).int64(), 3);  // ids 1, 3, 5
}

TEST(ExecutorTest, OrderByMultipleKeysAndLimit) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT id, tag FROM t ORDER BY tag ASC, id DESC LIMIT 3");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->GetValue(0, 0).int64(), 4);  // blue, id desc
  EXPECT_EQ(result->GetValue(1, 0).int64(), 2);
  EXPECT_EQ(result->GetValue(2, 0).int64(), 5);  // red starts
}

TEST(ExecutorTest, OrderByNullsLastAscending) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(cat, "SELECT id, score FROM t ORDER BY score");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->GetValue(4, 1).is_null());
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 10.0);
}

TEST(ExecutorTest, OrderByAliasFromSelectList) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT id, score * -1 AS neg FROM t WHERE score > 0 "
           "ORDER BY neg");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->GetValue(0, 0).int64(), 5);  // -50 smallest
}

TEST(ExecutorTest, LimitZeroAndOversized) {
  Catalog cat = MakeCatalog();
  auto zero = ExecuteQuery(cat, "SELECT id FROM t LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->num_rows(), 0u);
  auto big = ExecuteQuery(cat, "SELECT id FROM t LIMIT 100");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->num_rows(), 5u);
}

TEST(ExecutorTest, PaperQueriesShapeCheck) {
  // The two motivating queries from §2, over a stand-in table.
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"source", DataType::kInt64, false},
              Field{"wavelength", DataType::kDouble, false},
              Field{"intensity", DataType::kDouble, false}}));
  for (int s = 1; s <= 50; ++s) {
    for (double w : {0.12, 0.14, 0.16}) {
      ASSERT_TRUE(t->AppendRow({Value::Int64(s), Value::Double(w),
                                Value::Double(s * w)})
                      .ok());
    }
  }
  cat.RegisterOrReplace("measurements", t);
  auto q1 = ExecuteQuery(cat,
                         "SELECT intensity FROM measurements WHERE source = "
                         "42 AND wavelength = 0.14");
  ASSERT_TRUE(q1.ok());
  ASSERT_EQ(q1->num_rows(), 1u);
  EXPECT_NEAR(q1->GetValue(0, 0).dbl(), 42 * 0.14, 1e-12);
  auto q2 = ExecuteQuery(cat,
                         "SELECT source, intensity FROM measurements WHERE "
                         "wavelength = 0.14 AND intensity > 3.0");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->num_rows(), 29u);  // sources 22..50
}

TEST(ExecutorTest, ErrorsPropagate) {
  Catalog cat = MakeCatalog();
  EXPECT_FALSE(ExecuteQuery(cat, "SELECT x FROM t").ok());
  EXPECT_FALSE(ExecuteQuery(cat, "SELECT id FROM missing").ok());
  EXPECT_FALSE(ExecuteQuery(cat, "SELECT * FROM t GROUP BY tag").ok());
  EXPECT_FALSE(ExecuteQuery(cat, "SELECT id FROM t WHERE score").ok());
}

// --- CASE expressions -----------------------------------------------------

TEST(CaseTest, SearchedCaseWithElse) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat,
      "SELECT id, CASE WHEN score >= 40 THEN 'high' WHEN score >= 20 THEN "
      "'mid' ELSE 'low' END AS band FROM t ORDER BY id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->GetValue(0, 1).str(), "low");   // 10
  EXPECT_EQ(result->GetValue(1, 1).str(), "mid");   // 20
  EXPECT_EQ(result->GetValue(2, 1).str(), "low");   // NULL -> no WHEN, ELSE
  EXPECT_EQ(result->GetValue(3, 1).str(), "high");  // 40
  EXPECT_EQ(result->GetValue(4, 1).str(), "high");  // 50
}

TEST(CaseTest, MissingElseYieldsNull) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat,
      "SELECT CASE WHEN score > 45 THEN 1 END AS top FROM t ORDER BY id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->GetValue(0, 0).is_null());
  EXPECT_EQ(result->GetValue(4, 0).int64(), 1);
}

TEST(CaseTest, NumericPromotionAndGroupedUse) {
  Catalog cat = MakeCatalog();
  // CASE inside an aggregate: count rows per condition (pivot idiom).
  auto result = ExecuteQuery(
      cat,
      "SELECT SUM(CASE WHEN tag = 'red' THEN 1 ELSE 0 END) AS reds, "
      "SUM(CASE WHEN tag = 'blue' THEN 1.0 ELSE 0.0 END) AS blues FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->GetValue(0, 0).dbl(), 3.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 2.0);
}

TEST(CaseTest, ValidationErrors) {
  Catalog cat = MakeCatalog();
  EXPECT_FALSE(ExecuteQuery(cat, "SELECT CASE END FROM t").ok());
  EXPECT_FALSE(
      ExecuteQuery(cat, "SELECT CASE WHEN id THEN 1 END FROM t").ok());
  EXPECT_FALSE(ExecuteQuery(cat,
                            "SELECT CASE WHEN ok THEN 'x' ELSE 1 END FROM t")
                   .ok());
  EXPECT_FALSE(
      ExecuteQuery(cat, "SELECT CASE WHEN ok THEN 1 FROM t").ok());
}

TEST(CaseTest, ToStringRoundTrips) {
  auto e = ParseExpression(
      "CASE WHEN a > 1 THEN 'x' WHEN a > 0 THEN 'y' ELSE 'z' END");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(),
            "CASE WHEN (a > 1) THEN 'x' WHEN (a > 0) THEN 'y' ELSE 'z' END");
  auto clone = (*e)->Clone();
  EXPECT_EQ(clone->ToString(), (*e)->ToString());
}

// --- VARIANCE / STDDEV -----------------------------------------------------

TEST(VarianceTest, GlobalAndGrouped) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT VARIANCE(score), STDDEV(score) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // scores 10, 20, 40, 50 (NULL skipped): mean 30, var = (400+100+100+400)/3.
  EXPECT_NEAR(result->GetValue(0, 0).dbl(), 1000.0 / 3.0, 1e-9);
  EXPECT_NEAR(result->GetValue(0, 1).dbl(), std::sqrt(1000.0 / 3.0), 1e-9);
  auto grouped = ExecuteQuery(
      cat,
      "SELECT tag, STDDEV(score) FROM t GROUP BY tag ORDER BY tag");
  ASSERT_TRUE(grouped.ok());
  // blue: 20, 40 -> sd = sqrt(200); red: 10, 50 -> sqrt(800).
  EXPECT_NEAR(grouped->GetValue(0, 1).dbl(), std::sqrt(200.0), 1e-9);
  EXPECT_NEAR(grouped->GetValue(1, 1).dbl(), std::sqrt(800.0), 1e-9);
}

TEST(VarianceTest, SingleValueIsNull) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT VARIANCE(score) FROM t WHERE id = 1");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->GetValue(0, 0).is_null());
}

TEST(VarianceTest, AliasesParse) {
  Catalog cat = MakeCatalog();
  EXPECT_TRUE(ExecuteQuery(cat, "SELECT VAR_SAMP(score) FROM t").ok());
  EXPECT_TRUE(ExecuteQuery(cat, "SELECT STDDEV_SAMP(score) FROM t").ok());
}

// --- JOIN and DISTINCT -------------------------------------------------

/// Adds a small dimension table keyed by tag.
void AddDimension(Catalog* cat) {
  auto dim = std::make_shared<Table>(
      Schema({Field{"tag", DataType::kString, false},
              Field{"weight", DataType::kDouble, false}}));
  ASSERT_TRUE(
      dim->AppendRow({Value::String("red"), Value::Double(1.5)}).ok());
  ASSERT_TRUE(
      dim->AppendRow({Value::String("blue"), Value::Double(2.0)}).ok());
  ASSERT_TRUE(
      dim->AppendRow({Value::String("green"), Value::Double(9.0)}).ok());
  cat->RegisterOrReplace("dim", dim);
}

TEST(JoinTest, InnerEquiJoinBasics) {
  Catalog cat = MakeCatalog();
  AddDimension(&cat);
  auto result = ExecuteQuery(
      cat, "SELECT id, weight FROM t JOIN dim ON tag = tag ORDER BY id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every t row has a matching dim row (red/blue both present).
  ASSERT_EQ(result->num_rows(), 5u);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 1.5);  // id 1 red
  EXPECT_DOUBLE_EQ(result->GetValue(1, 1).dbl(), 2.0);  // id 2 blue
}

TEST(JoinTest, CollidingColumnNamesArePrefixed) {
  Catalog cat = MakeCatalog();
  // Second table also has a column 'tag' plus its own 'id'.
  auto other = std::make_shared<Table>(
      Schema({Field{"tag", DataType::kString, false},
              Field{"id", DataType::kInt64, false}}));
  ASSERT_TRUE(
      other->AppendRow({Value::String("red"), Value::Int64(100)}).ok());
  cat.RegisterOrReplace("other", other);
  auto result = ExecuteQuery(
      cat, "SELECT id, other_id FROM t JOIN other ON tag = tag");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);  // three red rows in t
  EXPECT_EQ(result->GetValue(0, 1).int64(), 100);
}

TEST(JoinTest, JoinThenAggregate) {
  Catalog cat = MakeCatalog();
  AddDimension(&cat);
  auto result = ExecuteQuery(
      cat,
      "SELECT tag, SUM(score * weight) AS weighted FROM t JOIN dim ON tag "
      "= tag GROUP BY tag ORDER BY tag");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  // blue: (20+40)*2.0 = 120; red: (10+50)*1.5 = 90 (NULL score skipped).
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 120.0);
  EXPECT_DOUBLE_EQ(result->GetValue(1, 1).dbl(), 90.0);
}

TEST(JoinTest, NullKeysNeverMatch) {
  Catalog cat;
  auto a = std::make_shared<Table>(
      Schema({Field{"k", DataType::kInt64, true},
              Field{"v", DataType::kInt64, false}}));
  ASSERT_TRUE(a->AppendRow({Value::Int64(1), Value::Int64(10)}).ok());
  ASSERT_TRUE(a->AppendRow({Value::Null(), Value::Int64(20)}).ok());
  auto b = std::make_shared<Table>(
      Schema({Field{"kk", DataType::kInt64, true},
              Field{"w", DataType::kInt64, false}}));
  ASSERT_TRUE(b->AppendRow({Value::Int64(1), Value::Int64(100)}).ok());
  ASSERT_TRUE(b->AppendRow({Value::Null(), Value::Int64(200)}).ok());
  cat.RegisterOrReplace("a", a);
  cat.RegisterOrReplace("b", b);
  auto result = ExecuteQuery(cat, "SELECT v, w FROM a JOIN b ON k = kk");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);  // NULL = NULL does not match
  EXPECT_EQ(result->GetValue(0, 1).int64(), 100);
}

TEST(JoinTest, TypeMismatchAndMissingTableErrors) {
  Catalog cat = MakeCatalog();
  AddDimension(&cat);
  EXPECT_FALSE(
      ExecuteQuery(cat, "SELECT id FROM t JOIN dim ON id = tag").ok());
  EXPECT_FALSE(
      ExecuteQuery(cat, "SELECT id FROM t JOIN ghost ON tag = tag").ok());
  EXPECT_FALSE(ExecuteQuery(cat, "SELECT id FROM t JOIN dim").ok());
}

TEST(DistinctTest, DeduplicatesProjectedRows) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(cat, "SELECT DISTINCT tag FROM t ORDER BY tag");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->GetValue(0, 0).str(), "blue");
  EXPECT_EQ(result->GetValue(1, 0).str(), "red");
}

TEST(DistinctTest, DistinctWithLimitAppliesAfterDedup) {
  Catalog cat = MakeCatalog();
  auto result =
      ExecuteQuery(cat, "SELECT DISTINCT tag FROM t ORDER BY tag LIMIT 1");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->GetValue(0, 0).str(), "blue");
}

TEST(DistinctTest, DistinctOverExpression) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT DISTINCT id % 2 AS parity FROM t ORDER BY parity");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->GetValue(0, 0).int64(), 0);
  EXPECT_EQ(result->GetValue(1, 0).int64(), 1);
}

// --- EXPLAIN ---------------------------------------------------------------

TEST(ExplainTest, ShowsPipelineOutsideIn) {
  Catalog cat = MakeCatalog();
  auto plan = ExplainQuery(
      cat,
      "SELECT tag, COUNT(*) FROM t WHERE score > 5 GROUP BY tag "
      "HAVING COUNT(*) > 1 ORDER BY tag LIMIT 3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Outermost first, scan last; each operator present once.
  const std::string& p = *plan;
  const size_t limit_pos = p.find("Limit(3)");
  const size_t sort_pos = p.find("Sort(");
  const size_t agg_pos = p.find("HashAggregate");
  const size_t filter_pos = p.find("Filter((score > 5))");
  const size_t scan_pos = p.find("Scan(t, 5 rows)");
  EXPECT_NE(limit_pos, std::string::npos);
  EXPECT_NE(sort_pos, std::string::npos);
  EXPECT_NE(agg_pos, std::string::npos);
  EXPECT_NE(filter_pos, std::string::npos);
  EXPECT_NE(scan_pos, std::string::npos);
  EXPECT_LT(limit_pos, sort_pos);
  EXPECT_LT(agg_pos, filter_pos);
  EXPECT_LT(filter_pos, scan_pos);
}

TEST(ExplainTest, JoinAndDistinctAppear) {
  Catalog cat = MakeCatalog();
  AddDimension(&cat);
  auto plan = ExplainQuery(
      cat, "SELECT DISTINCT id FROM t JOIN dim ON tag = tag");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("Distinct"), std::string::npos);
  EXPECT_NE(plan->find("HashJoin"), std::string::npos);
  EXPECT_NE(plan->find("tag = tag"), std::string::npos);
  EXPECT_FALSE(ExplainQuery(cat, "SELECT x FROM missing").ok());
}

TEST(ExecutorTest, CountStarOnEmptyGroupedInputYieldsNoRows) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat, "SELECT tag, COUNT(*) FROM t WHERE id > 99 GROUP BY tag");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

// --- NaN ordering, grouping and aggregation ----------------------------
//
// NaN values are reachable through CSV import and the fused gather's NaN
// domain sentinels, so the executor must give them a total order (numbers
// < NaN < NULL ascending) and a single GROUP BY identity. These tests pin
// that contract; the ordering ones fail on a comparator that returns the
// same sign for NaN compared in either direction.

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// id | v                      (v nullable double, NaN in two sign forms)
Catalog MakeNanCatalog() {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"id", DataType::kInt64, false},
              Field{"v", DataType::kDouble, true}}));
  auto add = [&](int64_t id, Value v) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(id), std::move(v)}).ok());
  };
  const double neg_nan = std::copysign(kNan, -1.0);
  add(1, Value::Double(3.0));
  add(2, Value::Double(kNan));
  add(3, Value::Double(1.0));
  add(4, Value::Null());
  add(5, Value::Double(2.0));
  add(6, Value::Double(neg_nan));
  cat.RegisterOrReplace("n", t);
  return cat;
}

TEST(NanOrderTest, AscendingNumbersThenNanThenNull) {
  Catalog cat = MakeNanCatalog();
  auto result = ExecuteQuery(cat, "SELECT id, v FROM n ORDER BY v");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 6u);
  // 1.0, 2.0, 3.0, NaN, NaN (stable: id 2 before id 6), NULL.
  EXPECT_EQ(result->GetValue(0, 0).int64(), 3);
  EXPECT_EQ(result->GetValue(1, 0).int64(), 5);
  EXPECT_EQ(result->GetValue(2, 0).int64(), 1);
  EXPECT_EQ(result->GetValue(3, 0).int64(), 2);
  EXPECT_EQ(result->GetValue(4, 0).int64(), 6);
  EXPECT_EQ(result->GetValue(5, 0).int64(), 4);
  EXPECT_TRUE(std::isnan(result->GetValue(3, 1).dbl()));
  EXPECT_TRUE(result->GetValue(5, 1).is_null());
}

TEST(NanOrderTest, DescendingNullThenNanThenNumbers) {
  Catalog cat = MakeNanCatalog();
  auto result = ExecuteQuery(cat, "SELECT id FROM n ORDER BY v DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 6u);
  // DESC is the exact reversal of the total order, except ties keep their
  // stable (table) order: NULL, NaN (id 2 then 6), 3.0, 2.0, 1.0.
  EXPECT_EQ(result->GetValue(0, 0).int64(), 4);
  EXPECT_EQ(result->GetValue(1, 0).int64(), 2);
  EXPECT_EQ(result->GetValue(2, 0).int64(), 6);
  EXPECT_EQ(result->GetValue(3, 0).int64(), 1);
  EXPECT_EQ(result->GetValue(4, 0).int64(), 5);
  EXPECT_EQ(result->GetValue(5, 0).int64(), 3);
}

TEST(NanOrderTest, MultiKeySortWithNanInSecondaryKey) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"g", DataType::kInt64, false},
              Field{"v", DataType::kDouble, true},
              Field{"id", DataType::kInt64, false}}));
  auto add = [&](int64_t g, Value v, int64_t id) {
    ASSERT_TRUE(
        t->AppendRow({Value::Int64(g), std::move(v), Value::Int64(id)}).ok());
  };
  add(2, Value::Double(kNan), 1);
  add(1, Value::Double(5.0), 2);
  add(2, Value::Double(4.0), 3);
  add(1, Value::Double(kNan), 4);
  add(1, Value::Null(), 5);
  add(2, Value::Double(6.0), 6);
  cat.RegisterOrReplace("m", t);
  auto result =
      ExecuteQuery(cat, "SELECT id FROM m ORDER BY g ASC, v DESC, id ASC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // g=1: NULL, NaN, 5.0 -> ids 5, 4, 2; g=2: NaN, 6.0, 4.0 -> ids 1, 6, 3.
  const int64_t expect[] = {5, 4, 2, 1, 6, 3};
  ASSERT_EQ(result->num_rows(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result->GetValue(i, 0).int64(), expect[i]) << "row " << i;
  }
}

TEST(NanOrderTest, ComparatorIsATotalOrder) {
  const Value nan = Value::Double(kNan);
  const Value neg_nan = Value::Double(std::copysign(kNan, -1.0));
  const Value one = Value::Double(1.0);
  const Value null = Value::Null();
  // numbers < NaN < NULL, NaN == NaN regardless of bit pattern.
  EXPECT_EQ(CompareOrderValues(one, nan), -1);
  EXPECT_EQ(CompareOrderValues(nan, one), 1);
  EXPECT_EQ(CompareOrderValues(nan, neg_nan), 0);
  EXPECT_EQ(CompareOrderValues(nan, null), -1);
  EXPECT_EQ(CompareOrderValues(null, nan), 1);
  EXPECT_EQ(CompareOrderValues(null, null), 0);
  // int64/bool coerce to double for cross-type numeric comparison.
  EXPECT_EQ(CompareOrderValues(Value::Int64(2), Value::Double(1.5)), 1);
  EXPECT_EQ(CompareOrderValues(Value::Bool(true), Value::Int64(1)), 0);
}

TEST(NanOrderTest, MixedStringNumberKeysAreFlaggedIncomparable) {
  // A string never has a numeric order against a number. The comparator
  // used to return 0 ("equal") when AsDouble() failed, silently sorting
  // incomparable keys as ties; now it ranks deterministically and sets
  // the flag so SortRows can propagate a type error.
  bool incomparable = false;
  EXPECT_EQ(CompareOrderValues(Value::Double(1.0), Value::String("a"),
                               &incomparable),
            -1);
  EXPECT_TRUE(incomparable);
  incomparable = false;
  EXPECT_EQ(CompareOrderValues(Value::String("a"), Value::Double(1.0),
                               &incomparable),
            1);
  EXPECT_TRUE(incomparable);
  // Comparable pairs never touch the flag.
  incomparable = false;
  EXPECT_EQ(CompareOrderValues(Value::String("a"), Value::String("b"),
                               &incomparable),
            -1);
  EXPECT_EQ(CompareOrderValues(Value::String("a"), Value::Null(),
                               &incomparable),
            -1);
  EXPECT_FALSE(incomparable);
  // NaN still ranks before strings so the order stays transitive even in
  // the flagged case.
  EXPECT_EQ(CompareOrderValues(Value::Double(kNan), Value::String("a")), -1);
}

TEST(GroupByNanTest, AllNanBitPatternsFormOneGroup) {
  Catalog cat = MakeNanCatalog();  // two NaNs with opposite sign bits
  auto result =
      ExecuteQuery(cat, "SELECT v, COUNT(v) AS c FROM n GROUP BY v");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Groups: 3.0, 1.0, 2.0, NaN (both rows), NULL — never one group per
  // NaN row and never split by the sign bit ("nan" vs "-nan").
  EXPECT_EQ(result->num_rows(), 5u);
  size_t nan_groups = 0;
  for (size_t r = 0; r < result->num_rows(); ++r) {
    const Value key = result->GetValue(r, 0);
    if (key.is_double() && std::isnan(key.dbl())) {
      ++nan_groups;
      EXPECT_EQ(result->GetValue(r, 1).int64(), 2);
    }
  }
  EXPECT_EQ(nan_groups, 1u);
}

TEST(GroupByNanTest, NegativeZeroFoldsIntoPositiveZero) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"v", DataType::kDouble, false}}));
  ASSERT_TRUE(t->AppendRow({Value::Double(-0.0)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Double(0.0)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Double(1.0)}).ok());
  cat.RegisterOrReplace("z", t);
  auto result =
      ExecuteQuery(cat, "SELECT v, COUNT(v) AS c FROM z GROUP BY v");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // -0.0 == 0.0, so they must share a group (and the emitted key must be
  // the canonical +0.0, not a first-seen "-0").
  ASSERT_EQ(result->num_rows(), 2u);
  bool saw_zero = false;
  for (size_t r = 0; r < result->num_rows(); ++r) {
    const double key = result->GetValue(r, 0).dbl();
    if (key == 0.0) {
      saw_zero = true;
      EXPECT_FALSE(std::signbit(key));
      EXPECT_EQ(result->GetValue(r, 1).int64(), 2);
    }
  }
  EXPECT_TRUE(saw_zero);
}

TEST(NanAggregateTest, MinMaxSkipNanWhileSumAvgVariancePoison) {
  // Pinned semantics (documented in DESIGN.md "Observability" / README):
  // MIN/MAX ignore NaN — a NaN never wins an ordered comparison, so the
  // extrema of the non-NaN values are returned; SUM/AVG/VARIANCE/STDDEV
  // propagate NaN (the arithmetic poisons), and COUNT counts NaN as a
  // present (non-NULL) value.
  Catalog cat = MakeNanCatalog();
  auto result = ExecuteQuery(
      cat,
      "SELECT MIN(v), MAX(v), AVG(v), SUM(v), COUNT(v), STDDEV(v) FROM n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 0).dbl(), 1.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 3.0);
  EXPECT_TRUE(std::isnan(result->GetValue(0, 2).dbl()));
  EXPECT_TRUE(std::isnan(result->GetValue(0, 3).dbl()));
  EXPECT_EQ(result->GetValue(0, 4).int64(), 5);  // 5 non-NULL, 2 of them NaN
  EXPECT_TRUE(std::isnan(result->GetValue(0, 5).dbl()));
}

TEST(NanAggregateTest, NanFirstDoesNotPoisonMinMax) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"v", DataType::kDouble, false}}));
  ASSERT_TRUE(t->AppendRow({Value::Double(kNan)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Double(5.0)}).ok());
  cat.RegisterOrReplace("w", t);
  auto result = ExecuteQuery(cat, "SELECT MIN(v), MAX(v) FROM w");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->GetValue(0, 0).dbl(), 5.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 5.0);
}

// --- EXPLAIN ANALYZE ---------------------------------------------------

TEST(ExplainAnalyzeTest, RendersStageTreeWithRowsAndTimings) {
  Catalog cat = MakeNanCatalog();
  auto text = ExplainAnalyzeQuery(
      cat, "SELECT v, COUNT(id) FROM n WHERE id > 1 GROUP BY v ORDER BY v");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Every executed stage appears with measured rows and wall time. The
  // two NaN rows (ids 2 and 6) canonicalize into one group: 5 input rows
  // -> groups {1.0, 2.0, NaN, NULL}.
  EXPECT_NE(text->find("Parse"), std::string::npos);
  EXPECT_NE(text->find("Scan  rows=6->6"), std::string::npos);
  // The filter stage carries its compiled bytecode program (§13).
  EXPECT_NE(text->find("Filter((id > 1) | bytecode: "), std::string::npos);
  EXPECT_NE(text->find("cmpgt.f64"), std::string::npos);
  EXPECT_NE(text->find("rows=6->5"), std::string::npos);
  EXPECT_NE(text->find("HashAggregate(v)  rows=5->4"), std::string::npos);
  EXPECT_NE(text->find("Sort(__key0 ASC)  rows=4->4"), std::string::npos);
  EXPECT_NE(text->find("time="), std::string::npos);
  // Expression-tier accounting rides below the tree.
  EXPECT_NE(text->find("expr: engine=bytecode compiled="),
            std::string::npos);
  EXPECT_NE(text->find("4 rows in"), std::string::npos);
}

TEST(ExplainAnalyzeTest, ReportsErrorsInsteadOfATree) {
  Catalog cat = MakeNanCatalog();
  auto text = ExplainAnalyzeQuery(cat, "SELECT v FROM missing_table");
  EXPECT_FALSE(text.ok());
}

// --- Integer edges (differential-harness satellites) --------------------

TEST(IntegerEdgeTest, ArithmeticOverflowErrorsInsteadOfWrapping) {
  Catalog cat = MakeCatalog();
  for (const char* sql : {
           "SELECT 9223372036854775807 + 1 FROM t",
           "SELECT -(9223372036854775807) - 2 FROM t",
           "SELECT 4611686018427387904 * 2 FROM t",
           "SELECT -(-(9223372036854775807) - 1) FROM t",            // -MIN
           "SELECT abs(-(9223372036854775807) - 1) FROM t",          // |MIN|
       }) {
    auto result = ExecuteQuery(cat, sql);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_EQ(result.status().code(), StatusCode::kNumericError) << sql;
  }
  // Non-overflowing neighbors still work, and stay INT64.
  auto ok = ExecuteQuery(
      cat, "SELECT 9223372036854775806 + 1 FROM t LIMIT 1");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->GetValue(0, 0).int64(),
            std::numeric_limits<int64_t>::max());
  // INT64_MIN % -1 is defined as 0 (the mathematical remainder), not a
  // hardware trap.
  auto rem = ExecuteQuery(
      cat, "SELECT (-(9223372036854775807) - 1) % -(1) FROM t LIMIT 1");
  ASSERT_TRUE(rem.ok()) << rem.status().ToString();
  EXPECT_EQ(rem->GetValue(0, 0).int64(), 0);
}

TEST(IntegerEdgeTest, IntDoubleComparisonCoercesThroughDoubleAt2Pow53) {
  Catalog cat = MakeCatalog();
  // 2^53 + 1 is not representable as a double; the coercion rounds it to
  // 2^53, so the comparison sees equal values. Pinned semantics: mixed
  // INT64/DOUBLE comparisons go through double, precision loss included.
  auto result = ExecuteQuery(
      cat,
      "SELECT 9007199254740993 = 9007199254740992.0, "
      "9007199254740993 > 9007199254740992.0 FROM t LIMIT 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->GetValue(0, 0).boolean());
  EXPECT_FALSE(result->GetValue(0, 1).boolean());
  // INT64-INT64 comparisons take the same coercion path, so they share
  // the 2^53 horizon — pinned so the reference oracle can mirror it.
  auto exact = ExecuteQuery(
      cat, "SELECT 9007199254740993 = 9007199254740992 FROM t LIMIT 1");
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->GetValue(0, 0).boolean());
  // Below the horizon, INT64 comparisons are exact.
  auto below = ExecuteQuery(
      cat, "SELECT 9007199254740991 = 9007199254740990 FROM t LIMIT 1");
  ASSERT_TRUE(below.ok());
  EXPECT_FALSE(below->GetValue(0, 0).boolean());
}

// --- NaN through conditional functions ----------------------------------

TEST(NanConditionalTest, CoalesceAndNullifTreatNanAsAValue) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"d", DataType::kDouble, true}}));
  ASSERT_TRUE(t->AppendRow({Value::Double(kNan)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  cat.RegisterOrReplace("c", t);
  // NaN is non-NULL: COALESCE keeps it. NULLIF(NaN, NaN) compares with
  // =, where NaN equals nothing — so the NaN survives.
  auto result = ExecuteQuery(
      cat, "SELECT COALESCE(d, 7.0), NULLIF(d, d), NULLIF(d, 0.0) FROM c");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_TRUE(std::isnan(result->GetValue(0, 0).dbl()));
  EXPECT_TRUE(std::isnan(result->GetValue(0, 1).dbl()));
  EXPECT_TRUE(std::isnan(result->GetValue(0, 2).dbl()));
  EXPECT_DOUBLE_EQ(result->GetValue(1, 0).dbl(), 7.0);
  EXPECT_TRUE(result->GetValue(1, 1).is_null());
  EXPECT_TRUE(result->GetValue(1, 2).is_null());
}

TEST(HavingTest, UnaggregatedColumnInHavingErrorsNotCrashes) {
  Catalog cat = MakeCatalog();
  // `score` is neither a group key nor inside an aggregate; after the
  // aggregate rewrite it names no intermediate column. Must be a clean
  // error, never UB or a crash.
  auto result = ExecuteQuery(
      cat, "SELECT tag, COUNT(*) FROM t GROUP BY tag HAVING score > 10");
  EXPECT_FALSE(result.ok());
}

// --- Regressions found by the differential harness ----------------------

/// Before the canonical binary key encoding, group/distinct/join keys were
/// built by joining cell texts with '|' — so ('x|', 'y') and ('x', '|y')
/// collided into one group, and a string cell "NULL" collided with SQL
/// NULL.
TEST(KeyEncodingRegressionTest, SeparatorInStringsDoesNotMergeGroups) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"a", DataType::kString, false},
              Field{"b", DataType::kString, false}}));
  ASSERT_TRUE(t->AppendRow({Value::String("x|"), Value::String("y")}).ok());
  ASSERT_TRUE(t->AppendRow({Value::String("x"), Value::String("|y")}).ok());
  cat.RegisterOrReplace("s", t);
  auto grouped =
      ExecuteQuery(cat, "SELECT a, b, COUNT(*) FROM s GROUP BY a, b");
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_EQ(grouped->num_rows(), 2u);
  auto distinct = ExecuteQuery(cat, "SELECT DISTINCT a, b FROM s");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->num_rows(), 2u);
}

TEST(KeyEncodingRegressionTest, StringNullLiteralIsNotSqlNull) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"s", DataType::kString, true}}));
  ASSERT_TRUE(t->AppendRow({Value::String("NULL")}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  cat.RegisterOrReplace("q", t);
  auto result = ExecuteQuery(cat, "SELECT s, COUNT(*) FROM q GROUP BY s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 2u);
}

/// Join keys used the same text encoding: two NaN cells rendered as "nan"
/// and (incorrectly) matched, while -0.0 vs +0.0 rendered differently and
/// (incorrectly) failed to match. SQL `=` semantics: NaN matches nothing,
/// signed zeros are equal.
TEST(JoinKeyRegressionTest, NanNeverMatchesAndSignedZerosDo) {
  Catalog cat;
  auto l = std::make_shared<Table>(
      Schema({Field{"k", DataType::kDouble, true}}));
  auto r = std::make_shared<Table>(
      Schema({Field{"j", DataType::kDouble, true}}));
  ASSERT_TRUE(l->AppendRow({Value::Double(kNan)}).ok());
  ASSERT_TRUE(l->AppendRow({Value::Double(0.0)}).ok());
  ASSERT_TRUE(l->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(r->AppendRow({Value::Double(kNan)}).ok());
  ASSERT_TRUE(r->AppendRow({Value::Double(-0.0)}).ok());
  ASSERT_TRUE(r->AppendRow({Value::Null()}).ok());
  cat.RegisterOrReplace("l", l);
  cat.RegisterOrReplace("r", r);
  auto result = ExecuteQuery(cat, "SELECT k, j FROM l JOIN r ON k = j");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only 0.0 = -0.0 joins; NaN and NULL keys never match anything.
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 0).dbl(), 0.0);
}

/// MIN/MAX skip NaN, but a group containing *only* NaN used to leak the
/// +/-infinity accumulator seeds into the result.
TEST(NanAggregateTest, AllNanGroupYieldsNanNotInfinity) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"v", DataType::kDouble, false}}));
  ASSERT_TRUE(t->AppendRow({Value::Double(kNan)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Double(kNan)}).ok());
  cat.RegisterOrReplace("g", t);
  auto result = ExecuteQuery(cat, "SELECT MIN(v), MAX(v) FROM g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(std::isnan(result->GetValue(0, 0).dbl()));
  EXPECT_TRUE(std::isnan(result->GetValue(0, 1).dbl()));
}

/// COALESCE/CASE with a BOOL/INT64 branch mix used to type the output
/// after the first branch while reading another branch's backing vector —
/// an out-of-bounds read under ASan. The family mix now unifies to
/// DOUBLE like every other numeric promotion.
TEST(TypeUnificationRegressionTest, CoalesceAndCaseUnifyBoolIntToDouble) {
  Catalog cat = MakeCatalog();
  auto result = ExecuteQuery(
      cat,
      "SELECT COALESCE(ok, id), CASE WHEN ok THEN id ELSE ok END "
      "FROM t ORDER BY id LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Row 1: ok=true -> 1.0; CASE takes id -> 1.0.
  EXPECT_DOUBLE_EQ(result->GetValue(0, 0).dbl(), 1.0);
  EXPECT_DOUBLE_EQ(result->GetValue(0, 1).dbl(), 1.0);
  // Row 2: ok=false -> 0.0; CASE takes ELSE ok -> 0.0.
  EXPECT_DOUBLE_EQ(result->GetValue(1, 0).dbl(), 0.0);
  EXPECT_DOUBLE_EQ(result->GetValue(1, 1).dbl(), 0.0);
}

/// SUM/AVG/VARIANCE/STDDEV over a string column used to fail only when a
/// non-NULL row was actually swept (data-dependent). The check is now a
/// deterministic planning-time type error, matching the oracle.
TEST(TypeUnificationRegressionTest, NumericAggregateOverStringAlwaysErrors) {
  Catalog cat;
  auto t = std::make_shared<Table>(
      Schema({Field{"s", DataType::kString, true}}));
  // All-NULL column: no string value is ever swept.
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  cat.RegisterOrReplace("e", t);
  for (const char* sql :
       {"SELECT SUM(s) FROM e", "SELECT AVG(s) FROM e",
        "SELECT VARIANCE(s) FROM e", "SELECT STDDEV(s) FROM e"}) {
    auto result = ExecuteQuery(cat, sql);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_EQ(result.status().code(), StatusCode::kTypeMismatch) << sql;
  }
  // MIN/MAX over strings stay legal.
  auto ok = ExecuteQuery(cat, "SELECT MIN(s), MAX(s) FROM e");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace laws

/// Corruption and crash-safety tests: CRC32C vectors, the deterministic
/// fault injector, the v2 checksummed image format, atomic save semantics,
/// quarantine-based graceful degradation, and a seeded corruption-fuzz
/// sweep over every load path. Run under ASan/UBSan by
/// tools/check_robustness.sh.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "aqp/domain.h"
#include "aqp/hybrid.h"
#include "aqp/model_aqp.h"
#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "core/persistence.h"
#include "core/session.h"
#include "storage/catalog.h"
#include "storage/serialize.h"

namespace laws {
namespace {

/// Same shape as the core_test fixture: a linear table and a grouped
/// power-law table, with one captured model over each.
struct Fixture {
  Catalog data;
  ModelCatalog models;
  std::unique_ptr<Session> session;
  uint64_t lin_model_id = 0;
  uint64_t plaw_model_id = 0;

  Fixture() {
    Rng rng(1);
    auto lin = std::make_shared<Table>(
        Schema({Field{"x", DataType::kDouble, false},
                Field{"y", DataType::kDouble, false}}));
    for (int i = 0; i < 100; ++i) {
      const double x = rng.Uniform(0, 10);
      EXPECT_TRUE(lin->AppendRow({Value::Double(x),
                                  Value::Double(3.0 + 2.0 * x +
                                                rng.Normal(0, 0.05))})
                      .ok());
    }
    data.RegisterOrReplace("lin", lin);

    auto plaw = std::make_shared<Table>(
        Schema({Field{"g", DataType::kInt64, false},
                Field{"x", DataType::kDouble, false},
                Field{"y", DataType::kDouble, false}}));
    for (int g = 1; g <= 8; ++g) {
      for (int i = 0; i < 40; ++i) {
        const double x = rng.Uniform(0.1, 0.2);
        const double y = (0.5 + 0.1 * g) * std::pow(x, -0.5 - 0.05 * g) *
                         std::exp(rng.Normal(0, 0.02));
        EXPECT_TRUE(plaw->AppendRow({Value::Int64(g), Value::Double(x),
                                     Value::Double(y)})
                        .ok());
      }
    }
    data.RegisterOrReplace("plaw", plaw);
    session = std::make_unique<Session>(&data, &models);

    FitRequest lin_req;
    lin_req.table = "lin";
    lin_req.model_source = "linear(1)";
    lin_req.input_columns = {"x"};
    lin_req.output_column = "y";
    auto lin_fit = session->Fit(lin_req);
    EXPECT_TRUE(lin_fit.ok());
    lin_model_id = lin_fit->model_id;

    FitRequest plaw_req;
    plaw_req.table = "plaw";
    plaw_req.model_source = "power_law";
    plaw_req.input_columns = {"x"};
    plaw_req.output_column = "y";
    plaw_req.group_column = "g";
    auto plaw_fit = session->Fit(plaw_req);
    EXPECT_TRUE(plaw_fit.ok());
    plaw_model_id = plaw_fit->model_id;
  }
};

std::vector<uint8_t> MustSave(const Fixture& f) {
  auto bytes = SaveDatabaseToBytes(f.data, f.models);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return *bytes;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

/// RAII guard: every test starts and ends with nothing armed (the
/// injector is process-wide).
struct FaultGuard {
  FaultGuard() { FaultInjector::Instance().DisarmAll(); }
  ~FaultGuard() { FaultInjector::Instance().DisarmAll(); }
};

// --- CRC32C ------------------------------------------------------------------

TEST(Crc32cTest, StandardVectors) {
  // RFC 3720 / common Castagnoli check values.
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("a", 1), 0xC1D04330u);
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string s = "The quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(s.data(), s.size());
  for (size_t cut = 0; cut <= s.size(); cut += 7) {
    const uint32_t part = Crc32c(s.data() + cut, s.size() - cut,
                                 Crc32c(s.data(), cut));
    EXPECT_EQ(part, whole) << "cut at " << cut;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> buf(257);
  Rng rng(7);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
  const uint32_t clean = Crc32c(buf.data(), buf.size());
  for (int i = 0; i < 100; ++i) {
    const size_t bit = rng.NextU64() % (buf.size() * 8);
    buf[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
    EXPECT_NE(Crc32c(buf.data(), buf.size()), clean);
    buf[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
  }
}

// --- Fault injector ----------------------------------------------------------

TEST(FaultInjectorTest, ParseClause) {
  std::string site;
  FaultSpec spec;
  ASSERT_TRUE(FaultInjector::ParseClause("persist/rename=error", &site, &spec));
  EXPECT_EQ(site, "persist/rename");
  EXPECT_EQ(spec.kind, FaultSpec::Kind::kError);

  ASSERT_TRUE(FaultInjector::ParseClause("a/b=truncate:512", &site, &spec));
  EXPECT_EQ(spec.kind, FaultSpec::Kind::kTruncate);
  EXPECT_EQ(spec.arg, 512u);

  ASSERT_TRUE(FaultInjector::ParseClause("a/b=bitflip:3@42", &site, &spec));
  EXPECT_EQ(spec.kind, FaultSpec::Kind::kBitFlip);
  EXPECT_EQ(spec.arg, 3u);
  EXPECT_EQ(spec.seed, 42u);

  EXPECT_FALSE(FaultInjector::ParseClause("", &site, &spec));
  EXPECT_FALSE(FaultInjector::ParseClause("noequals", &site, &spec));
  EXPECT_FALSE(FaultInjector::ParseClause("=error", &site, &spec));
  EXPECT_FALSE(FaultInjector::ParseClause("a/b=explode", &site, &spec));
  EXPECT_FALSE(FaultInjector::ParseClause("a/b=truncate:", &site, &spec));
  EXPECT_FALSE(FaultInjector::ParseClause("a/b=error@", &site, &spec));
  EXPECT_FALSE(FaultInjector::ParseClause("a/b=truncate:12x", &site, &spec));
}

TEST(FaultInjectorTest, ArmFireDisarm) {
  FaultGuard guard;
  auto& fi = FaultInjector::Instance();
  EXPECT_FALSE(fi.active());
  EXPECT_TRUE(fi.Check("t/site").ok());

  fi.Arm("t/site", FaultSpec{});
  EXPECT_TRUE(fi.active());
  const Status st = fi.Check("t/site");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("t/site"), std::string::npos);
  EXPECT_TRUE(fi.Check("t/other").ok());

  fi.Disarm("t/site");
  EXPECT_FALSE(fi.active());
  EXPECT_TRUE(fi.Check("t/site").ok());
}

TEST(FaultInjectorTest, SkipHitsAndMaxTriggers) {
  FaultGuard guard;
  auto& fi = FaultInjector::Instance();
  FaultSpec spec;
  spec.skip_hits = 2;
  spec.max_triggers = 1;
  fi.Arm("t/skip", spec);
  EXPECT_TRUE(fi.Check("t/skip").ok());   // skipped
  EXPECT_TRUE(fi.Check("t/skip").ok());   // skipped
  EXPECT_FALSE(fi.Check("t/skip").ok());  // fires
  EXPECT_TRUE(fi.Check("t/skip").ok());   // max_triggers exhausted
  EXPECT_GE(fi.HitCount("t/skip"), 4u);
}

TEST(FaultInjectorTest, KindsDoNotCrossConsume) {
  FaultGuard guard;
  auto& fi = FaultInjector::Instance();
  FaultSpec flip;
  flip.kind = FaultSpec::Kind::kBitFlip;
  flip.max_triggers = 1;
  fi.Arm("t/kind", flip);
  // Error and truncate probes on the same site must not consume the
  // single bitflip trigger.
  EXPECT_TRUE(fi.Check("t/kind").ok());
  bool fail_after = true;
  EXPECT_EQ(fi.AllowedWriteBytes("t/kind", 100, &fail_after), 100u);
  EXPECT_FALSE(fail_after);
  std::vector<uint8_t> buf(16, 0);
  EXPECT_TRUE(fi.CorruptBuffer("t/kind", buf.data(), buf.size()));
}

TEST(FaultInjectorTest, BitFlipsAreSeededAndReplayable) {
  FaultGuard guard;
  auto& fi = FaultInjector::Instance();
  FaultSpec flip;
  flip.kind = FaultSpec::Kind::kBitFlip;
  flip.arg = 5;
  flip.seed = 99;
  fi.Arm("t/flip", flip);

  std::vector<uint8_t> buf(64, 0);
  ASSERT_TRUE(fi.CorruptBuffer("t/flip", buf.data(), buf.size()));
  EXPECT_NE(buf, std::vector<uint8_t>(64, 0));
  // Same seed, same size: the second pass flips the same bits, restoring
  // the buffer — the flips are fully deterministic.
  ASSERT_TRUE(fi.CorruptBuffer("t/flip", buf.data(), buf.size()));
  EXPECT_EQ(buf, std::vector<uint8_t>(64, 0));
}

TEST(FaultInjectorTest, TruncateLimitsWrites) {
  FaultGuard guard;
  auto& fi = FaultInjector::Instance();
  FaultSpec trunc;
  trunc.kind = FaultSpec::Kind::kTruncate;
  trunc.arg = 10;
  fi.Arm("t/trunc", trunc);
  bool fail_after = false;
  EXPECT_EQ(fi.AllowedWriteBytes("t/trunc", 100, &fail_after), 10u);
  EXPECT_TRUE(fail_after);
}

// --- Image format ------------------------------------------------------------

TEST(ImageFormatTest, InspectReportsSections) {
  Fixture f;
  const std::vector<uint8_t> bytes = MustSave(f);
  auto info = InspectImage(bytes);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, 2);
  EXPECT_TRUE(info->image_checksum_ok);
  EXPECT_EQ(info->file_bytes, bytes.size());
  // 2 tables + manifest + 2 models.
  ASSERT_EQ(info->sections.size(), 5u);
  size_t tables = 0, manifests = 0, model_sections = 0;
  for (const ImageSection& s : info->sections) {
    EXPECT_TRUE(s.crc_ok) << s.name;
    EXPECT_GT(s.length, 0u);
    switch (s.kind) {
      case ImageSectionKind::kTable:
        ++tables;
        break;
      case ImageSectionKind::kModelCatalog:
        ++manifests;
        break;
      case ImageSectionKind::kModel:
        ++model_sections;
        EXPECT_EQ(s.name.rfind("model/", 0), 0u) << s.name;
        break;
    }
  }
  EXPECT_EQ(tables, 2u);
  EXPECT_EQ(manifests, 1u);
  EXPECT_EQ(model_sections, 2u);
}

TEST(ImageFormatTest, RejectsForeignMagic) {
  std::vector<uint8_t> junk = {'L', 'W', 'S', '1', 2, 0, 0, 0, 0};
  Catalog d;
  ModelCatalog m;
  const Status st = LoadDatabaseFromBytes(junk, &d, &m);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not a LawsDB"), std::string::npos);
  EXPECT_FALSE(InspectImage(junk).ok());
}

TEST(ImageFormatTest, RejectsOldVersionWithClearMessage) {
  Fixture f;
  std::vector<uint8_t> bytes = MustSave(f);
  bytes[4] = 1;  // the version byte follows the 4-byte magic
  Catalog d;
  ModelCatalog m;
  const Status st = LoadDatabaseFromBytes(bytes, &d, &m);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("version 1"), std::string::npos);
  // tolerate_corruption cannot rescue a header-level failure.
  LoadOptions tolerant;
  tolerant.tolerate_corruption = true;
  EXPECT_FALSE(LoadDatabaseFromBytes(bytes, &d, &m, tolerant).ok());
}

TEST(ImageFormatTest, TrailerFlipFailsStrictLoadOnly) {
  Fixture f;
  std::vector<uint8_t> bytes = MustSave(f);
  bytes.back() ^= 0x01;  // inside the whole-image checksum itself
  Catalog d;
  ModelCatalog m;
  const Status strict = LoadDatabaseFromBytes(bytes, &d, &m);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.code(), StatusCode::kIOError);

  LoadOptions tolerant;
  tolerant.tolerate_corruption = true;
  Catalog d2;
  ModelCatalog m2;
  LoadReport report;
  ASSERT_TRUE(LoadDatabaseFromBytes(bytes, &d2, &m2, tolerant, &report).ok());
  EXPECT_FALSE(report.image_checksum_ok);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.tables_loaded, 2u);
  EXPECT_EQ(report.models_loaded, 2u);
  EXPECT_NE(report.Summary().find("FAILED"), std::string::npos);
}

TEST(ImageFormatTest, StrictLoadNamesCorruptSectionAndOffset) {
  Fixture f;
  std::vector<uint8_t> bytes = MustSave(f);
  auto info = InspectImage(bytes);
  ASSERT_TRUE(info.ok());
  const ImageSection* target = nullptr;
  for (const ImageSection& s : info->sections) {
    if (s.name == "model/" + std::to_string(f.lin_model_id)) target = &s;
  }
  ASSERT_NE(target, nullptr);
  bytes[target->offset + target->length / 2] ^= 0x10;

  Catalog d;
  ModelCatalog m;
  const Status st = LoadDatabaseFromBytes(bytes, &d, &m);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find(target->name), std::string::npos);
  EXPECT_NE(st.message().find(std::to_string(target->offset)),
            std::string::npos);
}

// --- Graceful degradation ----------------------------------------------------

TEST(QuarantineTest, CorruptModelFallsBackToExactAnswers) {
  Fixture f;
  std::vector<uint8_t> bytes = MustSave(f);
  auto info = InspectImage(bytes);
  ASSERT_TRUE(info.ok());
  const std::string victim = "model/" + std::to_string(f.lin_model_id);
  for (const ImageSection& s : info->sections) {
    if (s.name == victim) bytes[s.offset + s.length / 2] ^= 0x40;
  }

  LoadOptions tolerant;
  tolerant.tolerate_corruption = true;
  Catalog d;
  ModelCatalog m;
  LoadReport report;
  ASSERT_TRUE(LoadDatabaseFromBytes(bytes, &d, &m, tolerant, &report).ok());
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].name, victim);
  EXPECT_EQ(report.tables_loaded, 2u);
  EXPECT_EQ(report.models_loaded, 1u);  // the plaw model survives
  EXPECT_FALSE(m.Get(f.lin_model_id).ok());
  EXPECT_TRUE(m.Get(f.plaw_model_id).ok());

  // The quarantined model is a cache miss: the hybrid engine answers the
  // query exactly, and the answer matches a pristine exact engine.
  DomainRegistry domains;
  ModelQueryEngine engine(&d, &m, &domains);
  HybridQueryEngine hybrid(&d, &engine);
  auto degraded = hybrid.Execute("SELECT AVG(y) FROM lin");
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->method, "exact");
  EXPECT_FALSE(degraded->approximate);

  ModelCatalog no_models;
  ModelQueryEngine baseline_engine(&f.data, &no_models, &domains);
  HybridQueryEngine baseline(&f.data, &baseline_engine);
  auto expected = baseline.Execute("SELECT AVG(y) FROM lin");
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(degraded->table.num_rows(), expected->table.num_rows());
  EXPECT_EQ(degraded->table.GetValue(0, 0), expected->table.GetValue(0, 0));
}

TEST(QuarantineTest, CorruptTableIsDroppedOthersSurvive) {
  Fixture f;
  std::vector<uint8_t> bytes = MustSave(f);
  auto info = InspectImage(bytes);
  ASSERT_TRUE(info.ok());
  for (const ImageSection& s : info->sections) {
    if (s.kind == ImageSectionKind::kTable && s.name == "lin") {
      bytes[s.offset + 3] ^= 0x02;
    }
  }
  LoadOptions tolerant;
  tolerant.tolerate_corruption = true;
  Catalog d;
  ModelCatalog m;
  LoadReport report;
  ASSERT_TRUE(LoadDatabaseFromBytes(bytes, &d, &m, tolerant, &report).ok());
  EXPECT_EQ(report.tables_loaded, 1u);
  EXPECT_FALSE(d.Contains("lin"));
  EXPECT_TRUE(d.Contains("plaw"));
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].name, "lin");
}

TEST(QuarantineTest, CorruptManifestStillLoadsModels) {
  Fixture f;
  std::vector<uint8_t> bytes = MustSave(f);
  auto info = InspectImage(bytes);
  ASSERT_TRUE(info.ok());
  for (const ImageSection& s : info->sections) {
    if (s.kind == ImageSectionKind::kModelCatalog) {
      bytes[s.offset] ^= 0x80;
    }
  }
  LoadOptions tolerant;
  tolerant.tolerate_corruption = true;
  Catalog d;
  ModelCatalog m;
  LoadReport report;
  ASSERT_TRUE(LoadDatabaseFromBytes(bytes, &d, &m, tolerant, &report).ok());
  EXPECT_EQ(report.models_loaded, 2u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].name, "model_catalog");
}

// --- Atomic save / fault matrix ----------------------------------------------

TEST(AtomicSaveTest, EverySavePathFaultLeavesPreviousImageIntact) {
  FaultGuard guard;
  Fixture f;
  const std::string path = "/tmp/lawsdb_robustness_atomic.bin";
  std::remove(path.c_str());
  ASSERT_TRUE(SaveDatabase(f.data, f.models, path).ok());
  const std::vector<uint8_t> original = ReadFileBytes(path);

  // Grow the database so a successful re-save would change the file.
  auto table = *f.data.Get("lin");
  ASSERT_TRUE(table->AppendRow({Value::Double(5.0), Value::Double(13.0)}).ok());

  const char* kSites[] = {
      "persist/serialize_image", "persist/serialize_table",
      "persist/write_models",    "persist/open_tmp",
      "persist/write_image",     "persist/fsync_tmp",
      "persist/rename",
  };
  auto& fi = FaultInjector::Instance();
  for (const char* site : kSites) {
    fi.DisarmAll();
    fi.Arm(site, FaultSpec{});
    const Status st = SaveDatabase(f.data, f.models, path);
    ASSERT_FALSE(st.ok()) << site;
    // The old image is untouched: byte-identical and loadable.
    EXPECT_EQ(ReadFileBytes(path), original) << site;
    // No tmp litter.
    EXPECT_FALSE(FileExists(path + ".tmp." + std::to_string(::getpid())))
        << site;
    Catalog d;
    ModelCatalog m;
    ASSERT_TRUE(LoadDatabase(path, &d, &m).ok()) << site;
    EXPECT_EQ(m.size(), 2u) << site;
  }

  // Disarmed, the save goes through and the new image differs.
  fi.DisarmAll();
  ASSERT_TRUE(SaveDatabase(f.data, f.models, path).ok());
  EXPECT_NE(ReadFileBytes(path), original);
  std::remove(path.c_str());
}

TEST(AtomicSaveTest, TornWriteLeavesPreviousImageIntact) {
  FaultGuard guard;
  Fixture f;
  const std::string path = "/tmp/lawsdb_robustness_torn.bin";
  std::remove(path.c_str());
  ASSERT_TRUE(SaveDatabase(f.data, f.models, path).ok());
  const std::vector<uint8_t> original = ReadFileBytes(path);

  FaultSpec trunc;
  trunc.kind = FaultSpec::Kind::kTruncate;
  trunc.arg = 100;  // the write is cut off after 100 bytes
  FaultInjector::Instance().Arm("persist/write_image", trunc);
  ASSERT_FALSE(SaveDatabase(f.data, f.models, path).ok());
  EXPECT_EQ(ReadFileBytes(path), original);
  std::remove(path.c_str());
}

TEST(AtomicSaveTest, BitRotDuringWriteIsCaughtAtLoad) {
  FaultGuard guard;
  Fixture f;
  const std::string path = "/tmp/lawsdb_robustness_bitrot.bin";
  std::remove(path.c_str());

  FaultSpec flip;
  flip.kind = FaultSpec::Kind::kBitFlip;
  flip.arg = 3;
  flip.seed = 7;
  FaultInjector::Instance().Arm("persist/write_image", flip);
  // The save itself "succeeds" — the corruption happened between memory
  // and disk, which is exactly what the checksums exist to catch.
  ASSERT_TRUE(SaveDatabase(f.data, f.models, path).ok());
  FaultInjector::Instance().DisarmAll();

  Catalog d;
  ModelCatalog m;
  EXPECT_FALSE(LoadDatabase(path, &d, &m).ok());
  std::remove(path.c_str());
}

TEST(AtomicSaveTest, ReadFaultSurfacesAsIOError) {
  FaultGuard guard;
  Fixture f;
  const std::string path = "/tmp/lawsdb_robustness_readfault.bin";
  ASSERT_TRUE(SaveDatabase(f.data, f.models, path).ok());
  FaultInjector::Instance().Arm("persist/read_image", FaultSpec{});
  Catalog d;
  ModelCatalog m;
  const Status st = LoadDatabase(path, &d, &m);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

// --- Corruption-fuzz sweep ---------------------------------------------------

/// Applies one seeded mutation (bit flips, truncation, or a random splice)
/// to a copy of `bytes`.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& bytes, uint64_t seed) {
  Rng rng(seed * 2654435761u + 1);
  std::vector<uint8_t> out = bytes;
  switch (seed % 3) {
    case 0: {  // 1..8 bit flips anywhere
      const uint64_t flips = 1 + rng.NextU64() % 8;
      for (uint64_t i = 0; i < flips; ++i) {
        const uint64_t bit = rng.NextU64() % (out.size() * 8);
        out[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
      }
      break;
    }
    case 1: {  // truncate to a random prefix
      out.resize(rng.NextU64() % out.size());
      break;
    }
    case 2: {  // splice a run of random bytes
      const size_t pos = rng.NextU64() % out.size();
      const size_t len =
          std::min<size_t>(1 + rng.NextU64() % 64, out.size() - pos);
      for (size_t i = 0; i < len; ++i) {
        out[pos + i] = static_cast<uint8_t>(rng.NextU64());
      }
      break;
    }
  }
  return out;
}

TEST(CorruptionSweepTest, MutatedImagesNeverCrashAndNeverLie) {
  Fixture f;
  const std::vector<uint8_t> bytes = MustSave(f);

  // The equality oracle: a clean load re-serializes to these bytes.
  Catalog base_data;
  ModelCatalog base_models;
  ASSERT_TRUE(LoadDatabaseFromBytes(bytes, &base_data, &base_models).ok());
  auto base_roundtrip = SaveDatabaseToBytes(base_data, base_models);
  ASSERT_TRUE(base_roundtrip.ok());

  LoadOptions tolerant;
  tolerant.tolerate_corruption = true;
  int strict_ok = 0;
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    const std::vector<uint8_t> mutated = Mutate(bytes, seed);

    Catalog d;
    ModelCatalog m;
    const Status strict = LoadDatabaseFromBytes(mutated, &d, &m);
    if (strict.ok()) {
      // Accepting a mutation is only legal when the result is
      // bit-identical to the pristine database.
      ++strict_ok;
      auto roundtrip = SaveDatabaseToBytes(d, m);
      ASSERT_TRUE(roundtrip.ok()) << "seed " << seed;
      ASSERT_EQ(*roundtrip, *base_roundtrip) << "seed " << seed;
    }

    // Tolerant mode must also never crash; its Status is allowed to be
    // either (header damage fails, section damage degrades).
    Catalog d2;
    ModelCatalog m2;
    LoadReport report;
    (void)LoadDatabaseFromBytes(mutated, &d2, &m2, tolerant, &report);
  }
  // The checksums should reject essentially every real mutation; allow a
  // tiny number of identity mutations (e.g. a byte spliced to its own
  // value).
  EXPECT_LE(strict_ok, 20);
}

TEST(CorruptionSweepTest, MutatedRawTablesNeverCrash) {
  Fixture f;
  auto table = *f.data.Get("plaw");
  const std::vector<uint8_t> bytes = SerializeTableToBytes(*table);
  // The raw LWS1 stream has no checksums, so this leans entirely on the
  // parser hardening: any outcome is fine except a crash or OOM.
  for (uint64_t seed = 0; seed < 600; ++seed) {
    const std::vector<uint8_t> mutated = Mutate(bytes, seed);
    (void)DeserializeTableFromBytes(mutated);
  }
}

TEST(CorruptionSweepTest, MutatedRawModelsNeverCrash) {
  Fixture f;
  const CapturedModel* model = *f.models.Get(f.plaw_model_id);
  ByteWriter w;
  SerializeCapturedModel(*model, &w);
  const std::vector<uint8_t> bytes = w.data();
  for (uint64_t seed = 0; seed < 600; ++seed) {
    const std::vector<uint8_t> mutated = Mutate(bytes, seed);
    ByteReader r(mutated);
    (void)DeserializeCapturedModel(&r);
  }
}

}  // namespace
}  // namespace laws

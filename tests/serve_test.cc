#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "common/metrics.h"
#include "compress/block_store.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace laws {
namespace {

// --- helpers ------------------------------------------------------------

/// A two-column table (g INT64, x DOUBLE) with `rows` deterministic rows.
Table MakeNumericTable(size_t rows, int64_t group_mod = 8) {
  Table t(Schema({Field{"g", DataType::kInt64, false},
                  Field{"x", DataType::kDouble, false}}));
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(t.AppendRow({Value::Int64(static_cast<int64_t>(i) % group_mod),
                             Value::Double(static_cast<double>(i) * 0.5)})
                    .ok());
  }
  return t;
}

/// Cell-for-cell equality (schema + every value) — the bit-identical
/// check the serving smoke test uses against a serial replay.
bool TablesEqual(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!(a.GetValue(r, c) == b.GetValue(r, c))) return false;
    }
  }
  return true;
}

/// Pins the scan block size for a test and restores it afterwards.
class BlockRowsGuard {
 public:
  explicit BlockRowsGuard(size_t rows) : prev_(ScanBlockRows()) {
    SetScanBlockRows(rows);
  }
  ~BlockRowsGuard() { SetScanBlockRows(prev_); }

 private:
  size_t prev_;
};

ServerOptions QuietOptions() {
  ServerOptions options;
  options.max_inflight_queries = 64;
  options.queue_timeout_micros = 10'000'000;
  return options;
}

// --- SnapshotCatalog ----------------------------------------------------

TEST(SnapshotCatalogTest, CommitPublishesMonotoneEpochs) {
  SnapshotCatalog sc;
  EXPECT_EQ(sc.epoch(), 0u);
  EXPECT_TRUE(sc.Commit([](DatabaseSnapshot* db) {
                  db->tables.RegisterOrReplace(
                      "t", std::make_shared<Table>(MakeNumericTable(16)));
                  return Status::OK();
                })
                  .ok());
  EXPECT_EQ(sc.epoch(), 1u);
  SnapshotPtr snap = sc.Pin();
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_EQ((*snap->tables.Get("t"))->num_rows(), 16u);
}

TEST(SnapshotCatalogTest, FailedCommitIsInvisible) {
  SnapshotCatalog sc;
  ASSERT_TRUE(sc.Commit([](DatabaseSnapshot* db) {
                  db->tables.RegisterOrReplace(
                      "t", std::make_shared<Table>(MakeNumericTable(4)));
                  return Status::OK();
                })
                  .ok());
  const uint64_t epoch_before = sc.epoch();
  Status failed = sc.Commit([](DatabaseSnapshot* db) {
    db->tables.RegisterOrReplace(
        "junk", std::make_shared<Table>(MakeNumericTable(1)));
    return Status::Internal("injected commit failure");
  });
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_EQ(sc.epoch(), epoch_before);
  EXPECT_FALSE(sc.Pin()->tables.Contains("junk"));
}

TEST(SnapshotCatalogTest, PinnedSnapshotIsFrozenWhileCommitsAdvance) {
  SnapshotCatalog sc;
  ASSERT_TRUE(sc.Commit([](DatabaseSnapshot* db) {
                  db->tables.RegisterOrReplace(
                      "t", std::make_shared<Table>(MakeNumericTable(8)));
                  return Status::OK();
                })
                  .ok());
  SnapshotPtr pinned = sc.Pin();
  const TablePtr pinned_table = *pinned->tables.Get("t");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sc.Commit([&](DatabaseSnapshot* db) {
                    LAWS_ASSIGN_OR_RETURN(
                        TablePtr t,
                        SnapshotCatalog::MutableTableForWrite(db, "t"));
                    return t->AppendRow(
                        {Value::Int64(0), Value::Double(1.0)});
                  })
                    .ok());
  }
  // The pinned epoch still sees exactly the original payload; the
  // copy-on-write commits never touched it.
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned_table->num_rows(), 8u);
  EXPECT_EQ((*pinned->tables.Get("t"))->num_rows(), 8u);
  EXPECT_EQ((*sc.Pin()->tables.Get("t"))->num_rows(), 18u);
}

/// The snapshot-isolation invariant under concurrency: every pinned
/// snapshot is internally consistent — here, two tables committed in
/// lockstep never diverge, and epochs only move forward — while a writer
/// commits continuously beside the readers.
TEST(SnapshotCatalogTest, ReadersSeeConsistentViewDuringConcurrentCommits) {
  SnapshotCatalog sc;
  ASSERT_TRUE(sc.Commit([](DatabaseSnapshot* db) {
                  db->tables.RegisterOrReplace(
                      "a", std::make_shared<Table>(MakeNumericTable(0)));
                  db->tables.RegisterOrReplace(
                      "b", std::make_shared<Table>(MakeNumericTable(0)));
                  return Status::OK();
                })
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      const Status committed = sc.Commit([&](DatabaseSnapshot* db) {
        for (const char* name : {"a", "b"}) {
          LAWS_ASSIGN_OR_RETURN(
              TablePtr t, SnapshotCatalog::MutableTableForWrite(db, name));
          LAWS_RETURN_IF_ERROR(
              t->AppendRow({Value::Int64(i), Value::Double(0.0)}));
        }
        return Status::OK();
      });
      if (!committed.ok()) violation.store(true);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load()) {
        SnapshotPtr snap = sc.Pin();
        if (snap->epoch < last_epoch) violation.store(true);
        last_epoch = snap->epoch;
        const size_t a = (*snap->tables.Get("a"))->num_rows();
        const size_t b = (*snap->tables.Get("b"))->num_rows();
        if (a != b) violation.store(true);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(violation.load())
      << "a reader observed a torn snapshot (tables out of lockstep or a "
         "non-monotone epoch)";
}

// --- Server / ClientSession ---------------------------------------------

TEST(ServerTest, SessionLifecycleAndPerSessionMetrics) {
  Server server(QuietOptions());
  auto session = *server.Connect("alpha");
  EXPECT_EQ(server.open_sessions(), 1u);
  ASSERT_TRUE(session->CreateTable("t", MakeNumericTable(32)).ok());

  Counter* queries =
      MetricsRegistry::Global().GetCounter("session.alpha.queries");
  const uint64_t before = queries->value();
  auto result = session->ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->GetValue(0, 0), Value::Int64(32));
  EXPECT_GT(queries->value(), before);

  session->Close();
  EXPECT_EQ(server.open_sessions(), 0u);
  auto closed = session->ExecuteSql("SELECT COUNT(*) FROM t");
  EXPECT_EQ(closed.status().code(), StatusCode::kAborted);
}

TEST(ServerTest, SessionCapIsExact) {
  ServerOptions options = QuietOptions();
  options.max_sessions = 2;
  Server server(options);
  auto s1 = server.Connect();
  auto s2 = server.Connect();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  auto s3 = server.Connect();
  EXPECT_EQ(s3.status().code(), StatusCode::kResourceExhausted);
  (*s1)->Close();
  EXPECT_TRUE(server.Connect().ok());
}

TEST(ServerTest, AdmissionControlRejectsSaturatedQueue) {
  ServerOptions options;
  options.max_inflight_queries = 1;
  options.queue_timeout_micros = 50'000;  // 50 ms: the test's wait bound
  Server server(options);
  auto holder = *server.Connect("holder");
  auto waiter = *server.Connect("waiter");
  ASSERT_TRUE(holder->CreateTable("t", MakeNumericTable(4)).ok());

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::thread blocker([&] {
    auto r = holder->ExecuteRead(
        [&](const DatabaseSnapshot&) -> Result<Table> {
          entered.set_value();
          release_future.wait();
          return MakeNumericTable(0);
        });
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  entered.get_future().wait();  // the only slot is now held

  auto rejected = waiter->ExecuteSql("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  EXPECT_GT(MetricsRegistry::Global()
                .GetCounter("serve.rejected_queue_timeout")
                ->value(),
            0u);

  release.set_value();
  blocker.join();
  // With the slot free again the same query is admitted.
  auto ok = waiter->ExecuteSql("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(ServerTest, QueuedQueryIsAdmittedWhenSlotFrees) {
  ServerOptions options;
  options.max_inflight_queries = 1;
  options.queue_timeout_micros = 10'000'000;
  Server server(options);
  auto holder = *server.Connect();
  auto waiter = *server.Connect();
  ASSERT_TRUE(holder->CreateTable("t", MakeNumericTable(4)).ok());

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::thread blocker([&] {
    auto r = holder->ExecuteRead(
        [&](const DatabaseSnapshot&) -> Result<Table> {
          entered.set_value();
          release_future.wait();
          return MakeNumericTable(0);
        });
    EXPECT_TRUE(r.ok());
  });
  entered.get_future().wait();

  std::thread queued([&] {
    auto r = waiter->ExecuteSql("SELECT COUNT(*) FROM t");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  // Give the queued query time to reach the condvar, then free the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();
  blocker.join();
  queued.join();
}

TEST(ServerTest, CancelTargetsOnlyItsOwnSession) {
  Server server(QuietOptions());
  auto victim = *server.Connect("victim");
  auto bystander = *server.Connect("bystander");
  ASSERT_TRUE(victim->CreateTable("t", MakeNumericTable(64)).ok());

  std::promise<void> started;
  std::thread running([&] {
    auto r = victim->ExecuteRead(
        [&](const DatabaseSnapshot&) -> Result<Table> {
          started.set_value();
          // Spin at the governor's cancellation point until the
          // session interrupt lands (bounded by the test timeout).
          while (true) {
            if (QueryGovernor* gov = QueryGovernor::Current()) {
              LAWS_RETURN_IF_ERROR(gov->Poll());
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        });
    EXPECT_EQ(r.status().code(), StatusCode::kCanceled)
        << r.status().ToString();
  });
  started.get_future().wait();
  victim->CancelCurrent();
  // The bystander's queries are untouched by the victim's interrupt.
  auto ok = bystander->ExecuteSql("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  running.join();

  // An unconsumed interrupt stays armed for the session's next query
  // (the shell's scripted `cancel` contract)...
  victim->CancelCurrent();
  auto armed = victim->ExecuteSql("SELECT COUNT(*) FROM t");
  EXPECT_EQ(armed.status().code(), StatusCode::kCanceled);
  // ...and is consumed by it: the query after runs normally.
  auto after = victim->ExecuteSql("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(ServerTest, IngestIsTypeCheckedAndAtomic) {
  Server server(QuietOptions());
  auto session = *server.Connect();
  ASSERT_TRUE(session->CreateTable("t", MakeNumericTable(8)).ok());
  const uint64_t epoch_before = server.snapshots().epoch();

  // Wrong arity.
  Table narrow(Schema({Field{"g", DataType::kInt64, false}}));
  ASSERT_TRUE(narrow.AppendRow({Value::Int64(1)}).ok());
  EXPECT_EQ(session->Ingest("t", narrow).code(),
            StatusCode::kInvalidArgument);

  // Wrong column type.
  Table wrong(Schema({Field{"g", DataType::kDouble, false},
                      Field{"x", DataType::kDouble, false}}));
  ASSERT_TRUE(wrong.AppendRow({Value::Double(1.0), Value::Double(2.0)}).ok());
  EXPECT_EQ(session->Ingest("t", wrong).code(), StatusCode::kTypeMismatch);

  // Missing table.
  EXPECT_EQ(session->Ingest("absent", MakeNumericTable(1)).code(),
            StatusCode::kNotFound);

  // None of the failures published an epoch or touched the table.
  EXPECT_EQ(server.snapshots().epoch(), epoch_before);
  EXPECT_EQ((*session->PinSnapshot()->tables.Get("t"))->num_rows(), 8u);

  // A valid batch lands whole.
  ASSERT_TRUE(session->Ingest("t", MakeNumericTable(5)).ok());
  EXPECT_EQ((*session->PinSnapshot()->tables.Get("t"))->num_rows(), 13u);
}

TEST(ServerTest, CowIngestLeavesPinnedReadersOnTheirEpoch) {
  Server server(QuietOptions());
  auto writer = *server.Connect();
  auto reader = *server.Connect();
  ASSERT_TRUE(writer->CreateTable("t", MakeNumericTable(10)).ok());

  SnapshotPtr pinned = reader->PinSnapshot();
  ASSERT_TRUE(writer->Ingest("t", MakeNumericTable(6)).ok());

  EXPECT_EQ((*pinned->tables.Get("t"))->num_rows(), 10u);
  EXPECT_EQ((*reader->PinSnapshot()->tables.Get("t"))->num_rows(), 16u);
}

TEST(ServerTest, DropTableRemovesItsModels) {
  Server server(QuietOptions());
  auto session = *server.Connect();
  ASSERT_TRUE(session->CreateTable("t", MakeNumericTable(256)).ok());

  FitRequest request;
  request.table = "t";
  request.model_source = "poly(1)";
  request.input_columns = {"g"};
  request.output_column = "x";
  auto fit = session->Fit(request);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(session->PinSnapshot()->models.size(), 1u);

  ASSERT_TRUE(session->DropTable("t").ok());
  SnapshotPtr snap = session->PinSnapshot();
  EXPECT_FALSE(snap->tables.Contains("t"));
  EXPECT_EQ(snap->models.size(), 0u)
      << "dropping a table must drop the models fitted over it";
}

TEST(ServerTest, SubmitSqlRunsOnThePool) {
  Server server(QuietOptions());
  auto session = *server.Connect();
  ASSERT_TRUE(session->CreateTable("t", MakeNumericTable(128)).ok());
  std::vector<std::future<Result<Table>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(session->SubmitSql("SELECT COUNT(*) FROM t"));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->GetValue(0, 0), Value::Int64(128));
  }
}

/// The serving smoke test from the issue: N concurrent sessions running
/// mixed exact queries, ingest, fits and drops. Queries against the
/// immutable table must be bit-identical to a serial replay; queries
/// against the hot (concurrently ingested) table must always see a
/// committed batch boundary, never a torn append.
TEST(ServerTest, ConcurrentSessionsMatchSerialReplay) {
  Server server(QuietOptions());
  auto admin = *server.Connect("admin");
  ASSERT_TRUE(admin->CreateTable("fixed", MakeNumericTable(512)).ok());
  constexpr size_t kHotBase = 64;
  constexpr size_t kBatch = 16;
  constexpr int kBatches = 12;
  ASSERT_TRUE(admin->CreateTable("hot", MakeNumericTable(kHotBase)).ok());

  const std::vector<std::string> queries = {
      "SELECT COUNT(*) FROM fixed",
      "SELECT g, AVG(x) FROM fixed GROUP BY g ORDER BY g",
      "SELECT SUM(x) FROM fixed WHERE g < 4",
  };
  std::vector<Table> serial;
  for (const auto& q : queries) {
    auto r = admin->ExecuteSql(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serial.push_back(std::move(*r));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> mismatch{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      auto session = *server.Connect("smoke" + std::to_string(s));
      size_t i = 0;
      while (!stop.load()) {
        const auto& q = queries[i % queries.size()];
        auto r = session->ExecuteSql(q);
        if (!r.ok() || !TablesEqual(*r, serial[i % queries.size()])) {
          mismatch.store(true);
        }
        auto hot = session->ExecuteSql("SELECT COUNT(*) FROM hot");
        if (!hot.ok()) {
          torn.store(true);
        } else {
          const int64_t n = hot->GetValue(0, 0).int64();
          // Every committed size is base + k*batch for some whole k.
          if (n < static_cast<int64_t>(kHotBase) ||
              (n - static_cast<int64_t>(kHotBase)) %
                      static_cast<int64_t>(kBatch) !=
                  0) {
            torn.store(true);
          }
        }
        ++i;
      }
    });
  }
  // The writer interleaves ingest with fit/drop churn on a scratch table.
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(admin->Ingest("hot", MakeNumericTable(kBatch)).ok());
    ASSERT_TRUE(admin->CreateTable("scratch", MakeNumericTable(32)).ok());
    FitRequest request;
    request.table = "scratch";
    request.model_source = "poly(1)";
    request.input_columns = {"g"};
    request.output_column = "x";
    ASSERT_TRUE(admin->Fit(request).ok());
    ASSERT_TRUE(admin->DropTable("scratch").ok());
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mismatch.load())
      << "a fixed-table query diverged from its serial replay";
  EXPECT_FALSE(torn.load())
      << "a hot-table read saw a row count off a commit boundary";
  EXPECT_EQ((*admin->PinSnapshot()->tables.Get("hot"))->num_rows(),
            kHotBase + kBatches * kBatch);
}

// --- block-index cache: eviction + races (run under TSan by
// tools/check_serving.sh and tools/check_tsan.sh) ------------------------

TEST(BlockIndexCacheTest, DroppedTablesAreEvictedAndCounted) {
  BlockRowsGuard guard(32);
  Counter* evictions =
      MetricsRegistry::Global().GetCounter("scan.index_evictions");
  auto keep = std::make_shared<Table>(MakeNumericTable(128));
  auto dead = std::make_shared<Table>(MakeNumericTable(128));
  ASSERT_NE(EnsureBlockIndex(keep), nullptr);
  ASSERT_NE(EnsureBlockIndex(dead), nullptr);
  const size_t size_before = BlockIndexCacheSize();
  ASSERT_GE(size_before, 2u);
  const uint64_t evicted_before = evictions->value();

  dead.reset();  // the owner dies; the cache entry is now expired
  PurgeExpiredBlockIndexes();
  EXPECT_EQ(BlockIndexCacheSize(), size_before - 1);
  EXPECT_GT(evictions->value(), evicted_before);

  // The survivor is still served from cache.
  EXPECT_NE(FindBlockIndex(*keep), nullptr);
}

TEST(BlockIndexCacheTest, LookupsEvictExpiredEntriesEagerly) {
  BlockRowsGuard guard(32);
  auto dead = std::make_shared<Table>(MakeNumericTable(64));
  ASSERT_NE(EnsureBlockIndex(dead), nullptr);
  dead.reset();
  // Any subsequent lookup purges expired entries as a side effect, so a
  // long-lived server that dropped a table cannot pin its index.
  auto live = std::make_shared<Table>(MakeNumericTable(64));
  ASSERT_NE(EnsureBlockIndex(live), nullptr);
  EXPECT_EQ(BlockIndexCacheSize(), 1u);
}

/// The TOCTOU regression: EnsureBlockIndex must read the block-size flag
/// once — every index it returns has internally consistent geometry even
/// while another thread flips SetScanBlockRows, and concurrent drops /
/// purges never leave a dangling entry. Run under TSan for the memory
/// model half of the claim.
TEST(BlockIndexCacheTest, ConcurrentEnsureResizeDropPurgeStaysConsistent) {
  BlockRowsGuard guard(64);
  auto stable = std::make_shared<Table>(MakeNumericTable(1000));
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  auto check_geometry = [&](const std::shared_ptr<const BlockIndex>& idx) {
    if (idx == nullptr) return;
    if (idx->block_rows != 64 && idx->block_rows != 128) {
      violation.store(true);
      return;
    }
    const size_t expect_blocks =
        (idx->num_rows + idx->block_rows - 1) / idx->block_rows;
    if (idx->num_blocks != expect_blocks) violation.store(true);
  };

  std::vector<std::thread> threads;
  // Builders/lookups on the shared table.
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        check_geometry(EnsureBlockIndex(stable));
        check_geometry(FindBlockIndex(*stable));
      }
    });
  }
  // The block-size flipper (the racing SetScanBlockRows of the issue).
  threads.emplace_back([&] {
    size_t rows = 64;
    while (!stop.load()) {
      rows = (rows == 64) ? 128 : 64;
      SetScanBlockRows(rows);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  // Table churn: create, index, destroy — racing the purger below.
  threads.emplace_back([&] {
    while (!stop.load()) {
      auto t = std::make_shared<Table>(MakeNumericTable(300));
      check_geometry(EnsureBlockIndex(t));
      t.reset();
    }
  });
  threads.emplace_back([&] {
    while (!stop.load()) {
      PurgeExpiredBlockIndexes();
      (void)BlockIndexCacheSize();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load())
      << "an index with torn geometry escaped EnsureBlockIndex";
}

}  // namespace
}  // namespace laws

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/descriptive.h"
#include "stats/diagnostics.h"
#include "stats/distributions.h"
#include "stats/goodness_of_fit.h"
#include "stats/histogram.h"

namespace laws {
namespace {

// --- Moments ---------------------------------------------------------

TEST(MomentsTest, EmptyIsZero) {
  Moments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance_sample(), 0.0);
}

TEST(MomentsTest, KnownValues) {
  Moments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance_population(), 4.0);
  EXPECT_NEAR(m.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(m.min(), 2.0);
  EXPECT_EQ(m.max(), 9.0);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(MomentsTest, MergeEqualsSinglePass) {
  Rng rng(1);
  Moments full, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    full.Add(v);
    (i % 3 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), full.count());
  EXPECT_NEAR(a.mean(), full.mean(), 1e-10);
  EXPECT_NEAR(a.variance_sample(), full.variance_sample(), 1e-8);
  EXPECT_EQ(a.min(), full.min());
  EXPECT_EQ(a.max(), full.max());
}

TEST(MomentsTest, MergeWithEmptyIsIdentity) {
  Moments a, empty;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Moments b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(DescriptiveTest, CovarianceAndCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};  // y = 2x exactly
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  EXPECT_NEAR(Covariance(x, y), 5.0, 1e-12);
  // Constant input: correlation defined as 0.
  std::vector<double> c = {3, 3, 3, 3, 3};
  EXPECT_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(DescriptiveTest, QuantilesType7) {
  std::vector<double> v = {1, 2, 3, 4};
  const auto qs = Quantiles(v, {0.0, 0.25, 0.5, 0.75, 1.0});
  EXPECT_DOUBLE_EQ(qs[0], 1.0);
  EXPECT_DOUBLE_EQ(qs[1], 1.75);
  EXPECT_DOUBLE_EQ(qs[2], 2.5);
  EXPECT_DOUBLE_EQ(qs[3], 3.25);
  EXPECT_DOUBLE_EQ(qs[4], 4.0);
}

// --- Distributions ----------------------------------------------------

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(DistributionsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << "p=" << p;
  }
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
}

TEST(DistributionsTest, NormalPdfIntegratesToCdf) {
  // Trapezoid integration of the pdf should match the cdf difference.
  double integral = 0.0;
  const int steps = 4500;
  const double dx = (1.5 - (-3.0)) / steps;
  for (int i = 0; i < steps; ++i) {
    const double x = -3.0 + i * dx;
    integral += 0.5 * (NormalPdf(x) + NormalPdf(x + dx)) * dx;
  }
  EXPECT_NEAR(integral, NormalCdf(1.5) - NormalCdf(-3.0), 1e-6);
}

TEST(DistributionsTest, GammaPComplement) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(DistributionsTest, ChiSquaredKnownValues) {
  // Chi2 with 1 df at 3.841 ~ 0.95 (classic critical value).
  EXPECT_NEAR(ChiSquaredCdf(3.841458820694124, 1.0), 0.95, 1e-6);
  // Chi2 with 2 df is Exponential(1/2): CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquaredCdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-9);
}

TEST(DistributionsTest, IncompleteBetaSymmetry) {
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 3.0, x),
                1.0 - RegularizedIncompleteBeta(3.0, 2.0, 1.0 - x), 1e-10);
  }
  EXPECT_EQ(RegularizedIncompleteBeta(1.0, 1.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(1.0, 1.0, 1.0), 1.0);
  // Beta(1,1) is uniform.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.37), 0.37, 1e-10);
}

TEST(DistributionsTest, StudentTKnownCriticalValues) {
  // t_{0.975, 10} = 2.228138852; t_{0.975, inf} -> 1.96.
  EXPECT_NEAR(StudentTCdf(2.2281388519649385, 10.0), 0.975, 1e-8);
  EXPECT_NEAR(StudentTQuantile(0.975, 10.0), 2.2281388519649385, 1e-6);
  EXPECT_NEAR(StudentTQuantile(0.975, 1e6), 1.96, 1e-2);
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  // Symmetry.
  EXPECT_NEAR(StudentTCdf(-1.5, 7.0) + StudentTCdf(1.5, 7.0), 1.0, 1e-10);
}

TEST(DistributionsTest, FDistributionKnownValues) {
  // F(1, n) = T(n)^2: P(F <= t^2) = P(|T| <= t).
  const double t = 2.0;
  EXPECT_NEAR(FCdf(t * t, 1.0, 10.0),
              StudentTCdf(t, 10.0) - StudentTCdf(-t, 10.0), 1e-9);
  // F_{0.95}(2, 10) = 4.102821.
  EXPECT_NEAR(FCdf(4.102821015303716, 2.0, 10.0), 0.95, 1e-6);
  EXPECT_EQ(FCdf(0.0, 3.0, 3.0), 0.0);
}

// --- Goodness of fit ----------------------------------------------------

TEST(GofTest, PerfectFit) {
  std::vector<double> y = {1, 2, 3, 4, 5};
  auto q = ComputeFitQuality(y, y, 2);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->r_squared, 1.0);
  EXPECT_DOUBLE_EQ(q->residual_standard_error, 0.0);
  EXPECT_EQ(q->n_observations, 5u);
}

TEST(GofTest, MeanModelHasZeroR2) {
  std::vector<double> y = {1, 2, 3, 4, 5};
  std::vector<double> pred(5, 3.0);  // the mean
  auto q = ComputeFitQuality(y, pred, 1);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q->r_squared, 0.0, 1e-12);
}

TEST(GofTest, KnownResidualStandardError) {
  std::vector<double> y = {1, 2, 3, 4};
  std::vector<double> pred = {1.1, 1.9, 3.1, 3.9};
  auto q = ComputeFitQuality(y, pred, 2);
  ASSERT_TRUE(q.ok());
  // RSS = 4 * 0.01 = 0.04; RSE = sqrt(0.04 / 2) = sqrt(0.02).
  EXPECT_NEAR(q->residual_sum_of_squares, 0.04, 1e-12);
  EXPECT_NEAR(q->residual_standard_error, std::sqrt(0.02), 1e-12);
}

TEST(GofTest, RejectsDegenerateInputs) {
  std::vector<double> y = {1, 2};
  EXPECT_FALSE(ComputeFitQuality(y, {1.0}, 1).ok());
  EXPECT_FALSE(ComputeFitQuality(y, y, 2).ok());  // n <= p
}

TEST(GofTest, BicPenalizesMoreThanAicForLargeN) {
  std::vector<double> y(200), pred(200);
  Rng rng(3);
  for (size_t i = 0; i < 200; ++i) {
    y[i] = static_cast<double>(i);
    pred[i] = y[i] + rng.Normal(0, 1.0);
  }
  auto q2 = ComputeFitQuality(y, pred, 2);
  auto q5 = ComputeFitQuality(y, pred, 5);
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(q5.ok());
  // Same predictions, more parameters: both criteria must worsen, BIC more.
  EXPECT_GT(q5->aic, q2->aic);
  EXPECT_GT(q5->bic, q2->bic);
  EXPECT_GT(q5->bic - q2->bic, q5->aic - q2->aic);
}

TEST(FTestTest, SignificantImprovement) {
  // Full model halves the RSS with one extra parameter on 100 points.
  auto r = NestedFTest(/*rss_reduced=*/100.0, /*p_reduced=*/1,
                       /*rss_full=*/50.0, /*p_full=*/2, /*n=*/100);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->significant);
  EXPECT_LT(r->p_value, 1e-6);
  EXPECT_NEAR(r->f_statistic, 98.0, 1e-9);  // (50/1)/(50/98)
}

TEST(FTestTest, NoImprovementNotSignificant) {
  auto r = NestedFTest(100.0, 1, 99.5, 2, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->significant);
  EXPECT_GT(r->p_value, 0.4);
}

TEST(FTestTest, PerfectFullModel) {
  auto r = NestedFTest(10.0, 1, 0.0, 2, 50);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->significant);
  EXPECT_EQ(r->p_value, 0.0);
}

TEST(FTestTest, InvalidInputs) {
  EXPECT_FALSE(NestedFTest(1.0, 2, 0.5, 2, 100).ok());  // p_full <= p_reduced
  EXPECT_FALSE(NestedFTest(1.0, 1, 0.5, 2, 2).ok());    // n <= p_full
  EXPECT_FALSE(NestedFTest(-1.0, 1, 0.5, 2, 10).ok());  // negative RSS
}

TEST(PredictionIntervalTest, HalfWidthMatchesTQuantile) {
  FitQuality q;
  q.n_observations = 102;
  q.n_parameters = 2;
  q.residual_standard_error = 2.0;
  auto hw = PredictionHalfWidth(q, 0.95);
  ASSERT_TRUE(hw.ok());
  EXPECT_NEAR(*hw, 2.0 * StudentTQuantile(0.975, 100.0), 1e-10);
  // Higher confidence widens the interval.
  auto hw99 = PredictionHalfWidth(q, 0.99);
  ASSERT_TRUE(hw99.ok());
  EXPECT_GT(*hw99, *hw);
  // Small-sample intervals are wider than the normal approximation.
  FitQuality small = q;
  small.n_observations = 5;
  auto hw_small = PredictionHalfWidth(small, 0.95);
  ASSERT_TRUE(hw_small.ok());
  EXPECT_GT(*hw_small, 2.0 * 1.96);
}

TEST(PredictionIntervalTest, Validation) {
  FitQuality q;
  q.n_observations = 10;
  q.n_parameters = 2;
  EXPECT_FALSE(PredictionHalfWidth(q, 0.0).ok());
  EXPECT_FALSE(PredictionHalfWidth(q, 1.0).ok());
  q.n_parameters = 10;
  EXPECT_FALSE(PredictionHalfWidth(q, 0.95).ok());
}

TEST(PredictionIntervalTest, EmpiricalCoverage) {
  // Simulate: fit a mean-only model, check ~95% of fresh draws fall inside
  // the prediction interval.
  Rng rng(71);
  size_t covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample(30);
    double mean = 0.0;
    for (auto& v : sample) {
      v = rng.Normal(10.0, 3.0);
      mean += v;
    }
    mean /= sample.size();
    std::vector<double> pred(sample.size(), mean);
    auto q = ComputeFitQuality(sample, pred, 1);
    ASSERT_TRUE(q.ok());
    auto hw = PredictionHalfWidth(*q, 0.95);
    ASSERT_TRUE(hw.ok());
    const double fresh = rng.Normal(10.0, 3.0);
    if (std::fabs(fresh - mean) <= *hw) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

// --- Diagnostics ------------------------------------------------------------

TEST(DiagnosticsTest, KsAcceptsNormalSample) {
  Rng rng(81);
  std::vector<double> v(2000);
  for (auto& x : v) x = rng.Normal(5.0, 2.0);
  auto ks = KolmogorovSmirnovNormalTest(v);
  ASSERT_TRUE(ks.ok());
  EXPECT_TRUE(ks->normal_at_05);
  EXPECT_LT(ks->statistic, 0.05);
}

TEST(DiagnosticsTest, KsRejectsExponentialSample) {
  Rng rng(83);
  std::vector<double> v(2000);
  for (auto& x : v) x = rng.Exponential(1.0);
  auto ks = KolmogorovSmirnovNormalTest(v);
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(ks->normal_at_05);
  EXPECT_LT(ks->p_value, 0.001);
}

TEST(DiagnosticsTest, KsValidation) {
  EXPECT_FALSE(KolmogorovSmirnovNormalTest({1, 2, 3}).ok());   // too few
  EXPECT_FALSE(
      KolmogorovSmirnovNormalTest(std::vector<double>(20, 7.0)).ok());
}

TEST(DiagnosticsTest, DurbinWatsonRegimes) {
  Rng rng(85);
  // Independent residuals: DW near 2.
  std::vector<double> iid(5000);
  for (auto& x : iid) x = rng.Normal();
  auto dw_iid = DurbinWatson(iid);
  ASSERT_TRUE(dw_iid.ok());
  EXPECT_NEAR(*dw_iid, 2.0, 0.1);
  // Strong positive autocorrelation (AR(1), rho = 0.95): DW near 0.
  std::vector<double> ar(5000);
  ar[0] = rng.Normal();
  for (size_t i = 1; i < ar.size(); ++i) {
    ar[i] = 0.95 * ar[i - 1] + rng.Normal(0, 0.3);
  }
  auto dw_ar = DurbinWatson(ar);
  ASSERT_TRUE(dw_ar.ok());
  EXPECT_LT(*dw_ar, 0.5);
  // Alternating sign: DW near 4.
  std::vector<double> alt(1000);
  for (size_t i = 0; i < alt.size(); ++i) alt[i] = i % 2 == 0 ? 1.0 : -1.0;
  auto dw_alt = DurbinWatson(alt);
  ASSERT_TRUE(dw_alt.ok());
  EXPECT_GT(*dw_alt, 3.5);
  EXPECT_FALSE(DurbinWatson({1.0}).ok());
  EXPECT_FALSE(DurbinWatson({0.0, 0.0}).ok());
}

TEST(DiagnosticsTest, MisfitModelShowsAutocorrelatedResiduals) {
  // Fit a line to a parabola: residuals ordered by x are smooth -> DW << 2.
  std::vector<double> residuals;
  for (int i = 0; i < 200; ++i) {
    const double x = i / 20.0;
    const double y = x * x;              // truth
    const double line = 10.0 * x - 16.7; // decent linear fit by eye
    residuals.push_back(y - line);
  }
  auto dw = DurbinWatson(residuals);
  ASSERT_TRUE(dw.ok());
  EXPECT_LT(*dw, 0.5);
}

// --- Histogram ----------------------------------------------------------

TEST(HistogramTest, EquiWidthCountsExactOnBucketBoundaries) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  auto h = Histogram::BuildEquiWidth(v, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucket_count(), 10u);
  EXPECT_EQ(h->total_count(), 100u);
  size_t total = 0;
  for (size_t c : h->counts()) total += c;
  EXPECT_EQ(total, 100u);
  // Full-range estimate equals the exact count.
  EXPECT_NEAR(h->EstimateRangeCount(-1.0, 100.0), 100.0, 1e-9);
}

TEST(HistogramTest, EquiDepthBucketsBalanced) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.Exponential(1.0));
  auto h = Histogram::BuildEquiDepth(v, 20);
  ASSERT_TRUE(h.ok());
  for (size_t c : h->counts()) EXPECT_EQ(c, 500u);
}

TEST(HistogramTest, RangeCountEstimateOnUniformData) {
  Rng rng(6);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.Uniform(0.0, 1.0));
  auto h = Histogram::BuildEquiWidth(v, 50);
  ASSERT_TRUE(h.ok());
  // [0.2, 0.5] should hold ~30% of rows.
  EXPECT_NEAR(h->EstimateRangeCount(0.2, 0.5), 15000.0, 600.0);
}

TEST(HistogramTest, RangeSumAndAvgOnUniformData) {
  Rng rng(7);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.Uniform(0.0, 10.0));
  auto h = Histogram::BuildEquiDepth(v, 64);
  ASSERT_TRUE(h.ok());
  const double avg = h->EstimateRangeAvg(2.0, 4.0);
  EXPECT_NEAR(avg, 3.0, 0.15);
  const double count = h->EstimateRangeCount(2.0, 4.0);
  EXPECT_NEAR(h->EstimateRangeSum(2.0, 4.0), avg * count, 1e-6);
}

TEST(HistogramTest, DegenerateInputs) {
  EXPECT_FALSE(Histogram::BuildEquiWidth({}, 4).ok());
  EXPECT_FALSE(Histogram::BuildEquiWidth({1.0}, 0).ok());
  // Constant column must not divide by zero.
  auto h = Histogram::BuildEquiWidth({5.0, 5.0, 5.0}, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->total_count(), 3u);
  EXPECT_NEAR(h->EstimateRangeCount(4.0, 6.0), 3.0, 1e-9);
}

TEST(HistogramTest, EmptyRangeEstimatesZero) {
  auto h = Histogram::BuildEquiWidth({1, 2, 3}, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->EstimateRangeCount(10.0, 20.0), 0.0);
  EXPECT_EQ(h->EstimateRangeCount(5.0, 4.0), 0.0);  // inverted
  EXPECT_EQ(h->EstimateRangeAvg(10.0, 20.0), 0.0);
}

TEST(HistogramTest, SizeBytesPositive) {
  auto h = Histogram::BuildEquiDepth({1, 2, 3, 4, 5}, 2);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(h->SizeBytes(), 0u);
  EXPECT_FALSE(h->ToString().empty());
}

}  // namespace
}  // namespace laws

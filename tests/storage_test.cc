#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/random.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/csv.h"
#include "storage/schema.h"
#include "storage/serialize.h"
#include "storage/table.h"
#include "storage/types.h"

namespace laws {
namespace {

Schema TestSchema() {
  return Schema({Field{"id", DataType::kInt64, false},
                 Field{"value", DataType::kDouble, true},
                 Field{"tag", DataType::kString, true},
                 Field{"flag", DataType::kBool, true}});
}

Table MakeTestTable(size_t rows, uint64_t seed = 1) {
  Rng rng(seed);
  Table t(TestSchema());
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.push_back(Value::Int64(static_cast<int64_t>(i)));
    row.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                     : Value::Double(rng.Normal()));
    row.push_back(Value::String(rng.Bernoulli(0.5) ? "red" : "blue"));
    row.push_back(Value::Bool(rng.Bernoulli(0.3)));
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

// --- Value / types ------------------------------------------------------

TEST(ValueTest, NullAndTypes) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int64(3).is_int64());
  EXPECT_TRUE(Value::Double(3.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_EQ(Value::Int64(3).int64(), 3);
  EXPECT_EQ(Value::String("x").str(), "x");
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_DOUBLE_EQ(*Value::Int64(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(*Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(*Value::Bool(true).AsDouble(), 1.0);
  EXPECT_FALSE(Value::Null().AsDouble().ok());
  EXPECT_FALSE(Value::String("7").AsDouble().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
}

TEST(TypesTest, DataTypeRoundTrip) {
  for (DataType t : {DataType::kInt64, DataType::kDouble, DataType::kString,
                     DataType::kBool}) {
    auto parsed = DataTypeFromString(DataTypeToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_EQ(*DataTypeFromString("BIGINT"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromString("real"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromString("VarChar"), DataType::kString);
  EXPECT_FALSE(DataTypeFromString("blob").ok());
}

// --- Schema -------------------------------------------------------------

TEST(SchemaTest, FieldLookupCaseInsensitive) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.FieldIndex("ID"), 0u);
  EXPECT_EQ(*s.FieldIndex("Value"), 1u);
  EXPECT_FALSE(s.FieldIndex("missing").ok());
  EXPECT_TRUE(s.HasField("tag"));
  EXPECT_FALSE(s.HasField("nope"));
}

TEST(SchemaTest, ToStringListsFields) {
  const std::string repr = TestSchema().ToString();
  EXPECT_NE(repr.find("id INT64 NOT NULL"), std::string::npos);
  EXPECT_NE(repr.find("value DOUBLE"), std::string::npos);
}

// --- Column ---------------------------------------------------------------

TEST(ColumnTest, Int64AppendAndRead) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(-99);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Int64At(1), -99);
  EXPECT_FALSE(c.IsNull(0));
}

TEST(ColumnTest, NullTracking) {
  Column c(DataType::kDouble);
  c.AppendDouble(1.0);
  EXPECT_TRUE(c.AppendNull().ok());
  c.AppendDouble(3.0);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_TRUE(c.GetValue(1).is_null());
}

TEST(ColumnTest, NonNullableRejectsNull) {
  Column c(DataType::kInt64, /*nullable=*/false);
  EXPECT_FALSE(c.AppendNull().ok());
}

TEST(ColumnTest, StringDictionaryDeduplicates) {
  Column c(DataType::kString);
  for (int i = 0; i < 100; ++i) c.AppendString(i % 2 == 0 ? "a" : "b");
  EXPECT_EQ(c.dictionary().size(), 2u);
  EXPECT_EQ(c.StringAt(0), "a");
  EXPECT_EQ(c.StringAt(1), "b");
  EXPECT_EQ(*c.DictionaryCode("a"), 0u);
  EXPECT_EQ(*c.DictionaryCode("b"), 1u);
  EXPECT_FALSE(c.DictionaryCode("c").ok());
}

TEST(ColumnTest, AppendValueTypeChecking) {
  Column c(DataType::kInt64);
  EXPECT_TRUE(c.AppendValue(Value::Int64(1)).ok());
  EXPECT_FALSE(c.AppendValue(Value::Double(1.0)).ok());
  EXPECT_FALSE(c.AppendValue(Value::String("x")).ok());
  // Double columns accept int values (widening).
  Column d(DataType::kDouble);
  EXPECT_TRUE(d.AppendValue(Value::Int64(2)).ok());
  EXPECT_DOUBLE_EQ(d.DoubleAt(0), 2.0);
}

TEST(ColumnTest, ToDoubleVectorSkipsNulls) {
  Column c(DataType::kDouble);
  c.AppendDouble(1.0);
  ASSERT_TRUE(c.AppendNull().ok());
  c.AppendDouble(3.0);
  auto v = c.ToDoubleVector();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<double>{1.0, 3.0}));
  Column s(DataType::kString);
  s.AppendString("x");
  EXPECT_FALSE(s.ToDoubleVector().ok());
}

TEST(ColumnTest, GatherPreservesValuesAndNulls) {
  Column c(DataType::kInt64);
  for (int i = 0; i < 10; ++i) {
    if (i == 5) {
      ASSERT_TRUE(c.AppendNull().ok());
    } else {
      c.AppendInt64(i);
    }
  }
  Column g = c.Gather({9, 5, 0});
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.Int64At(0), 9);
  EXPECT_TRUE(g.IsNull(1));
  EXPECT_EQ(g.Int64At(2), 0);
}

TEST(ColumnTest, MemoryBytesScalesWithData) {
  Column c(DataType::kDouble);
  const size_t empty = c.MemoryBytes();
  for (int i = 0; i < 1000; ++i) c.AppendDouble(i);
  EXPECT_GE(c.MemoryBytes(), empty + 1000 * sizeof(double));
}

TEST(ColumnTest, NumericAtCoercions) {
  Column b(DataType::kBool);
  b.AppendBool(true);
  EXPECT_DOUBLE_EQ(*b.NumericAt(0), 1.0);
  Column s(DataType::kString);
  s.AppendString("x");
  EXPECT_FALSE(s.NumericAt(0).ok());
}

TEST(ColumnTest, GatherNumericAllTypes) {
  Column i64(DataType::kInt64);
  Column dbl(DataType::kDouble);
  Column bl(DataType::kBool);
  for (int i = 0; i < 6; ++i) {
    i64.AppendInt64(i * 10);
    dbl.AppendDouble(i * 0.5);
    bl.AppendBool(i % 2 == 0);
  }
  const std::vector<uint32_t> rows = {5, 0, 3};
  double out[3];
  ASSERT_TRUE(i64.GatherNumeric(rows.data(), rows.size(), out).ok());
  EXPECT_DOUBLE_EQ(out[0], 50.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 30.0);
  ASSERT_TRUE(dbl.GatherNumeric(rows.data(), rows.size(), out).ok());
  EXPECT_DOUBLE_EQ(out[0], 2.5);
  EXPECT_DOUBLE_EQ(out[2], 1.5);
  ASSERT_TRUE(bl.GatherNumeric(rows.data(), rows.size(), out).ok());
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);

  Column s(DataType::kString);
  s.AppendString("a");
  const uint32_t zero = 0;
  EXPECT_FALSE(s.GatherNumeric(&zero, 1, out).ok());
}

TEST(ColumnTest, GatherNumericTransformedFusesLog) {
  Column dbl(DataType::kDouble);
  Column i64(DataType::kInt64);
  for (int i = 1; i <= 6; ++i) {
    dbl.AppendDouble(i * 0.5);
    i64.AppendInt64(i * 10);
  }
  const std::vector<uint32_t> rows = {4, 0, 2};
  double out[3];
  ASSERT_TRUE(dbl.GatherNumericTransformed(rows.data(), rows.size(), out,
                                           NumericTransform::kLog)
                  .ok());
  EXPECT_DOUBLE_EQ(out[0], std::log(2.5));
  EXPECT_DOUBLE_EQ(out[1], std::log(0.5));
  EXPECT_DOUBLE_EQ(out[2], std::log(1.5));
  ASSERT_TRUE(i64.GatherNumericTransformed(rows.data(), rows.size(), out,
                                           NumericTransform::kLog)
                  .ok());
  EXPECT_DOUBLE_EQ(out[0], std::log(50.0));
  EXPECT_DOUBLE_EQ(out[1], std::log(10.0));
  EXPECT_DOUBLE_EQ(out[2], std::log(30.0));
  // Identity delegates to the plain gather.
  ASSERT_TRUE(dbl.GatherNumericTransformed(rows.data(), rows.size(), out,
                                           NumericTransform::kIdentity)
                  .ok());
  EXPECT_DOUBLE_EQ(out[0], 2.5);
  Column s(DataType::kString);
  s.AppendString("a");
  const uint32_t zero = 0;
  EXPECT_FALSE(s.GatherNumericTransformed(&zero, 1, out,
                                          NumericTransform::kLog)
                   .ok());
}

TEST(ColumnTest, GatherNumericTransformedOutOfDomainSentinels) {
  // Out-of-domain values must land as -inf/NaN (the caller's domain
  // check), not trap or silently clamp.
  Column dbl(DataType::kDouble);
  dbl.AppendDouble(0.0);
  dbl.AppendDouble(-2.0);
  dbl.AppendDouble(4.0);
  const std::vector<uint32_t> rows = {0, 1, 2};
  double out[3];
  ASSERT_TRUE(dbl.GatherNumericTransformed(rows.data(), rows.size(), out,
                                           NumericTransform::kLog)
                  .ok());
  EXPECT_TRUE(std::isinf(out[0]) && out[0] < 0.0);
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_DOUBLE_EQ(out[2], std::log(4.0));
  // Bool: true -> log(1) = 0, false -> -inf.
  Column bl(DataType::kBool);
  bl.AppendBool(true);
  bl.AppendBool(false);
  const std::vector<uint32_t> brows = {0, 1};
  ASSERT_TRUE(bl.GatherNumericTransformed(brows.data(), brows.size(), out,
                                          NumericTransform::kLog)
                  .ok());
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_TRUE(std::isinf(out[1]) && out[1] < 0.0);
}

TEST(ColumnTest, GatherNumericMatchesNumericAt) {
  Column c(DataType::kDouble);
  for (int i = 0; i < 100; ++i) c.AppendDouble(std::sin(i));
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < 100; i += 3) rows.push_back(i);
  std::vector<double> out(rows.size());
  ASSERT_TRUE(c.GatherNumeric(rows.data(), rows.size(), out.data()).ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out[i], *c.NumericAt(rows[i]));
  }
}

TEST(ColumnTest, GatherNumericMaskedFlagsNulls) {
  Column c(DataType::kDouble, /*nullable=*/true);
  c.AppendDouble(1.5);
  ASSERT_TRUE(c.AppendNull().ok());
  c.AppendDouble(2.5);
  ASSERT_TRUE(c.AppendNull().ok());
  const std::vector<uint32_t> rows = {0, 1, 2, 3};
  std::vector<double> out(4);
  std::vector<uint8_t> mask(4, 9);
  auto non_null =
      c.GatherNumericMasked(rows.data(), rows.size(), out.data(), mask.data());
  ASSERT_TRUE(non_null.ok());
  EXPECT_EQ(*non_null, 2u);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_DOUBLE_EQ(out[2], 2.5);
  EXPECT_TRUE(std::isnan(out[3]));
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[2], 0);
  EXPECT_EQ(mask[3], 1);

  // Mask is optional; non-nullable columns report everything valid.
  Column nn(DataType::kInt64, /*nullable=*/false);
  nn.AppendInt64(7);
  const uint32_t zero = 0;
  double v = 0;
  auto all = nn.GatherNumericMasked(&zero, 1, &v, nullptr);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, 1u);
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ColumnTest, FromVectorBulkConstruction) {
  Column i64 = Column::FromInt64Vector({3, 1, 4, 1, 5});
  EXPECT_EQ(i64.size(), 5u);
  EXPECT_EQ(i64.type(), DataType::kInt64);
  EXPECT_FALSE(i64.nullable());
  EXPECT_EQ(i64.null_count(), 0u);
  EXPECT_EQ(i64.Int64At(2), 4);

  Column dbl = Column::FromDoubleVector({0.5, -1.25});
  EXPECT_EQ(dbl.size(), 2u);
  EXPECT_EQ(dbl.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(dbl.DoubleAt(1), -1.25);
  EXPECT_FALSE(dbl.IsNull(0));
}

// --- Table -----------------------------------------------------------------

TEST(TableTest, AppendRowAndRead) {
  Table t = MakeTestTable(10);
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.num_columns(), 4u);
  EXPECT_EQ(t.GetValue(3, 0).int64(), 3);
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t(TestSchema());
  EXPECT_FALSE(t.AppendRow({Value::Int64(1)}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, AppendRowTypeMismatchLeavesTableUnchanged) {
  Table t(TestSchema());
  const auto status = t.AppendRow({Value::String("oops"), Value::Double(1.0),
                                   Value::String("t"), Value::Bool(false)});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(t.num_rows(), 0u);
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(t.column(c).size(), 0u);
  }
}

TEST(TableTest, NonNullableEnforced) {
  Table t(TestSchema());
  EXPECT_FALSE(t.AppendRow({Value::Null(), Value::Double(1.0),
                            Value::String("t"), Value::Bool(false)})
                   .ok());
}

TEST(TableTest, DataVersionBumpsOnMutation) {
  Table t = MakeTestTable(1);
  const uint64_t v = t.data_version();
  ASSERT_TRUE(t.AppendRow({Value::Int64(99), Value::Double(1.0),
                           Value::String("t"), Value::Bool(true)})
                  .ok());
  EXPECT_GT(t.data_version(), v);
}

TEST(TableTest, ColumnByName) {
  Table t = MakeTestTable(3);
  ASSERT_TRUE(t.ColumnByName("VALUE").ok());
  EXPECT_FALSE(t.ColumnByName("ghost").ok());
}

TEST(TableTest, GatherRowsReordersAndSubsets) {
  Table t = MakeTestTable(10);
  Table g = t.GatherRows({7, 2, 2});
  EXPECT_EQ(g.num_rows(), 3u);
  EXPECT_EQ(g.GetValue(0, 0).int64(), 7);
  EXPECT_EQ(g.GetValue(1, 0).int64(), 2);
  EXPECT_EQ(g.GetValue(2, 0).int64(), 2);
}

TEST(TableTest, FromColumnsValidation) {
  Schema s({Field{"a", DataType::kInt64, false}});
  Column good(DataType::kInt64, false);
  good.AppendInt64(1);
  auto t = Table::FromColumns(s, {good});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  // Type mismatch.
  Column bad(DataType::kDouble);
  EXPECT_FALSE(Table::FromColumns(s, {bad}).ok());
  // Ragged columns.
  Schema s2({Field{"a", DataType::kInt64, false},
             Field{"b", DataType::kInt64, false}});
  Column shorter(DataType::kInt64, false);
  EXPECT_FALSE(Table::FromColumns(s2, {good, shorter}).ok());
}

TEST(TableTest, SyncRowCountAfterBulkLoad) {
  Table t(Schema({Field{"a", DataType::kInt64, false},
                  Field{"b", DataType::kDouble, false}}));
  for (int i = 0; i < 5; ++i) {
    t.mutable_column(0)->AppendInt64(i);
    t.mutable_column(1)->AppendDouble(i * 2.0);
  }
  ASSERT_TRUE(t.SyncRowCount().ok());
  EXPECT_EQ(t.num_rows(), 5u);
  // Ragged bulk load is rejected.
  t.mutable_column(0)->AppendInt64(9);
  EXPECT_FALSE(t.SyncRowCount().ok());
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeTestTable(30);
  const std::string repr = t.ToString(5);
  EXPECT_NE(repr.find("[25 more rows]"), std::string::npos);
}

// --- Catalog ----------------------------------------------------------------

TEST(CatalogTest, RegisterGetDrop) {
  Catalog cat;
  auto t = std::make_shared<Table>(MakeTestTable(3));
  ASSERT_TRUE(cat.Register("obs", t).ok());
  EXPECT_TRUE(cat.Contains("OBS"));  // case-insensitive
  auto got = cat.Get("Obs");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->num_rows(), 3u);
  EXPECT_FALSE(cat.Register("OBS", t).ok());  // duplicate
  EXPECT_TRUE(cat.Drop("obs").ok());
  EXPECT_FALSE(cat.Get("obs").ok());
  EXPECT_FALSE(cat.Drop("obs").ok());
}

TEST(CatalogTest, RegisterOrReplace) {
  Catalog cat;
  cat.RegisterOrReplace("t", std::make_shared<Table>(MakeTestTable(1)));
  cat.RegisterOrReplace("t", std::make_shared<Table>(MakeTestTable(2)));
  EXPECT_EQ((*cat.Get("t"))->num_rows(), 2u);
  EXPECT_EQ(cat.size(), 1u);
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog cat;
  cat.RegisterOrReplace("zeta", std::make_shared<Table>(MakeTestTable(1)));
  cat.RegisterOrReplace("alpha", std::make_shared<Table>(MakeTestTable(1)));
  const auto names = cat.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(CatalogTest, NullTableRejected) {
  Catalog cat;
  EXPECT_FALSE(cat.Register("t", nullptr).ok());
}

// --- CSV ------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  Table t = MakeTestTable(25);
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  auto parsed = ReadCsvString(out.str(), t.schema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(parsed->GetValue(r, 0), t.GetValue(r, 0));
    EXPECT_EQ(parsed->GetValue(r, 2), t.GetValue(r, 2));
    EXPECT_EQ(parsed->GetValue(r, 3), t.GetValue(r, 3));
    if (t.GetValue(r, 1).is_null()) {
      EXPECT_TRUE(parsed->GetValue(r, 1).is_null());
    } else {
      EXPECT_NEAR(parsed->GetValue(r, 1).dbl(), t.GetValue(r, 1).dbl(),
                  1e-9);
    }
  }
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndQuotes) {
  Schema s({Field{"name", DataType::kString, false},
            Field{"n", DataType::kInt64, false}});
  const std::string csv = "name,n\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n";
  auto t = ReadCsvString(csv, s);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->GetValue(0, 0).str(), "a,b");
  EXPECT_EQ(t->GetValue(1, 0).str(), "say \"hi\"");
}

TEST(CsvTest, HeaderMismatchFails) {
  Schema s({Field{"a", DataType::kInt64, false}});
  EXPECT_FALSE(ReadCsvString("b\n1\n", s).ok());
}

TEST(CsvTest, BadValuesCarryLineNumbers) {
  Schema s({Field{"a", DataType::kInt64, false}});
  auto r = ReadCsvString("a\nnot_a_number\n", s);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ArityMismatchFails) {
  Schema s({Field{"a", DataType::kInt64, false},
            Field{"b", DataType::kInt64, false}});
  EXPECT_FALSE(ReadCsvString("a,b\n1\n", s).ok());
}

TEST(CsvTest, NullTokenHandling) {
  Schema s({Field{"a", DataType::kDouble, true}});
  auto t = ReadCsvString("a\n\n1.5\n", s);  // empty line skipped
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  CsvOptions opts;
  opts.null_token = "NA";
  auto t2 = ReadCsvString("a\nNA\n2.5\n", s, opts);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t2->GetValue(0, 0).is_null());
  EXPECT_DOUBLE_EQ(t2->GetValue(1, 0).dbl(), 2.5);
}

TEST(CsvTest, FileRoundTripAndSchemaSpec) {
  Table t = MakeTestTable(40);
  const std::string path = "/tmp/lawsdb_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path, t.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 40u);
  EXPECT_FALSE(ReadCsvFile("/tmp/nope_no_such.csv", t.schema()).ok());

  auto schema = ParseSchemaSpec("id:bigint, value?:double, tag?:varchar");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->num_fields(), 3u);
  EXPECT_EQ(schema->field(0).type, DataType::kInt64);
  EXPECT_FALSE(schema->field(0).nullable);
  EXPECT_TRUE(schema->field(1).nullable);
  EXPECT_EQ(schema->field(2).type, DataType::kString);
  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("a:blob").ok());
  EXPECT_FALSE(ParseSchemaSpec("justaname").ok());
}

// --- Serialization -----------------------------------------------------------

class SerializeRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(SerializeRoundTrip, BitExact) {
  Table t = MakeTestTable(GetParam(), /*seed=*/GetParam() + 7);
  const auto bytes = SerializeTableToBytes(t);
  auto back = DeserializeTableFromBytes(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->schema().num_fields(), t.schema().num_fields());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(back->GetValue(r, c), t.GetValue(r, c))
          << "row " << r << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializeRoundTrip,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 1000));

TEST(SerializeTest, RejectsGarbage) {
  std::vector<uint8_t> garbage = {'X', 'X', 'X', 'X', 0, 0};
  EXPECT_FALSE(DeserializeTableFromBytes(garbage).ok());
}

TEST(SerializeTest, RejectsTruncated) {
  Table t = MakeTestTable(100);
  auto bytes = SerializeTableToBytes(t);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeTableFromBytes(bytes).ok());
}

}  // namespace
}  // namespace laws

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace laws {
namespace {

TEST(ThreadPoolTest, ParseThreadCount) {
  EXPECT_EQ(ThreadPool::ParseThreadCount(nullptr), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadCount(""), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("4"), 4u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("16"), 16u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("0"), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("-2"), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("abc"), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("4x"), 0u);
}

TEST(ThreadPoolTest, LaneCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsInlineOnSingleLanePool) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id observed;
  pool.Submit([&] { observed = std::this_thread::get_id(); });
  EXPECT_EQ(observed, caller);
}

TEST(ThreadPoolTest, SubmitRunsTasksOnWorkers) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&count] { ++count; });
  }
  for (int spin = 0; spin < 2000 && count.load() < 32; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, NestedSubmitIsSafe) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    ++count;
    pool.Submit([&count] { ++count; });
  });
  for (int spin = 0; spin < 2000 && count.load() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  ThreadPool pool(4);
  ParallelForOptions opts;
  opts.pool = &pool;
  bool called = false;
  ParallelFor(5, 5, [&](size_t) { called = true; }, opts);
  ParallelFor(7, 3, [&](size_t) { called = true; }, opts);
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  ParallelForOptions opts;
  opts.pool = &pool;
  std::vector<int> visits(1000, 0);
  ParallelFor(0, visits.size(), [&](size_t i) { ++visits[i]; }, opts);
  for (size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  ParallelForOptions opts;
  opts.pool = &pool;
  std::vector<int> visits(100, 0);
  ParallelForChunks(10, 90, [&](size_t lo, size_t hi) {
    ASSERT_LE(lo, hi);
    for (size_t i = lo; i < hi; ++i) ++visits[i];
  }, opts);
  for (size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i], (i >= 10 && i < 90) ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, SingleLaneRunsOnCallingThread) {
  ThreadPool pool(1);
  ParallelForOptions opts;
  opts.pool = &pool;
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(0, 16, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  }, opts);
}

TEST(ParallelForTest, GrainForcesSerialForSmallRanges) {
  ThreadPool pool(4);
  ParallelForOptions opts;
  opts.pool = &pool;
  opts.grain = 100;
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(0, 150, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  }, opts);
}

TEST(ParallelForTest, PropagatesExceptionsToCaller) {
  ThreadPool pool(4);
  ParallelForOptions opts;
  opts.pool = &pool;
  EXPECT_THROW(
      ParallelFor(0, 100, [](size_t i) {
        if (i == 37) throw std::runtime_error("boom");
      }, opts),
      std::runtime_error);
  // The pool survives a throwing region and stays usable.
  std::atomic<int> count{0};
  ParallelFor(0, 100, [&](size_t) { ++count; }, opts);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  ParallelForOptions opts;
  opts.pool = &pool;
  std::vector<std::vector<int>> visits(8, std::vector<int>(64, 0));
  ParallelFor(0, visits.size(), [&](size_t outer) {
    // The inner loop must detect the surrounding region and run inline
    // rather than deadlocking on a saturated pool.
    ParallelFor(0, visits[outer].size(),
                [&, outer](size_t inner) { ++visits[outer][inner]; }, opts);
  }, opts);
  for (const auto& row : visits) {
    for (int v : row) ASSERT_EQ(v, 1);
  }
}

// Regression test for the pool-swap race: SetGlobalThreadCount used to
// leave in-flight ParallelForChunks regions holding a raw pointer to the
// pool it destroyed. The region now pins the pool via shared_ptr, so
// resizing concurrently with running regions must be safe — under TSan
// this test is the proof.
TEST(ParallelForTest, ResizingGlobalPoolDuringRegionsIsSafe) {
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    size_t n = 2;
    while (!stop.load(std::memory_order_acquire)) {
      ThreadPool::SetGlobalThreadCount(n);
      n = n == 2 ? 4 : 2;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  for (int iter = 0; iter < 300; ++iter) {
    std::atomic<size_t> sum{0};
    ParallelForChunks(0, 10000, [&](size_t lo, size_t hi) {
      sum.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 10000u);
  }
  stop.store(true, std::memory_order_release);
  flipper.join();
  ThreadPool::SetGlobalThreadCount(0);
}

TEST(ParallelForTest, GlobalPoolThreadCountIsConfigurable) {
  ThreadPool::SetGlobalThreadCount(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3u);
  std::vector<int> visits(256, 0);
  ParallelFor(0, visits.size(), [&](size_t i) { ++visits[i]; });
  for (int v : visits) ASSERT_EQ(v, 1);
  ThreadPool::SetGlobalThreadCount(0);  // back to LAWS_THREADS / hardware
  EXPECT_EQ(ThreadPool::Global().num_threads(),
            ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace laws

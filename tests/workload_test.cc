#include <gtest/gtest.h>

#include <cmath>

#include "model/fit.h"
#include "model/grouped_fit.h"
#include "model/model.h"
#include "workload/retail.h"
#include "workload/sensor.h"

namespace laws {
namespace {

TEST(RetailTest, ShapeAndSchema) {
  RetailConfig cfg;
  cfg.num_skus = 20;
  cfg.num_days = 60;
  auto data = GenerateRetail(cfg);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->sales.num_rows(), 20u * 60u);
  EXPECT_TRUE(data->sales.schema().HasField("sku"));
  EXPECT_TRUE(data->sales.schema().HasField("day"));
  EXPECT_TRUE(data->sales.schema().HasField("units"));
  EXPECT_EQ(data->truth.size(), 20u);
}

TEST(RetailTest, SeasonalFitRecoversPlantedCoefficients) {
  RetailConfig cfg;
  cfg.num_skus = 10;
  cfg.num_days = 140;
  cfg.noise_sd = 2.0;
  auto data = GenerateRetail(cfg);
  ASSERT_TRUE(data.ok());
  SeasonalModel model(cfg.period);
  GroupedFitSpec spec;
  spec.group_column = "sku";
  spec.input_columns = {"day"};
  spec.output_column = "units";
  auto fits = FitGrouped(model, data->sales, spec);
  ASSERT_TRUE(fits.ok());
  ASSERT_EQ(fits->groups.size(), 10u);
  for (size_t g = 0; g < fits->groups.size(); ++g) {
    const auto& truth = data->truth[g];
    const auto& params = fits->groups[g].fit.parameters;
    EXPECT_EQ(fits->groups[g].group_key, truth.sku);
    EXPECT_NEAR(params[0], truth.level, 1.5) << "sku " << truth.sku;
    EXPECT_NEAR(params[1], truth.sin_coef, 1.0);
    EXPECT_NEAR(params[2], truth.cos_coef, 1.0);
    EXPECT_NEAR(params[3], truth.trend, 0.03);
  }
}

TEST(RetailTest, DeterministicAndValidating) {
  RetailConfig cfg;
  cfg.num_skus = 5;
  cfg.num_days = 10;
  auto a = GenerateRetail(cfg);
  auto b = GenerateRetail(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sales.GetValue(7, 2), b->sales.GetValue(7, 2));
  RetailConfig bad;
  bad.num_skus = 0;
  EXPECT_FALSE(GenerateRetail(bad).ok());
}

TEST(SensorTest, ShapeAndBreakpoints) {
  SensorConfig cfg;
  cfg.num_sensors = 5;
  cfg.num_ticks = 300;
  auto data = GenerateSensor(cfg);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->readings.num_rows(), 5u * 300u);
  ASSERT_EQ(data->tick_breakpoints.size(), 2u);
  EXPECT_NEAR(data->tick_breakpoints[0], 105.0, 1e-9);
  EXPECT_NEAR(data->tick_breakpoints[1], 210.0, 1e-9);
}

TEST(SensorTest, DriftIsContinuousAcrossRegimes) {
  SensorConfig cfg;
  cfg.num_sensors = 3;
  cfg.num_ticks = 400;
  cfg.noise_sd = 0.0;  // pure signal
  auto data = GenerateSensor(cfg);
  ASSERT_TRUE(data.ok());
  const Column& temp = *data->readings.ColumnByName("temperature").value();
  // Within one sensor, consecutive ticks never jump (continuity at
  // breakpoints).
  for (size_t i = 1; i < cfg.num_ticks; ++i) {
    EXPECT_LT(std::fabs(temp.DoubleAt(i) - temp.DoubleAt(i - 1)), 0.1)
        << "jump at tick " << i;
  }
}

TEST(SensorTest, PiecewiseFitBeatsGlobalLinear) {
  SensorConfig cfg;
  cfg.num_sensors = 1;
  cfg.num_ticks = 900;
  cfg.slope_sd = 0.02;  // pronounced regime changes
  cfg.seed = 123;
  auto data = GenerateSensor(cfg);
  ASSERT_TRUE(data.ok());

  Matrix x(cfg.num_ticks, 1);
  Vector y(cfg.num_ticks);
  const Column& tick = *data->readings.ColumnByName("tick").value();
  const Column& temp = *data->readings.ColumnByName("temperature").value();
  for (size_t i = 0; i < cfg.num_ticks; ++i) {
    x(i, 0) = static_cast<double>(tick.Int64At(i));
    y[i] = temp.DoubleAt(i);
  }

  PiecewisePolynomialModel piecewise(data->tick_breakpoints, 1);
  LinearModel global(1);
  auto fit_pw = FitModel(piecewise, x, y);
  auto fit_gl = FitModel(global, x, y);
  ASSERT_TRUE(fit_pw.ok());
  ASSERT_TRUE(fit_gl.ok());
  // Matching regime structure should fit much better (FunctionDB's pitch).
  EXPECT_LT(fit_pw->quality.residual_standard_error,
            fit_gl->quality.residual_standard_error);
  EXPECT_GT(fit_pw->quality.r_squared, 0.9);
}

TEST(SensorTest, RejectsBadBreakpoints) {
  SensorConfig cfg;
  cfg.breakpoints = {1.5};
  EXPECT_FALSE(GenerateSensor(cfg).ok());
  SensorConfig tiny;
  tiny.num_ticks = 2;
  EXPECT_FALSE(GenerateSensor(tiny).ok());
}

}  // namespace
}  // namespace laws

#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and fail on perf regressions.

Usage: tools/bench_compare.py BASELINE.json CANDIDATE.json
         [--metric fit_seconds] [--threshold 0.10] [--key threads]

Each BENCH json file is a flat array of records ({"experiment": ...,
numeric fields...}) as written by bench_util.h's JsonReport. Records are
matched between the two files by (experiment, key field) — by default
(experiment, threads) — and the chosen lower-is-better metric is compared.
A candidate more than `threshold` (fraction) slower than the baseline on
any matched record fails with exit code 1, which makes this script usable
as a CI gate:

    tools/bench_compare.py BENCH_table1_lofar_pipeline.json new.json

Records missing the metric or the key (e.g. the groups-sweep records when
comparing on threads) are skipped and reported as such.

Benches also append one `metrics` record of observability counters
(`counter.*` fields, from bench_util.h's MetricsFields). Those are
informational: the `metrics` record carries no key field so it never
matches a configuration, and comparing `--metric counter.*` explicitly
reports deltas without ever failing — counters are tallies, not
lower-is-better timings.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, list):
        sys.exit(f"error: {path} is not a JSON array of bench records")
    return data


def index_records(records, key_field, metric):
    indexed = {}
    skipped = 0
    for rec in records:
        if metric not in rec or key_field not in rec:
            skipped += 1
            continue
        key = (rec.get("experiment", "?"), rec[key_field])
        # Last record wins if a (experiment, key) pair repeats.
        indexed[key] = float(rec[metric])
    return indexed, skipped


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH json")
    ap.add_argument("candidate", help="candidate BENCH json")
    ap.add_argument("--metric", default="fit_seconds",
                    help="lower-is-better metric to compare "
                         "(default: fit_seconds)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional slowdown (default: 0.10)")
    ap.add_argument("--key", default="threads",
                    help="record field that identifies a configuration "
                         "(default: threads)")
    args = ap.parse_args()

    # counter.* fields are observability tallies (model hits, groups
    # fitted, bytes persisted) — direction-less, so never a regression.
    informational = args.metric.startswith("counter.")

    base, base_skipped = index_records(
        load_records(args.baseline), args.key, args.metric)
    cand, cand_skipped = index_records(
        load_records(args.candidate), args.key, args.metric)

    matched = sorted(set(base) & set(cand))
    if not matched:
        sys.exit("error: no records matched between baseline and candidate "
                 f"on (experiment, {args.key}) with metric {args.metric}")

    print(f"comparing {args.metric} (threshold: +{args.threshold:.0%}):")
    print(f"{'experiment':<28} {args.key:>8} {'baseline':>12} "
          f"{'candidate':>12} {'delta':>9}")
    regressions = []
    for key in matched:
        experiment, config = key
        b, c = base[key], cand[key]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if not informational and delta > args.threshold:
            regressions.append((key, b, c, delta))
            flag = "  << REGRESSION"
        print(f"{experiment:<28} {config!s:>8} {b:>12.6g} {c:>12.6g} "
              f"{delta:>+8.1%}{flag}")

    unmatched = len(set(base) ^ set(cand))
    skipped = base_skipped + cand_skipped
    if unmatched or skipped:
        print(f"(skipped {skipped} records without {args.metric}/{args.key}, "
              f"{unmatched} unmatched configurations)")

    if informational:
        print(f"\nOK: {args.metric} is an observability counter — deltas "
              "reported, never failed")
        return 0
    if regressions:
        worst = max(r[3] for r in regressions)
        print(f"\nFAIL: {len(regressions)} configuration(s) regressed "
              f"beyond +{args.threshold:.0%} (worst: +{worst:.1%})")
        return 1
    print(f"\nOK: no {args.metric} regression beyond +{args.threshold:.0%} "
          f"across {len(matched)} configuration(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Tier-1 memory gate: builds the test suite with AddressSanitizer +
# UndefinedBehaviorSanitizer (-DLAWS_SANITIZE=address,undefined) and runs
# it under ctest. Buffer overruns in the gather/scratch-arena paths, leaks,
# and UB (signed overflow, misaligned loads) in the fit kernels fail this
# script. The bench-only allocation counter is automatically stubbed out in
# sanitizer builds (sanitizers own malloc).
#
# The compiled expression tier is covered here through bytecode_test (VM
# slot/scratch reuse, batch-boundary reads) and differential_test (the
# tree-walk/bytecode tier matrix runs inside the sweep), so out-of-bounds
# lane access in the register VM fails this gate. The compressed scan
# tier rides the same suite: compressed_scan_test walks zone maps and RLE
# runs directly, and differential_test's matrix executes every sweep
# query through the compressed tier at an 8-row block size, so overreads
# in block slicing, run merging, or the encoded aggregate folds fail
# sanitized here too.
#
# Usage: tools/check_asan.sh [ctest-args...]
#   LAWS_ASAN_BUILD_DIR  override the build tree (default: build-asan)
#   LAWS_ASAN_JOBS       parallel build jobs (default: nproc)
#   LAWS_FUZZ_QUERIES    differential sweep size (default 2000); the
#   LAWS_FUZZ_SEED       seeded differential_test runs as part of ctest,
#                        so the whole fuzz sweep executes sanitized here
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${LAWS_ASAN_BUILD_DIR:-build-asan}"
JOBS="${LAWS_ASAN_JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DLAWS_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

# detect_leaks catches FitScratch/arena lifetime bugs; UBSan aborts on the
# first report so failures surface as test failures, not log noise.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
# LAWS_THREADS>1 so the parallel paths actually fan out even on 1-core CI.
export LAWS_THREADS="${LAWS_THREADS:-4}"

ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
echo "ASan/UBSan-instrumented test suite passed."

#!/usr/bin/env bash
# Line-coverage report: builds with -DLAWS_COVERAGE=ON (gcov
# instrumentation), runs the full test suite, then aggregates gcov's JSON
# output into per-directory line coverage for src/. A source line counts as
# covered when any test binary executed it; headers included from several
# translation units are unioned, not double-counted.
#
# Usage: tools/check_coverage.sh [ctest-args...]
#   LAWS_COV_BUILD_DIR  override the build tree (default: build-cov)
#   LAWS_COV_JOBS       parallel build jobs (default: nproc)
#   LAWS_COV_MIN        fail if total line coverage (%) falls below this
#   LAWS_COV_BYTECODE_MIN  per-file floor (%) for the correctness-critical
#                          scan/expression tiers (src/query/bytecode* +
#                          vector_eval* + compressed_scan* +
#                          query_context*, src/compress/block_store*,
#                          src/common/governor*, and all of src/serve
#                          and src/learn);
#                          default 75 — tiers whose bugs only surface as
#                          silent wrong answers (or queries that cannot
#                          be stopped, or snapshot isolation quietly
#                          broken, or a model catalog quietly corrupted
#                          by harvested statistics) must not quietly
#                          lose their tests
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
BUILD_DIR="${LAWS_COV_BUILD_DIR:-build-cov}"
JOBS="${LAWS_COV_JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DLAWS_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"

GCOV_DIR="$BUILD_DIR/gcov-out"
rm -rf "$GCOV_DIR"
mkdir -p "$GCOV_DIR"
(
  cd "$GCOV_DIR"
  find "$ROOT/$BUILD_DIR" -name '*.gcda' -print0 |
    xargs -0 -r gcov --json-format --preserve-paths >/dev/null 2>&1 || true
)

python3 - "$GCOV_DIR" "$ROOT" "${LAWS_COV_MIN:-0}" \
  "${LAWS_COV_BYTECODE_MIN:-75}" <<'PY'
import glob, gzip, json, os, sys
from collections import defaultdict

gcov_dir, root, cov_min = sys.argv[1], sys.argv[2], float(sys.argv[3])
bytecode_min = float(sys.argv[4])
src_prefix = os.path.join(root, "src") + os.sep

# file -> line -> hit (unioned across translation units)
lines = defaultdict(dict)
for path in glob.glob(os.path.join(gcov_dir, "*.gcov.json.gz")):
    with gzip.open(path, "rt") as f:
        data = json.load(f)
    for entry in data.get("files", []):
        name = os.path.normpath(os.path.join(root, entry["file"]))
        if not name.startswith(src_prefix):
            continue
        rel = os.path.relpath(name, root)
        for ln in entry.get("lines", []):
            no = ln["line_number"]
            lines[rel][no] = lines[rel].get(no, False) or ln["count"] > 0

by_dir = defaultdict(lambda: [0, 0])  # dir -> [covered, total]
for rel, linemap in lines.items():
    d = os.path.dirname(rel)
    by_dir[d][0] += sum(1 for hit in linemap.values() if hit)
    by_dir[d][1] += len(linemap)

if not by_dir:
    print("no gcov data found — did the instrumented tests run?")
    sys.exit(1)

print(f"{'directory':<24} {'covered':>9} {'lines':>9} {'pct':>7}")
tot_cov = tot_all = 0
for d in sorted(by_dir):
    cov, total = by_dir[d]
    tot_cov += cov
    tot_all += total
    print(f"{d:<24} {cov:>9} {total:>9} {100.0 * cov / total:>6.1f}%")
pct = 100.0 * tot_cov / tot_all
print(f"{'TOTAL':<24} {tot_cov:>9} {tot_all:>9} {pct:>6.1f}%")

# Per-file floor for the compiled expression tier and the compressed scan
# tier: wrong bytecode or wrong pruning means silently wrong query
# answers, so their sources carry their own gate.
failed = False
for rel in sorted(lines):
    base = os.path.basename(rel)
    in_query = rel.startswith(os.path.join("src", "query")) and (
        base.startswith("bytecode") or base.startswith("vector_eval") or
        base.startswith("compressed_scan") or
        base.startswith("query_context"))
    in_compress = rel.startswith(os.path.join("src", "compress")) and \
        base.startswith("block_store")
    in_common = rel.startswith(os.path.join("src", "common")) and \
        base.startswith("governor")
    in_serve = rel.startswith(os.path.join("src", "serve"))
    in_learn = rel.startswith(os.path.join("src", "learn"))
    if not (in_query or in_compress or in_common or in_serve or in_learn):
        continue
    linemap = lines[rel]
    fcov = sum(1 for hit in linemap.values() if hit)
    fpct = 100.0 * fcov / len(linemap) if linemap else 0.0
    marker = ""
    if bytecode_min > 0 and fpct < bytecode_min:
        marker = f"  << below LAWS_COV_BYTECODE_MIN={bytecode_min:g}%"
        failed = True
    print(f"{rel:<40} {fcov:>7} {len(linemap):>7} {fpct:>6.1f}%{marker}")
if failed:
    sys.exit(1)

if cov_min > 0 and pct < cov_min:
    print(f"coverage {pct:.1f}% is below LAWS_COV_MIN={cov_min}%")
    sys.exit(1)
PY

#!/usr/bin/env bash
# Differential query-correctness gate. Two phases:
#
#  1. Sweep: builds the suite under ASan+UBSan and runs the seeded
#     generator sweep — every query executed across the executor tier
#     matrix (tree-walking expressions @1 thread, compiled bytecode @1
#     thread and @default width, plus the compressed scan tier under
#     both expression engines at a tiny block size) and by the
#     row-at-a-time reference oracle, diffed for bit identity, plus the
#     AQP error-bound audit. Any divergence is shrunk and printed with
#     its replay seed. The sweep then repeats with LAWS_EXPR_TREEWALK=1
#     and LAWS_SCAN_DECODE=1 so both env toggles' forced-fallback paths
#     are themselves exercised end to end.
#  2. Mutation smoke: rebuilds with -DLAWS_TESTING_INJECT_BUG=ON (a
#     guarded off-by-one in the hash-aggregate sweep, a dropped last
#     lane in the bytecode f64 adder, a one-ulp shrink of every
#     zone-map max, AND a corrupted merge of harvested sufficient
#     statistics) and asserts the harness flags all four — proof the
#     oracle comparison, the tier matrix, and the learning self-check
#     can actually fail.
#
# Usage: tools/check_differential.sh
#   LAWS_FUZZ_QUERIES      queries in the sweep (default 2000)
#   LAWS_FUZZ_SEED         base seed (default harness-chosen)
#   LAWS_DIFF_BUILD_DIR    sanitizer build tree (default build-diff)
#   LAWS_DIFF_MUTANT_DIR   mutant build tree (default build-diff-mutant)
#   LAWS_DIFF_JOBS         parallel build jobs (default nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${LAWS_DIFF_BUILD_DIR:-build-diff}"
MUTANT_DIR="${LAWS_DIFF_MUTANT_DIR:-build-diff-mutant}"
JOBS="${LAWS_DIFF_JOBS:-$(nproc)}"
QUERIES="${LAWS_FUZZ_QUERIES:-2000}"

cmake -B "$BUILD_DIR" -S . -DLAWS_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS" --target differential_test

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

echo "== differential sweep: $QUERIES queries under ASan/UBSan =="
LAWS_FUZZ_QUERIES="$QUERIES" "$BUILD_DIR/tests/differential_test"

echo "== differential sweep again with LAWS_EXPR_TREEWALK=1 (forced fallback) =="
LAWS_EXPR_TREEWALK=1 LAWS_FUZZ_QUERIES="$QUERIES" \
  "$BUILD_DIR/tests/differential_test"

echo "== differential sweep again with LAWS_SCAN_DECODE=1 (compressed tier off) =="
LAWS_SCAN_DECODE=1 LAWS_FUZZ_QUERIES="$QUERIES" \
  "$BUILD_DIR/tests/differential_test"

echo "== mutation smoke: injected aggregate + bytecode + zone-map + harvest bugs must be caught =="
cmake -B "$MUTANT_DIR" -S . -DLAWS_TESTING_INJECT_BUG=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$MUTANT_DIR" -j "$JOBS" --target differential_test
"$MUTANT_DIR/tests/differential_test" \
  --gtest_filter='DifferentialTest.MutationSmokeCatchesInjectedBug:DifferentialTest.MutationSmokeCatchesInjectedBytecodeBug:DifferentialTest.MutationSmokeCatchesInjectedZoneMapBug:DifferentialTest.MutationSmokeCatchesInjectedHarvestBug'

echo "Differential gate passed: $QUERIES queries agreed with the oracle" \
     "across the tree-walk/bytecode/compressed tier matrix (zero" \
     "mismatches, zero AQP bound violations) and the harness detected all" \
     "four injected bugs."

#!/usr/bin/env bash
# Resource-governor robustness gate. Four phases:
#
#  1. Unit + integration: the governor test suite (token/deadline/budget
#     semantics, charge/release symmetry, ParallelFor propagation,
#     degradation rules, fault sites, malformed LAWS_* knobs) and the
#     thread-pool swap-race regression, under ASan+UBSan.
#  2. Chaos sweep (ASan+UBSan): generated queries under random governor
#     regimes — pre/mid-flight cancels, tiny and generous deadlines and
#     budgets, faults armed at governor/poll and governor/alloc — across
#     random engine/thread tiers. Every case must finish bit-identical to
#     its ungoverned reference or stop with a clean typed governor error.
#  3. The same chaos sweep under TSan (concurrent Cancel() and pool
#     resizes are the racy part of the design).
#  4. End-to-end shell check: `timeout`, `membudget` and `cancel` drive a
#     real query to each typed error through the lawsdb_shell binary, and
#     the governor line shows up in EXPLAIN ANALYZE.
#
# The default sweep sizes keep a laptop run short; the acceptance soak is
#   LAWS_CHAOS_QUERIES=10000 tools/check_governor.sh
#
# Usage: tools/check_governor.sh
#   LAWS_CHAOS_QUERIES   chaos cases per sanitizer (default 2000)
#   LAWS_CHAOS_SEED      base seed (default harness-chosen)
#   LAWS_GOV_ASAN_DIR    ASan build tree (default build-diff, shared with
#                        check_differential.sh)
#   LAWS_GOV_TSAN_DIR    TSan build tree (default build-tsan, shared with
#                        check_tsan.sh)
#   LAWS_GOV_JOBS        parallel build jobs (default nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
ASAN_DIR="${LAWS_GOV_ASAN_DIR:-build-diff}"
TSAN_DIR="${LAWS_GOV_TSAN_DIR:-build-tsan}"
JOBS="${LAWS_GOV_JOBS:-$(nproc)}"
QUERIES="${LAWS_CHAOS_QUERIES:-2000}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

echo "== build (ASan+UBSan) =="
cmake -B "$ASAN_DIR" -S . -DLAWS_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$JOBS" \
  --target governor_test thread_pool_test differential_test lawsdb_shell

echo "== governor unit + integration tests (ASan/UBSan) =="
"$ASAN_DIR/tests/governor_test"
"$ASAN_DIR/tests/thread_pool_test"

echo "== governor chaos sweep: $QUERIES cases (ASan/UBSan) =="
LAWS_CHAOS_QUERIES="$QUERIES" "$ASAN_DIR/tests/differential_test" \
  --gtest_filter='DifferentialTest.GovernorChaosSweepHoldsInvariant'

echo "== build (TSan) =="
cmake -B "$TSAN_DIR" -S . -DLAWS_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$JOBS" \
  --target governor_test thread_pool_test differential_test

echo "== governor unit + swap-race tests (TSan) =="
"$TSAN_DIR/tests/governor_test"
"$TSAN_DIR/tests/thread_pool_test"

echo "== governor chaos sweep: $QUERIES cases (TSan) =="
LAWS_CHAOS_QUERIES="$QUERIES" "$TSAN_DIR/tests/differential_test" \
  --gtest_filter='DifferentialTest.GovernorChaosSweepHoldsInvariant'

echo "== end-to-end shell: timeout / membudget / cancel =="
SHELL_BIN="$ASAN_DIR/examples/lawsdb_shell"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
"$SHELL_BIN" >"$OUT" 2>&1 <<'EOF'
gen lofar 64 4096
cancel
sql SELECT COUNT(intensity) FROM measurements
timeout 0
membudget 0
sql SELECT source, AVG(intensity) FROM measurements GROUP BY source ORDER BY source LIMIT 3
explain analyze SELECT AVG(intensity) FROM measurements
quit
EOF
grep -q "next query will be canceled" "$OUT" ||
  { echo "FAIL: cancel command missing"; cat "$OUT"; exit 1; }
grep -q "error: Canceled" "$OUT" ||
  { echo "FAIL: pre-armed cancel did not stop the query"; cat "$OUT"; exit 1; }
grep -q "governor: deadline=" "$OUT" ||
  { echo "FAIL: EXPLAIN ANALYZE lost its governor line"; cat "$OUT"; exit 1; }

# A 1 MiB budget cannot hold the aggregate's materializations at this
# scale; the shell must print the typed error, then recover and answer
# the same query once the budget is lifted.
"$SHELL_BIN" >"$OUT" 2>&1 <<'EOF'
gen lofar 64 65536
membudget 1
sql SELECT source, AVG(intensity), COUNT(intensity) FROM measurements GROUP BY source
membudget 0
sql SELECT COUNT(intensity) FROM measurements
quit
EOF
grep -q "error: ResourceExhausted" "$OUT" ||
  { echo "FAIL: membudget did not stop the query"; cat "$OUT"; exit 1; }
grep -q "(1 rows)" "$OUT" ||
  { echo "FAIL: shell did not recover after a budget stop"; cat "$OUT"; exit 1; }

echo "Governor gate passed: unit/integration suites, $QUERIES-case chaos"
echo "sweeps under ASan/UBSan and TSan, and the shell's timeout/membudget/"
echo "cancel commands all held the no-crash, clean-typed-error invariant."

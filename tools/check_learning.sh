#!/usr/bin/env bash
# Database-learning gate (DESIGN.md §17). Four phases:
#
#  1. Unit + differential under ASan+UBSan: the learn test suite (harvest
#     dedupe/reset/taint, promotion, interval-tightening refinement,
#     drift flag/reject/refit, eviction, snapshot publication) plus the
#     learning-aware differential sweep — exact answers with harvesting
#     on must stay bit-identical to the learning-off reference, AQP
#     answers must pass the interval audit, and every case's merged
#     sufficient statistics must match a single-pass re-accumulation.
#  2. The same learn suite under TSan: background maintenance ticks
#     racing N querying sessions and an ingest writer, epoch
#     monotonicity, and pinned readers never observing a mid-refit model
#     are the racy parts of the design.
#  3. Mutation smoke: rebuilds with -DLAWS_TESTING_INJECT_BUG=ON (which
#     corrupts one merged sufficient statistic in IncrementalOls::Merge)
#     and asserts the harvest self-check catches it — proof the
#     statistics comparison can actually fail.
#  4. End-to-end shell check: `learning on`, a harvesting scan, a
#     maintenance tick, and a model-served query through the real
#     lawsdb_shell binary, with the EXPLAIN ANALYZE `learning:` line and
#     the promotion visible in `learning status`.
#
# Usage: tools/check_learning.sh
#   LAWS_LEARN_ASAN_DIR  ASan build tree (default build-diff, shared with
#                        check_differential.sh / check_serving.sh)
#   LAWS_LEARN_TSAN_DIR  TSan build tree (default build-tsan, shared with
#                        check_tsan.sh)
#   LAWS_LEARN_MUTANT_DIR mutant build tree (default build-diff-mutant)
#   LAWS_LEARN_JOBS      parallel build jobs (default nproc)
#   LAWS_LEARN_FUZZ_QUERIES  queries in the learning sweep (default 3000)
set -euo pipefail

cd "$(dirname "$0")/.."
ASAN_DIR="${LAWS_LEARN_ASAN_DIR:-build-diff}"
TSAN_DIR="${LAWS_LEARN_TSAN_DIR:-build-tsan}"
MUTANT_DIR="${LAWS_LEARN_MUTANT_DIR:-build-diff-mutant}"
JOBS="${LAWS_LEARN_JOBS:-$(nproc)}"
QUERIES="${LAWS_LEARN_FUZZ_QUERIES:-3000}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
# LAWS_THREADS>1 so the background-tick pool actually fans out on 1-core CI.
export LAWS_THREADS="${LAWS_THREADS:-4}"

echo "== build (ASan+UBSan) =="
cmake -B "$ASAN_DIR" -S . -DLAWS_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$JOBS" \
  --target learn_test differential_test lawsdb_shell

echo "== learn suite (ASan/UBSan) =="
"$ASAN_DIR/tests/learn_test"

echo "== learning differential sweep: $QUERIES queries (ASan/UBSan) =="
LAWS_LEARN_FUZZ_QUERIES="$QUERIES" "$ASAN_DIR/tests/differential_test" \
  --gtest_filter='DifferentialTest.LearningSweepMatchesReference:DifferentialTest.HarvestProbeAgreesWhenHealthy'

echo "== build (TSan) =="
cmake -B "$TSAN_DIR" -S . -DLAWS_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$JOBS" --target learn_test

echo "== learn suite incl. concurrency soak (TSan) =="
"$TSAN_DIR/tests/learn_test"

echo "== mutation smoke: corrupted statistics merge must be caught =="
cmake -B "$MUTANT_DIR" -S . -DLAWS_TESTING_INJECT_BUG=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$MUTANT_DIR" -j "$JOBS" --target differential_test
"$MUTANT_DIR/tests/differential_test" \
  --gtest_filter='DifferentialTest.MutationSmokeCatchesInjectedHarvestBug'

echo "== end-to-end shell: harvest -> tick -> model-served query =="
SHELL_BIN="$ASAN_DIR/examples/lawsdb_shell"
CSV="$(mktemp --suffix=.csv)"
OUT="$(mktemp)"
trap 'rm -f "$CSV" "$OUT"' EXIT
python3 - "$CSV" <<'PY'
import math, sys
with open(sys.argv[1], "w") as f:
    f.write("t,reading\n")
    for rep in range(12):
        for t in (1, 2, 4, 8, 16, 32, 64, 128):
            y = 2.5 + 0.8 * math.log(t) + 0.01 * math.sin(rep * 1.7 + t)
            f.write(f"{t},{y:.9f}\n")
PY
"$SHELL_BIN" >"$OUT" 2>&1 <<EOF
import $CSV signals t:double,reading:double
learning on
explain analyze SELECT t, reading FROM signals WHERE t >= 1
learning tick
explain analyze SELECT AVG(reading) FROM signals WHERE t = 8
learning status
quit
EOF
grep -q "learning: state=on" "$OUT" ||
  { echo "FAIL: EXPLAIN ANALYZE lost its learning: line"; cat "$OUT"; exit 1; }
grep -q "answered by: model" "$OUT" ||
  { echo "FAIL: the harvested model never served a query"; cat "$OUT"; exit 1; }
grep -Eq "promoted=[1-9]" "$OUT" ||
  { echo "FAIL: learning status shows no promotion"; cat "$OUT"; exit 1; }

echo "Learning gate passed: the learn suite held under ASan/UBSan and TSan,"
echo "the $QUERIES-query learning sweep matched the learning-off reference"
echo "bit for bit, the injected merge corruption was caught, and the shell"
echo "harvested, promoted, and served a model end to end."

#!/usr/bin/env bash
# Observability smoke gate: drives the shell end to end and asserts the
# EXPLAIN ANALYZE / metrics surface works for both arbitration outcomes:
#
#  1. a model-answered query renders a HybridDecision(model-point ...)
#     span tree with per-stage rows and timings plus the "answered by:"
#     decision line;
#  2. an exact-fallback query (COUNT(*)) renders the ExactScan subtree
#     with its fallback reason;
#  3. `metrics` reports the hybrid arbitration counters that those two
#     queries must have bumped, and `metrics reset` zeroes them;
#  4. the compiled expression tier (DESIGN.md §13) is visible: a filtered
#     exact query (with an arithmetic predicate the compressed tier
#     declines) renders the compiled bytecode program and the `expr:`
#     counter line, and LAWS_EXPR_TREEWALK=1 flips the whole surface to
#     the tree-walker (engine=treewalk, no program dumps);
#  5. the compressed scan tier (DESIGN.md §14) is visible: with a small
#     block size a selective filter on the clustered source column shows
#     a `zonescan:` Filter detail with pruned blocks, the `scan:` line
#     reports engine=compressed with nonzero pruning, the scan.* counters
#     appear in `metrics`, and LAWS_SCAN_DECODE=1 flips the surface back
#     to engine=decode with no zonescan details.
#
# Usage: tools/check_observability.sh
#   LAWS_OBS_BUILD_DIR  override the build tree (default: build)
#   LAWS_OBS_JOBS       parallel build jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${LAWS_OBS_BUILD_DIR:-build}"
JOBS="${LAWS_OBS_JOBS:-$(nproc)}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target lawsdb_shell

out="$(printf '%s\n' \
  'gen lofar 100 4000' \
  'fit measurements power_law wavelength intensity group source' \
  'explain analyze SELECT intensity FROM measurements WHERE source = 42 AND wavelength = 0.15' \
  'explain analyze SELECT COUNT(*) FROM measurements' \
  'explain analyze SELECT COUNT(*) FROM measurements WHERE intensity * 2.0 > 0.0' \
  'metrics' \
  'metrics reset' \
  'metrics' \
  'quit' | "$BUILD_DIR/examples/lawsdb_shell")"

fail() {
  echo "FAIL: $1" >&2
  echo "--- shell transcript ---" >&2
  echo "$out" >&2
  exit 1
}

# 1. Model-answered plan: arbitration span with the captured model's id,
#    the reconstructed pipeline stages, rows, timings, and the decision.
grep -q 'HybridDecision(model-point, model 1' <<<"$out" \
  || fail "no model-point HybridDecision span"
grep -q 'ModelPath' <<<"$out" || fail "no ModelPath span"
grep -Eq 'Filter\(.*source = 42.*\)  rows=[0-9]+->[0-9]+' <<<"$out" \
  || fail "no Filter stage with row counts"
grep -Eq 'time=[0-9.]+ ms' <<<"$out" || fail "no per-stage timings"
grep -q 'answered by: model-point (approximate, error bound' <<<"$out" \
  || fail "no approximate decision line"

# 2. Exact fallback: COUNT(*) must take the exact path and say why.
grep -q 'HybridDecision(exact: COUNT(\*)' <<<"$out" \
  || fail "no exact-fallback HybridDecision span"
grep -q 'ExactScan' <<<"$out" || fail "no ExactScan span"
grep -Eq 'HashAggregate\(<global>\)  rows=4000->1' <<<"$out" \
  || fail "no aggregate stage in the exact plan"
grep -q 'answered by: exact (COUNT(\*)' <<<"$out" \
  || fail "no exact decision line"

# 3. Counters: the two queries above bumped both arbitration outcomes,
#    and the fit phase reported its dispatch tally.
grep -Eq 'aqp\.hybrid\.model_hit +1' <<<"$out" \
  || fail "aqp.hybrid.model_hit != 1"
# Two exact fallbacks now: bare COUNT(*) and the filtered COUNT(*).
grep -Eq 'aqp\.hybrid\.exact_fallback +2' <<<"$out" \
  || fail "aqp.hybrid.exact_fallback != 2"
grep -Eq 'fit\.groups_fitted +100' <<<"$out" \
  || fail "fit.groups_fitted != 100"
grep -q 'metrics reset' <<<"$out" || fail "metrics reset not acknowledged"

# After the reset the second `metrics` dump must not list the hybrid
# counters again (non-zero entries only).
post_reset="${out##*metrics reset}"
if grep -q 'aqp.hybrid.model_hit' <<<"$post_reset"; then
  fail "counters survived metrics reset"
fi

# 4a. Compiled expression tier: the filtered exact query's Filter span
#     must carry the compiled program dump, and the expr: accounting
#     line must say the bytecode engine compiled something.
grep -q 'bytecode: ' <<<"$out" || fail "no compiled-program dump in spans"
grep -q 'cmpgt.f64' <<<"$out" || fail "predicate program missing cmpgt.f64"
grep -Eq 'expr: engine=bytecode compiled=[1-9]' <<<"$out" \
  || fail "no expr: engine=bytecode accounting line"

# 4b. The escape hatch: with LAWS_EXPR_TREEWALK=1 the same query must
#     report engine=treewalk and render no program dumps.
tw_out="$(printf '%s\n' \
  'gen lofar 100 4000' \
  'explain analyze SELECT COUNT(*) FROM measurements WHERE intensity * 2.0 > 0.0' \
  'quit' | LAWS_EXPR_TREEWALK=1 "$BUILD_DIR/examples/lawsdb_shell")"
grep -q 'expr: engine=treewalk' <<<"$tw_out" \
  || { out="$tw_out"; fail "LAWS_EXPR_TREEWALK=1 did not force treewalk"; }
if grep -q 'bytecode: ' <<<"$tw_out"; then
  out="$tw_out"; fail "treewalk mode still dumped compiled programs"
fi

# 5a. Compressed scan tier: force many small blocks so the clustered
#     `source` column actually gets pruned, and assert the whole surface:
#     per-span zonescan detail, the scan: summary line, and the counters.
scan_out="$(printf '%s\n' \
  'gen lofar 100 4000' \
  'explain analyze SELECT COUNT(*) FROM measurements WHERE source = 1' \
  'metrics' \
  'quit' | LAWS_SCAN_BLOCK_ROWS=64 "$BUILD_DIR/examples/lawsdb_shell")"
grep -Eq 'zonescan: blocks=[0-9]+ pruned=[1-9]' <<<"$scan_out" \
  || { out="$scan_out"; fail "no zonescan Filter detail with pruned blocks"; }
grep -Eq 'scan: engine=compressed blocks=[0-9]+ pruned=[1-9]' <<<"$scan_out" \
  || { out="$scan_out"; fail "scan: line missing or reports zero pruning"; }
grep -Eq 'scan\.blocks_pruned +[1-9]' <<<"$scan_out" \
  || { out="$scan_out"; fail "scan.blocks_pruned counter not reported"; }
grep -Eq 'scan\.index_builds +[1-9]' <<<"$scan_out" \
  || { out="$scan_out"; fail "scan.index_builds counter not reported"; }

# 5b. The escape hatch: LAWS_SCAN_DECODE=1 must force the decode path —
#     engine=decode on the scan: line and no zonescan span details.
dec_out="$(printf '%s\n' \
  'gen lofar 100 4000' \
  'explain analyze SELECT COUNT(*) FROM measurements WHERE source = 1' \
  'quit' | LAWS_SCAN_DECODE=1 LAWS_SCAN_BLOCK_ROWS=64 \
  "$BUILD_DIR/examples/lawsdb_shell")"
grep -q 'scan: engine=decode' <<<"$dec_out" \
  || { out="$dec_out"; fail "LAWS_SCAN_DECODE=1 did not force decode"; }
if grep -q 'zonescan: ' <<<"$dec_out"; then
  out="$dec_out"; fail "decode mode still produced zonescan details"
fi

echo "Observability gate passed: EXPLAIN ANALYZE (model + exact + bytecode" \
     "tier + compressed scans) and metrics OK."

#!/usr/bin/env bash
# Durability gate: runs the corruption-fuzz sweep and the save-path
# fault-injection matrix (tests/robustness_test.cc) under ASan + UBSan.
# The sweep mutates serialized images with seeded bit flips, truncations
# and splices and asserts every mutation is either rejected with a clean
# Status or loads bit-identically; the fault matrix arms each persist/*
# fault point in turn and asserts the previous image survives the failed
# save. A crash, leak, or UB report anywhere in a load path fails this
# script.
#
# Also exercises the LAWS_FAULTS environment interface end to end: a save
# with persist/rename armed via the env var must fail.
#
# Usage: tools/check_robustness.sh [ctest-args...]
#   LAWS_ROBUST_BUILD_DIR  override the build tree (default: build-asan)
#   LAWS_ROBUST_JOBS       parallel build jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${LAWS_ROBUST_BUILD_DIR:-build-asan}"
JOBS="${LAWS_ROBUST_JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DLAWS_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS" --target robustness_test common_test \
  core_test lawsdb_shell

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
export LAWS_THREADS="${LAWS_THREADS:-4}"

# The sweep + fault matrix, plus the parser-hardening regression tests in
# common_test and the persistence round-trips in core_test.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'robustness_test|common_test|core_test' "$@"

# End-to-end check of the LAWS_FAULTS env interface: armed via the
# environment (not the API), a save must fail at the rename fault point
# and leave no image behind. The shell reads commands from stdin.
img="$(mktemp -u /tmp/lawsdb_faults_env.XXXXXX.bin)"
out="$(printf 'save %s\nquit\n' "$img" \
  | LAWS_FAULTS="persist/rename=error" "$BUILD_DIR/examples/lawsdb_shell")"
if ! grep -q "injected fault at persist/rename" <<<"$out"; then
  echo "FAIL: save did not report the injected rename fault:" >&2
  echo "$out" >&2
  exit 1
fi
if [ -e "$img" ]; then
  echo "FAIL: $img exists after a failed (fault-injected) save" >&2
  rm -f "$img"
  exit 1
fi

echo "Robustness gate passed: corruption sweep + fault matrix clean under ASan/UBSan."

#!/usr/bin/env bash
# Serving-layer gate. Three phases:
#
#  1. Unit + integration under ASan+UBSan: the serve test suite — epoch
#     monotonicity, failed commits staying invisible, pinned snapshots
#     frozen across copy-on-write commits, exact session caps, admission
#     timeouts with typed kResourceExhausted rejections, per-session
#     cancel isolation, atomic type-checked ingest, and the concurrent
#     sessions-vs-serial-replay equivalence check.
#  2. The same suite under TSan: snapshot pin/commit races, the admission
#     condvar handing slots across threads, foreign-thread interrupts,
#     and the block-index cache racing builds, lookups, block-size flips
#     and purges are the racy parts of the design.
#  3. End-to-end shell check: the `concurrent` command fans one query out
#     over N real sessions through the lawsdb_shell binary and every one
#     must succeed; `cancel` and the epoch counter must keep working with
#     the serving layer underneath.
#
# Usage: tools/check_serving.sh
#   LAWS_SERVE_ASAN_DIR  ASan build tree (default build-diff, shared with
#                        check_differential.sh / check_governor.sh)
#   LAWS_SERVE_TSAN_DIR  TSan build tree (default build-tsan, shared with
#                        check_tsan.sh)
#   LAWS_SERVE_JOBS      parallel build jobs (default nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
ASAN_DIR="${LAWS_SERVE_ASAN_DIR:-build-diff}"
TSAN_DIR="${LAWS_SERVE_TSAN_DIR:-build-tsan}"
JOBS="${LAWS_SERVE_JOBS:-$(nproc)}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
# LAWS_THREADS>1 so the pool actually fans out even on 1-core CI.
export LAWS_THREADS="${LAWS_THREADS:-4}"

echo "== build (ASan+UBSan) =="
cmake -B "$ASAN_DIR" -S . -DLAWS_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j "$JOBS" --target serve_test lawsdb_shell

echo "== serving suite (ASan/UBSan) =="
"$ASAN_DIR/tests/serve_test"

echo "== build (TSan) =="
cmake -B "$TSAN_DIR" -S . -DLAWS_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$JOBS" --target serve_test

echo "== serving suite (TSan) =="
"$TSAN_DIR/tests/serve_test"

echo "== end-to-end shell: concurrent sessions, cancel, epochs =="
SHELL_BIN="$ASAN_DIR/examples/lawsdb_shell"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
"$SHELL_BIN" >"$OUT" 2>&1 <<'EOF'
gen lofar 64 4096
concurrent 4 SELECT source, AVG(intensity) FROM measurements GROUP BY source
cancel
sql SELECT COUNT(intensity) FROM measurements
sql SELECT COUNT(intensity) FROM measurements
tables
quit
EOF
grep -q "concurrent: ok=4 err=0" "$OUT" ||
  { echo "FAIL: concurrent sessions did not all succeed"; cat "$OUT"; exit 1; }
grep -q "error: Canceled" "$OUT" ||
  { echo "FAIL: armed cancel did not stop the next query"; cat "$OUT"; exit 1; }
grep -q "(1 rows)" "$OUT" ||
  { echo "FAIL: shell did not recover after the cancel"; cat "$OUT"; exit 1; }
grep -q "epoch " "$OUT" ||
  { echo "FAIL: tables command lost its epoch line"; cat "$OUT"; exit 1; }

echo "Serving gate passed: the serve suite held under ASan/UBSan and TSan,"
echo "and the shell's concurrent/cancel/epoch behaviour survived end to end."

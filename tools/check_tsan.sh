#!/usr/bin/env bash
# Tier-1 data-race gate: builds the test suite with ThreadSanitizer
# (-DLAWS_SANITIZE=thread) and runs it under ctest. Any race in the
# ThreadPool subsystem or the parallel fitting/compression/generation
# paths fails this script.
#
# Expression-engine state under test here: the global engine toggle is an
# atomic, per-thread VM scratch is thread_local, and the expr.* metrics
# counters are the registry's atomics — differential_test flips the
# toggle while the pool runs at LAWS_THREADS>1, so a race in any of them
# surfaces in this gate. Compressed-scan state is exercised the same way:
# the scan-engine toggle and block-rows knob are atomics, the scan.*
# counters are registry atomics, and the shared block-index cache is
# mutex-guarded — differential_test flips engines and block sizes while
# registering indexes, so a race in the cache or counters surfaces here.
#
# The serving layer rides in serve_test: concurrent sessions pin
# snapshots while writers copy-and-swap commits, the admission gate's
# condvar hands slots across threads, session interrupts land from
# foreign threads, and the block-index cache races builds, lookups,
# SetScanBlockRows flips and purges — all instrumented here.
#
# Usage: tools/check_tsan.sh [ctest-args...]
#   LAWS_TSAN_BUILD_DIR  override the build tree (default: build-tsan)
#   LAWS_TSAN_JOBS       parallel build jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${LAWS_TSAN_BUILD_DIR:-build-tsan}"
JOBS="${LAWS_TSAN_JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DLAWS_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

# second_deadlock_stack aids diagnosis; history_size bumps TSan's per-thread
# memory-access history so long fitting loops don't lose report stacks.
export TSAN_OPTIONS="${TSAN_OPTIONS:-second_deadlock_stack=1 history_size=4}"
# LAWS_THREADS>1 so the parallel paths actually fan out even on 1-core CI.
export LAWS_THREADS="${LAWS_THREADS:-4}"

ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
echo "TSan-instrumented test suite passed."
